#!/usr/bin/env python3
"""Swap in a different nutrient database (paper §IV).

The paper claims the protocol is "compatible with any nutritional
database".  This example demonstrates the two supported paths:

1. Round-trip the curated subset through the genuine USDA-SR ASCII
   release format (FOOD_DES.txt / NUT_DATA.txt / WEIGHT.txt) — a real
   SR-Legacy download drops into the same loader.
2. Build a tiny custom composition table in code and run the pipeline
   against it.

Usage::

    python examples/custom_database.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import NutritionEstimator, load_default_database
from repro.usda.loader import dump_sr_directory, load_sr_directory
from repro.usda.database import NutrientDatabase
from repro.usda.schema import FoodItem, Portion


def sr_round_trip() -> None:
    db = load_default_database()
    with tempfile.TemporaryDirectory() as tmp:
        dump_sr_directory(db, tmp)
        files = sorted(p.name for p in Path(tmp).iterdir())
        reloaded = load_sr_directory(tmp)
    print(f"SR ASCII round trip: wrote {files}, reloaded {len(reloaded)} foods "
          f"(original {len(db)})")
    butter = reloaded.get("01001")
    print(f"  {butter.description}: {butter.energy_kcal} kcal/100g, "
          f"{len(butter.portions)} portions")


def custom_table() -> None:
    foods = [
        FoodItem(
            ndb_no="90001",
            description="Flatbread, village style",
            food_group="Custom",
            nutrients={"energy_kcal": 290.0, "protein_g": 9.0,
                       "carbohydrate_g": 56.0, "fat_g": 3.0},
            portions=(Portion(1, 1.0, "piece", 85.0),),
        ),
        FoodItem(
            ndb_no="90002",
            description="Yogurt drink, salted",
            food_group="Custom",
            nutrients={"energy_kcal": 48.0, "protein_g": 2.8,
                       "sodium_mg": 310.0, "fat_g": 1.5},
            portions=(Portion(1, 1.0, "cup", 245.0),),
        ),
    ]
    estimator = NutritionEstimator(database=NutrientDatabase(foods))
    recipe = estimator.estimate_recipe(
        ["2 village flatbreads", "1 cup salted yogurt drink"], servings=2
    )
    print("\ncustom composition table:")
    for item in recipe.ingredients:
        match = item.match.description if item.match else "(unmatched)"
        print(f"  {item.parsed.text:34} -> {match:28} {item.calories:6.0f} kcal")
    print(f"  per serving: {recipe.per_serving.calories:.0f} kcal")


def main() -> None:
    sr_round_trip()
    custom_table()


if __name__ == "__main__":
    main()
