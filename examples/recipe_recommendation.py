#!/usr/bin/env python3
"""Nutrition-aware recipe recommendation (a motivating application, §I).

Food recommendation systems need per-recipe nutritional profiles; this
example estimates profiles for a generated corpus and answers dietary
queries: low-calorie, high-protein, low-sodium and "fits a daily
budget" recommendations.

Usage::

    python examples/recipe_recommendation.py [n_recipes]
"""

from __future__ import annotations

import sys

from repro import NutritionEstimator, RecipeGenerator


def main(n_recipes: int = 300) -> None:
    generator = RecipeGenerator()
    estimator = NutritionEstimator()
    recipes = generator.generate(n_recipes)
    estimates = estimator.estimate_corpus(recipes)

    catalogue = [
        (recipe, estimate.per_serving)
        for recipe, estimate in zip(recipes, estimates)
        if estimate.fraction_fully_mapped == 1.0
        and estimate.per_serving.calories > 0
    ]
    print(f"catalogue: {len(catalogue)} recipes with trusted profiles\n")

    queries = (
        ("Light meals (< 300 kcal/serving)",
         lambda p: p.calories < 300,
         lambda p: p.calories),
        ("High protein (> 20 g/serving)",
         lambda p: p.get("protein_g") > 20,
         lambda p: -p.get("protein_g")),
        ("Low sodium (< 300 mg/serving)",
         lambda p: p.get("sodium_mg") < 300,
         lambda p: p.get("sodium_mg")),
    )
    for title, predicate, key in queries:
        hits = sorted(
            ((r, p) for r, p in catalogue if predicate(p)),
            key=lambda pair: key(pair[1]),
        )
        print(title)
        for recipe, profile in hits[:5]:
            print(
                f"  {recipe.title[:44]:46} {profile.calories:6.0f} kcal  "
                f"{profile.get('protein_g'):5.1f} g protein  "
                f"{profile.get('sodium_mg'):6.0f} mg sodium"
            )
        print()

    # Daily-budget query: three servings summing under 1800 kcal while
    # maximizing protein (greedy).
    budget, chosen, protein = 1800.0, [], 0.0
    for recipe, profile in sorted(
        catalogue, key=lambda pair: -pair[1].get("protein_g")
    ):
        if profile.calories <= budget and len(chosen) < 3:
            chosen.append((recipe, profile))
            budget -= profile.calories
            protein += profile.get("protein_g")
    print("Daily plan (3 servings, <= 1800 kcal, protein-greedy):")
    for recipe, profile in chosen:
        print(f"  {recipe.title[:44]:46} {profile.calories:6.0f} kcal")
    print(f"  -> total {1800 - budget:.0f} kcal, {protein:.0f} g protein")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
