#!/usr/bin/env python3
"""Drive the HTTP service in-process: start, query, shut down.

Boots a :class:`repro.service.NutritionService` on an OS-assigned port
(no external process, no fixed port to collide on), then issues the
requests a downstream consumer — a recipe recommender, a calorie
dataset builder — would send over the network:

* ``GET /healthz``          — wait until the service is live,
* ``POST /v1/estimate``     — the Piroszhki recipe from the paper's
  Table I, printed as a per-serving profile,
* ``POST /v1/match``        — a closest-description lookup,
* ``POST /v1/estimate`` ×2  — the same payload again to show the
  response cache answering (the ``X-Cache: hit`` header),
* ``GET /metrics``          — the per-endpoint counters afterwards.

Usage::

    python examples/serve_client.py
"""

import http.client
import json

from repro.recipedb import PIROSZHKI_PHRASES
from repro.service import NutritionService, ServiceConfig


def request(conn, method: str, path: str, payload=None):
    """One JSON round-trip; returns (status, X-Cache header, body)."""
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body)
    response = conn.getresponse()
    return response.status, response.getheader("X-Cache"), json.loads(
        response.read()
    )


def main() -> None:
    # port=0 lets the OS pick a free port; the warm estimator is built
    # once here and shared by every request that follows.
    with NutritionService(ServiceConfig(port=0)) as service:
        conn = http.client.HTTPConnection(service.host, service.port)

        status, _, health = request(conn, "GET", "/healthz")
        print(f"service up at {service.url}  ({status}, {health['status']})\n")

        payload = {"ingredients": list(PIROSZHKI_PHRASES), "servings": 6}
        status, cache, estimate = request(conn, "POST", "/v1/estimate", payload)
        print("POST /v1/estimate — Piroszhki (Little Russian Pastries):")
        for item in estimate["ingredients"]:
            description = (
                item["match"]["description"] if item["match"] else "(unmatched)"
            )
            print(
                f"  {item['text'][:42]:44} {item['grams']:8.1f} g  "
                f"{description[:40]}"
            )
        print("\n  per-serving profile:")
        for nutrient, value in sorted(estimate["per_serving"].items()):
            print(f"    {nutrient:18} {value:10.2f}")

        status, _, match = request(
            conn, "POST", "/v1/match", {"name": "red lentils"}
        )
        print(
            f"\nPOST /v1/match — red lentils -> "
            f"{match['match']['description']} "
            f"(score {match['match']['score']:.3f})"
        )

        status, cache, repeat = request(conn, "POST", "/v1/estimate", payload)
        print(f"\nsame estimate again: X-Cache={cache} "
              f"(identical: {repeat == estimate})")

        _, _, metrics = request(conn, "GET", "/metrics")
        print(f"\nGET /metrics — {metrics['requests_total']} requests, "
              f"{metrics['cache_hits_total']} cache hit(s); per endpoint:")
        for endpoint, stats in metrics["endpoints"].items():
            print(f"  {endpoint:22} {stats['requests']:3d} requests  "
                  f"p50 {stats['latency_ms']['p50']:7.2f} ms")

        conn.close()
    print("\nservice shut down cleanly")


if __name__ == "__main__":
    main()
