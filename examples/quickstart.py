#!/usr/bin/env python3
"""Quickstart: estimate the nutritional profile of one recipe.

Runs the full pipeline — NER extraction, modified-Jaccard description
matching against the USDA-SR subset, unit resolution — on the paper's
running example, the Piroszhki (Little Russian Pastries) recipe from
Table I, and prints a per-ingredient breakdown plus the per-serving
profile.

Usage::

    python examples/quickstart.py
"""

from repro import NutritionEstimator
from repro.recipedb import PIROSZHKI_PHRASES


def main() -> None:
    estimator = NutritionEstimator()
    recipe = estimator.estimate_recipe(list(PIROSZHKI_PHRASES), servings=6)

    print("Piroszhki (Little Russian Pastries) — serves 6\n")
    header = f"{'ingredient phrase':44} {'grams':>8} {'kcal':>8}  matched description"
    print(header)
    print("-" * len(header))
    for item in recipe.ingredients:
        description = item.match.description if item.match else "(unmatched)"
        print(
            f"{item.parsed.text[:42]:44} {item.grams:8.1f} "
            f"{item.calories:8.1f}  {description[:50]}"
        )

    print("\nPer-serving profile:")
    for nutrient, value in recipe.per_serving.rounded().items():
        print(f"  {nutrient:18} {value:10.2f}")

    print(
        f"\nCoverage: {recipe.fraction_fully_mapped:.0%} of ingredient "
        "lines fully mapped (name + unit)."
    )


if __name__ == "__main__":
    main()
