#!/usr/bin/env python3
"""Dietary analytics across cuisines (a motivating application, §I).

Generates a RecipeDB-style corpus, estimates every recipe's profile
through the pipeline, and aggregates per-cuisine nutrition statistics:
median per-serving calories, protein, fat and sodium — the kind of
dietary-analytics query the paper's introduction motivates.

Usage::

    python examples/dietary_analytics.py [n_recipes]
"""

from __future__ import annotations

import statistics
import sys
from collections import defaultdict

from repro import NutritionEstimator, RecipeGenerator


def main(n_recipes: int = 400) -> None:
    generator = RecipeGenerator()
    estimator = NutritionEstimator()
    recipes = generator.generate(n_recipes)
    estimates = estimator.estimate_corpus(recipes)

    by_cuisine: dict[str, list] = defaultdict(list)
    for recipe, estimate in zip(recipes, estimates):
        if estimate.fraction_fully_mapped == 1.0:
            by_cuisine[recipe.cuisine].append(estimate.per_serving)

    print(f"{'cuisine':18} {'n':>4} {'kcal':>8} {'protein g':>10} "
          f"{'fat g':>8} {'sodium mg':>10}")
    print("-" * 64)
    for cuisine in sorted(by_cuisine):
        profiles = by_cuisine[cuisine]
        if len(profiles) < 3:
            continue
        kcal = statistics.median(p.calories for p in profiles)
        protein = statistics.median(p.get("protein_g") for p in profiles)
        fat = statistics.median(p.get("fat_g") for p in profiles)
        sodium = statistics.median(p.get("sodium_mg") for p in profiles)
        print(f"{cuisine:18} {len(profiles):>4} {kcal:8.0f} {protein:10.1f} "
              f"{fat:8.1f} {sodium:10.0f}")

    total = sum(len(v) for v in by_cuisine.values())
    print(f"\n{total} fully-mapped recipes across {len(by_cuisine)} cuisines "
          f"(of {n_recipes} generated).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
