#!/usr/bin/env python3
"""Train the ingredient NER taggers the way the paper does (§II-A).

1. Generate an annotation pool of tagged ingredient phrases.
2. Cluster their POS tag-frequency vectors and select a diverse
   train/test split (the paper's 6,612 / 2,188; scaled down by
   default for a quick run — pass the full sizes to reproduce).
3. Train the averaged structured perceptron (fast) and, on a subset,
   the linear-chain CRF (the paper's Stanford-NER model family).
4. Report token accuracy and entity-level F1 (paper: 0.95), then use
   the trained tagger inside the full estimation pipeline.

Usage::

    python examples/train_ner.py [train_size] [test_size]
"""

from __future__ import annotations

import sys
import time

from repro import NutritionEstimator, RecipeGenerator
from repro.ner import (
    AveragedPerceptronTagger,
    LinearChainCRF,
    evaluate,
    select_diverse_corpus,
)
from repro.ner.corpus import TaggedPhrase
from repro.recipedb import PIROSZHKI_PHRASES


def main(train_size: int = 1600, test_size: int = 500) -> None:
    generator = RecipeGenerator()
    pool = [item.tagged for item in generator.generate_phrases(
        (train_size + test_size) * 2
    )]

    # Diversity selection via POS-vector clustering (paper §II-A).
    train_idx, test_idx = select_diverse_corpus(
        [list(p.tokens) for p in pool], train_size, test_size
    )
    train = [pool[i] for i in train_idx]
    test = [pool[i] for i in test_idx]
    print(f"annotation pool {len(pool)}, train {len(train)}, test {len(test)}")

    t0 = time.time()
    perceptron = AveragedPerceptronTagger()
    perceptron.train(train, epochs=5)
    predictions = [
        TaggedPhrase(p.tokens, tuple(perceptron.predict(p.tokens))) for p in test
    ]
    report = evaluate(test, predictions)
    print(
        f"perceptron: {time.time() - t0:.1f}s  "
        f"token acc {report.token_accuracy:.3f}  "
        f"entity F1 {report.entity_f1:.3f} (paper: 0.95)"
    )
    for row in report.per_tag:
        print(f"   {row.tag:9} P {row.precision:.3f} R {row.recall:.3f} "
              f"F1 {row.f1:.3f}  n={row.support}")

    # CRF on a subset (same model family as Stanford NER, slower).
    crf_train = train[: min(len(train), 400)]
    crf_test = test[: min(len(test), 150)]
    t0 = time.time()
    crf = LinearChainCRF(max_iter=50)
    crf.train(crf_train)
    crf_predictions = [
        TaggedPhrase(p.tokens, tuple(crf.predict(p.tokens))) for p in crf_test
    ]
    crf_report = evaluate(crf_test, crf_predictions)
    print(
        f"CRF ({len(crf_train)} phrases): {time.time() - t0:.1f}s  "
        f"token acc {crf_report.token_accuracy:.3f}  "
        f"entity F1 {crf_report.entity_f1:.3f}"
    )

    # Plug the trained tagger into the pipeline.
    estimator = NutritionEstimator(tagger=perceptron)
    recipe = estimator.estimate_recipe(list(PIROSZHKI_PHRASES), servings=6)
    print(
        f"\npipeline with trained NER: Piroszhki = "
        f"{recipe.per_serving.calories:.0f} kcal/serving, "
        f"{recipe.fraction_fully_mapped:.0%} lines fully mapped"
    )


if __name__ == "__main__":
    train_n = int(sys.argv[1]) if len(sys.argv) > 1 else 1600
    test_n = int(sys.argv[2]) if len(sys.argv) > 2 else 500
    main(train_n, test_n)
