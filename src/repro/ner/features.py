"""Feature templates for the sequence taggers.

The templates mirror Stanford NER's default ingredient-scale feature
set: token identity, orthographic shape, affixes, neighbouring tokens,
and small domain lexicons (units, sizes, temperatures, dry/fresh and
state words).  Features are plain strings — both the CRF and the
perceptron index them the same way.
"""

from __future__ import annotations

import functools
import re

_NUM_RE = re.compile(r"^\d+(\.\d+)?$")
_FRACTION_RE = re.compile(r"^\d+/\d+$")

#: Lexicons: cheap, high-precision cues.  The learners can override
#: them from context ("500 g or 1 cup" teaches that "cup" after "or"
#: may be part of an alternative measure).
UNIT_WORDS: frozenset[str] = frozenset(
    {
        "cup", "cups", "tablespoon", "tablespoons", "tbsp", "tbsps",
        "tbs", "teaspoon", "teaspoons", "tsp", "tsps",
        "ounce", "ounces", "oz", "pound", "pounds",
        "lb", "lbs", "gram", "grams", "g", "kg", "ml", "l", "liter",
        "litre", "pint", "pints", "quart", "quarts", "gallon", "gallons",
        "pinch", "pinches", "dash", "dashes", "clove", "cloves", "slice",
        "slices", "stick", "sticks", "can", "cans", "package", "packages",
        "packet", "packets", "jar", "jars", "bottle", "bottles", "bunch",
        "bunches", "head", "heads", "stalk", "stalks", "sprig", "sprigs",
        "piece", "pieces", "fillet", "fillets", "loaf", "loaves", "leaf",
        "leaves", "ear", "ears", "envelope", "envelopes", "container",
        "drop", "drops", "cube", "cubes", "strip", "strips", "wedge",
        "wedges", "scoop", "scoops", "box", "boxes", "bag", "bags",
        "carton", "cartons", "pat", "pats", "fl", "fluid",
    }
)

SIZE_WORDS: frozenset[str] = frozenset(
    {"small", "medium", "large", "extra-large", "jumbo", "big", "little"}
)

TEMP_WORDS: frozenset[str] = frozenset(
    {"cold", "hot", "warm", "chilled", "frozen", "iced", "lukewarm",
     "room-temperature", "boiling"}
)

DF_WORDS: frozenset[str] = frozenset({"dry", "dried", "fresh", "freshly"})

STATE_WORDS: frozenset[str] = frozenset(
    {
        "chopped", "minced", "diced", "sliced", "grated", "ground",
        "crushed", "shredded", "peeled", "seeded", "halved", "quartered",
        "cubed", "julienned", "mashed", "pureed", "beaten", "whisked",
        "melted", "softened", "cooked", "uncooked", "boiled", "steamed",
        "roasted", "toasted", "grilled", "fried", "baked", "smoked",
        "cured", "pitted", "stemmed", "trimmed", "rinsed", "drained",
        "pressed", "hulled", "deveined", "flaked", "warmed", "soaked",
        "washed", "packed", "sifted", "divided", "separated", "crumbled",
        "torn", "cut", "split", "thawed", "defrosted", "scalded",
        "hard-cooked", "hard-boiled", "soft-boiled", "lean",
    }
)


@functools.lru_cache(maxsize=65536)
def word_shape(token: str) -> str:
    """Collapse a token to its orthographic shape (memoized).

    Corpus vocabulary is small relative to corpus size, so the
    per-character scan runs once per distinct token, not once per
    occurrence per feature-window position.

    >>> word_shape("Onion")
    'Xx'
    >>> word_shape("1/2")
    'd/d'
    >>> word_shape("all-purpose")
    'x-x'
    """
    shape: list[str] = []
    for ch in token:
        if ch.isdigit():
            cls = "d"
        elif ch.isalpha():
            cls = "X" if ch.isupper() else "x"
        else:
            cls = ch
        if not shape or shape[-1] != cls:
            shape.append(cls)
    return "".join(shape)


def token_features(
    tokens: list[str] | tuple[str, ...],
    i: int,
    shapes: list[str] | None = None,
) -> list[str]:
    """Features for position *i* of the token sequence.

    *shapes*, when given, holds the precomputed ``word_shape`` of every
    token — :func:`extract_features` computes each shape once per
    phrase instead of once per position window.
    """
    if shapes is None:
        shapes = [word_shape(t) for t in tokens]
    token = tokens[i]
    lower = token.lower()
    feats = [
        f"w={lower}",
        f"shape={shapes[i]}",
        f"suf2={lower[-2:]}",
        f"suf3={lower[-3:]}",
        f"pre2={lower[:2]}",
        f"pre3={lower[:3]}",
    ]
    if _NUM_RE.match(token):
        feats.append("is_number")
    if _FRACTION_RE.match(token):
        feats.append("is_fraction")
    if not any(c.isalnum() for c in token):
        feats.append("is_punct")
    if "-" in token:
        feats.append("has_hyphen")
    if lower in UNIT_WORDS:
        feats.append("lex=unit")
    if lower in SIZE_WORDS:
        feats.append("lex=size")
    if lower in TEMP_WORDS:
        feats.append("lex=temp")
    if lower in DF_WORDS:
        feats.append("lex=df")
    if lower in STATE_WORDS:
        feats.append("lex=state")
    if lower.endswith("ed"):
        feats.append("suffix_ed")
    if lower.endswith("ing"):
        feats.append("suffix_ing")
    if lower.endswith("ly"):
        feats.append("suffix_ly")
    if i == 0:
        feats.append("BOS")
    else:
        prev = tokens[i - 1].lower()
        feats.append(f"w-1={prev}")
        feats.append(f"shape-1={shapes[i - 1]}")
        if prev in UNIT_WORDS:
            feats.append("prev_lex=unit")
        if _NUM_RE.match(tokens[i - 1]) or _FRACTION_RE.match(tokens[i - 1]):
            feats.append("prev_is_number")
    if i == len(tokens) - 1:
        feats.append("EOS")
    else:
        nxt = tokens[i + 1].lower()
        feats.append(f"w+1={nxt}")
        if nxt in UNIT_WORDS:
            feats.append("next_lex=unit")
    if i >= 2:
        feats.append(f"w-2={tokens[i - 2].lower()}")
    if i + 2 < len(tokens):
        feats.append(f"w+2={tokens[i + 2].lower()}")
    return feats


def extract_features(tokens: list[str] | tuple[str, ...]) -> list[list[str]]:
    """Per-token feature lists for a whole phrase."""
    toks = list(tokens)
    shapes = [word_shape(t) for t in toks]
    return [token_features(toks, i, shapes) for i in range(len(toks))]
