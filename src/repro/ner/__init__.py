"""Named Entity Recognition for ingredient phrases (paper §II-A).

The paper trains Stanford NER — a linear-chain CRF over hand-crafted
features — to tag ingredient-phrase tokens with NAME, STATE, UNIT,
QUANTITY, TEMP, DF (dry/fresh) and SIZE.  This subpackage provides the
same model family built from scratch:

* :mod:`repro.ner.corpus` — tagged-phrase records and the Stanford
  TSV training format,
* :mod:`repro.ner.features` — the orthographic/lexical/contextual
  feature templates,
* :mod:`repro.ner.viterbi` — exact first-order decoding,
* :mod:`repro.ner.crf` — linear-chain CRF trained by L-BFGS,
* :mod:`repro.ner.perceptron` — averaged structured perceptron (same
  decoder, much faster training; the pipeline default),
* :mod:`repro.ner.rule_tagger` — deterministic lexicon baseline,
* :mod:`repro.ner.clustering` — POS-vector k-means used to select
  diverse train/test phrases,
* :mod:`repro.ner.metrics` — token/entity P-R-F1 and k-fold CV.
"""

from repro.ner.corpus import TAGS, TaggedPhrase, read_tsv, write_tsv
from repro.ner.features import extract_features
from repro.ner.metrics import (
    EvaluationReport,
    entity_f1,
    evaluate,
    k_fold_cross_validation,
)
from repro.ner.perceptron import AveragedPerceptronTagger
from repro.ner.rule_tagger import RuleBasedTagger
from repro.ner.clustering import cluster_phrases, select_diverse_corpus


def __getattr__(name: str):
    """Lazy export of :class:`LinearChainCRF`.

    ``repro.ner.crf`` imports scipy (L-BFGS training), which costs
    ~0.4 s — most of the pipeline's cold start — yet every default
    path uses the rule tagger or the perceptron.  Deferring the import
    until the CRF is actually requested keeps ``import repro`` (and
    artifact-loaded service startup) scipy-free.
    """
    if name == "LinearChainCRF":
        from repro.ner.crf import LinearChainCRF

        return LinearChainCRF
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "TAGS",
    "TaggedPhrase",
    "read_tsv",
    "write_tsv",
    "LinearChainCRF",
    "extract_features",
    "EvaluationReport",
    "entity_f1",
    "evaluate",
    "k_fold_cross_validation",
    "AveragedPerceptronTagger",
    "RuleBasedTagger",
    "cluster_phrases",
    "select_diverse_corpus",
]
