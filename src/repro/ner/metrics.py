"""Evaluation: token accuracy, per-tag and entity-level P/R/F1, k-fold CV.

The paper reports "an F1 score of 0.95 on the test set validated by
5-fold cross validation".  Stanford NER reports *entity-level* micro
F1, which :func:`entity_f1` reproduces (a predicted span counts as
correct only if tag, start and end all match a gold span).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.ner.corpus import TaggedPhrase


@dataclass(frozen=True, slots=True)
class TagScore:
    """Precision/recall/F1 for one tag."""

    tag: str
    precision: float
    recall: float
    f1: float
    support: int


@dataclass(frozen=True, slots=True)
class EvaluationReport:
    """Aggregate tagger evaluation."""

    token_accuracy: float
    entity_precision: float
    entity_recall: float
    entity_f1: float
    per_tag: tuple[TagScore, ...] = field(default_factory=tuple)

    def tag_score(self, tag: str) -> TagScore:
        """Score row for *tag* (KeyError if absent)."""
        for row in self.per_tag:
            if row.tag == tag:
                return row
        raise KeyError(tag)


def _prf(tp: int, fp: int, fn: int) -> tuple[float, float, float]:
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def entity_f1(
    gold: Sequence[TaggedPhrase], predicted: Sequence[TaggedPhrase]
) -> tuple[float, float, float]:
    """Entity-level micro precision, recall, F1 over span matches."""
    if len(gold) != len(predicted):
        raise ValueError(f"{len(gold)} gold vs {len(predicted)} predicted phrases")
    tp = fp = fn = 0
    for g, p in zip(gold, predicted):
        gold_spans = set(g.spans())
        pred_spans = set(p.spans())
        tp += len(gold_spans & pred_spans)
        fp += len(pred_spans - gold_spans)
        fn += len(gold_spans - pred_spans)
    return _prf(tp, fp, fn)


def evaluate(
    gold: Sequence[TaggedPhrase], predicted: Sequence[TaggedPhrase]
) -> EvaluationReport:
    """Full report: token accuracy, entity P/R/F1 and per-tag scores."""
    if len(gold) != len(predicted):
        raise ValueError(f"{len(gold)} gold vs {len(predicted)} predicted phrases")
    correct = total = 0
    tags: set[str] = set()
    tag_tp: dict[str, int] = {}
    tag_fp: dict[str, int] = {}
    tag_fn: dict[str, int] = {}
    tag_support: dict[str, int] = {}
    for g, p in zip(gold, predicted):
        if g.tokens != p.tokens:
            raise ValueError(
                f"token mismatch: {g.tokens} vs {p.tokens}"
            )
        for gt, pt in zip(g.tags, p.tags):
            total += 1
            if gt == pt:
                correct += 1
            tags.update((gt, pt))
            tag_support[gt] = tag_support.get(gt, 0) + 1
            if gt == pt:
                tag_tp[gt] = tag_tp.get(gt, 0) + 1
            else:
                tag_fn[gt] = tag_fn.get(gt, 0) + 1
                tag_fp[pt] = tag_fp.get(pt, 0) + 1
    per_tag = []
    for tag in sorted(tags):
        precision, recall, f1 = _prf(
            tag_tp.get(tag, 0), tag_fp.get(tag, 0), tag_fn.get(tag, 0)
        )
        per_tag.append(
            TagScore(tag, precision, recall, f1, tag_support.get(tag, 0))
        )
    e_precision, e_recall, e_f1 = entity_f1(gold, predicted)
    return EvaluationReport(
        token_accuracy=correct / total if total else 0.0,
        entity_precision=e_precision,
        entity_recall=e_recall,
        entity_f1=e_f1,
        per_tag=tuple(per_tag),
    )


def k_fold_cross_validation(
    phrases: Sequence[TaggedPhrase],
    train_fn: Callable[[list[TaggedPhrase]], object],
    k: int = 5,
    seed: int = 7,
) -> list[EvaluationReport]:
    """k-fold CV; *train_fn* takes a train split, returns a tagger.

    The returned tagger must expose ``predict(tokens) -> list[str]``.
    Folds are formed from a seeded shuffle, so results are
    reproducible.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if len(phrases) < k:
        raise ValueError(f"{len(phrases)} phrases cannot fill {k} folds")
    import random

    order = list(range(len(phrases)))
    random.Random(seed).shuffle(order)
    folds: list[list[int]] = [order[i::k] for i in range(k)]
    reports: list[EvaluationReport] = []
    for i in range(k):
        test_idx = set(folds[i])
        train = [phrases[j] for j in order if j not in test_idx]
        test = [phrases[j] for j in folds[i]]
        tagger = train_fn(train)
        predicted = [
            TaggedPhrase(p.tokens, tuple(tagger.predict(p.tokens)))  # type: ignore[attr-defined]
            for p in test
        ]
        reports.append(evaluate(test, predicted))
    return reports
