"""POS-vector clustering for annotation-corpus selection (paper §II-A).

"In order to include ingredient phrases of large diversity in our
training and testing set, we utilized Parts of Speech Tagging to form
vectors representing each ingredient phrase ... defined by the
frequency of the tag in the ingredient phrase.  We then proceeded to
cluster the obtained vectors.  The ingredient phrases were chosen for
the training and testing set by selecting a subset of ingredient
phrases from each cluster."

A small seeded k-means (k-means++ init) over the tag-frequency vectors
of :func:`repro.text.pos.tag_frequency_vector`, plus the proportional
per-cluster sampler that builds the 6,612 / 2,188 split.
"""

from __future__ import annotations

import numpy as np

from repro.text.pos import tag_frequency_vector


def kmeans(
    points: np.ndarray, k: int, seed: int = 11, max_iter: int = 100
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded k-means++ returning (labels, centroids).

    Deterministic for a given seed; empty clusters are re-seeded from
    the farthest point.
    """
    n = len(points)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if n == 0:
        raise ValueError("no points to cluster")
    k = min(k, n)
    rng = np.random.default_rng(seed)

    # k-means++ initialization
    centroids = np.empty((k, points.shape[1]))
    centroids[0] = points[rng.integers(n)]
    dist_sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = dist_sq.sum()
        if total <= 0:
            centroids[i:] = points[rng.integers(n, size=k - i)]
            break
        probs = dist_sq / total
        centroids[i] = points[rng.choice(n, p=probs)]
        dist_sq = np.minimum(dist_sq, ((points - centroids[i]) ** 2).sum(axis=1))

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iter):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for i in range(k):
            members = points[labels == i]
            if len(members):
                centroids[i] = members.mean(axis=0)
            else:
                farthest = distances.min(axis=1).argmax()
                centroids[i] = points[farthest]
    return labels, centroids


def cluster_phrases(
    phrase_tokens: list[list[str]] | list[tuple[str, ...]],
    k: int = 12,
    seed: int = 11,
) -> np.ndarray:
    """Cluster phrases by POS tag-frequency vectors; returns labels."""
    if not phrase_tokens:
        raise ValueError("no phrases to cluster")
    vectors = np.stack([tag_frequency_vector(list(t)) for t in phrase_tokens])
    labels, _ = kmeans(vectors, k=k, seed=seed)
    return labels


def select_diverse_corpus(
    phrase_tokens: list[list[str]] | list[tuple[str, ...]],
    train_size: int,
    test_size: int,
    k: int = 12,
    seed: int = 11,
) -> tuple[list[int], list[int]]:
    """Pick train/test phrase indices covering every POS cluster.

    Phrases are clustered, then train and test indices are drawn
    round-robin across clusters (seeded shuffle within each cluster) so
    both splits contain every phrase shape.  Returns disjoint
    (train_indices, test_indices).
    """
    n = len(phrase_tokens)
    if train_size + test_size > n:
        raise ValueError(
            f"requested {train_size}+{test_size} phrases from a pool of {n}"
        )
    labels = cluster_phrases(phrase_tokens, k=k, seed=seed)
    rng = np.random.default_rng(seed)
    buckets: list[list[int]] = [[] for _ in range(labels.max() + 1)]
    for idx, label in enumerate(labels):
        buckets[label].append(idx)
    for bucket in buckets:
        rng.shuffle(bucket)

    # Interleave clusters round-robin into one order, then slice: the
    # train prefix and the test suffix each cycle through every
    # cluster, so both splits cover every phrase shape.
    interleaved: list[int] = []
    cursor = 0
    while len(interleaved) < train_size + test_size:
        progressed = False
        for bucket in buckets:
            if cursor < len(bucket):
                interleaved.append(bucket[cursor])
                progressed = True
        if not progressed:
            raise RuntimeError("exhausted clusters before filling splits")
        cursor += 1
    train = interleaved[:train_size]
    test = interleaved[train_size : train_size + test_size]
    return train, test
