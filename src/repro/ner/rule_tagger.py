"""Deterministic lexicon-based tagger.

Serves two roles:

* a baseline the learned taggers must beat (ablation benchmark), and
* a fallback for pipelines that skip NER training entirely.

Rules (applied per token with light context):

1. numbers/fractions -> QUANTITY,
2. unit lexicon after a QUANTITY (or anywhere) -> UNIT,
3. size lexicon -> SIZE, temperature lexicon -> TEMP,
4. dry/fresh lexicon -> DF,
5. state lexicon (participles) -> STATE,
6. punctuation, adverbs and instruction words -> O,
7. everything else -> NAME.
"""

from __future__ import annotations

import re

from repro.ner.corpus import TaggedPhrase
from repro.ner.features import (
    DF_WORDS,
    SIZE_WORDS,
    STATE_WORDS,
    TEMP_WORDS,
    UNIT_WORDS,
)
from repro.utils import DEFAULT_CACHE_CAP, BoundedCache

_NUM_RE = re.compile(r"^\d+(\.\d+)?$|^\d+/\d+$")

#: Words that are part of instructions, not entities.
_INSTRUCTION_WORDS: frozenset[str] = frozenset(
    {
        "finely", "coarsely", "thinly", "thickly", "roughly", "freshly",
        "lightly", "well", "very", "into", "for", "taste", "serving",
        "garnish", "needed", "desired", "optional", "plus", "divided",
        "about", "approximately", "more", "if", "as", "and", "or", "to",
        "of", "the", "a", "an", "at", "room", "temperature", "your",
        "such", "like", "preferably",
    }
)


class RuleBasedTagger:
    """Context-light rule tagger over the paper's tag set."""

    def __init__(self) -> None:
        # token -> context-free base tag, filled by predict_batch only.
        # _classify is a pure function of the token string, so the memo
        # cannot change outcomes; it is bounded to keep long-lived
        # processes from growing without limit.
        self._base_cache: dict[str, str] = BoundedCache(DEFAULT_CACHE_CAP)

    def _classify(self, token: str) -> str:
        """Context-free tag for one token (rules 1-7, pre-repair)."""
        lower = token.lower()
        if _NUM_RE.match(token):
            return "QUANTITY"
        if not any(c.isalnum() for c in token):
            return "O"
        if lower in UNIT_WORDS:
            return "UNIT"
        if lower in SIZE_WORDS:
            return "SIZE"
        if lower in TEMP_WORDS:
            return "TEMP"
        if lower in DF_WORDS:
            return "DF"
        if lower in STATE_WORDS or self._hyphen_state(lower):
            return "STATE"
        if lower in _INSTRUCTION_WORDS:
            return "O"
        return "NAME"

    def predict(self, tokens: list[str] | tuple[str, ...]) -> list[str]:
        """Tag a token sequence with deterministic rules."""
        tags = [self._classify(token) for token in tokens]
        return self._repair(list(tokens), tags)

    def predict_batch(
        self, token_seqs: list[list[str]]
    ) -> list[list[str]]:
        """Tag many token sequences, memoizing the per-token rules.

        The columnar chunk pipeline's entry point: base tags are a
        pure per-token function, so a chunk that repeats vocabulary
        ("cup", "chopped", ",") classifies each distinct token once.
        The contextual :meth:`_repair` pass still runs per sequence.
        Bit-identical to mapping :meth:`predict` over the sequences.
        """
        cache = self._base_cache
        out: list[list[str]] = []
        for tokens in token_seqs:
            tags: list[str] = []
            for token in tokens:
                tag = cache.get(token)
                if tag is None:
                    tag = self._classify(token)
                    cache[token] = tag
                tags.append(tag)
            out.append(self._repair(list(tokens), tags))
        return out

    def _hyphen_state(self, lower: str) -> bool:
        """hard-cooked, oven-roasted … any hyphenated participle."""
        return "-" in lower and lower.rsplit("-", 1)[-1] in STATE_WORDS

    def _repair(self, tokens: list[str], tags: list[str]) -> list[str]:
        """Context fixes the per-token rules cannot see.

        * "fl"/"fluid" + "oz"/"ounce" both become UNIT.
        * Packaging parentheticals — "1 (15 ounce) can" — carry a size
          annotation, not the measure: QUANTITY/UNIT tags inside
          parentheses are reset to O.
        * A UNIT in a phrase containing no numeric token at all is
          more likely part of the name ("garlic clove" with no
          quantity stays NAME).
        """
        has_number = any(_NUM_RE.match(t) for t in tokens)
        out = list(tags)
        for i, token in enumerate(tokens):
            if token.lower() in ("fl", "fluid") and i + 1 < len(tokens) and tokens[
                i + 1
            ].lower() in ("oz", "ounce", "ounces"):
                out[i] = "UNIT"
                out[i + 1] = "UNIT"
        depth = 0
        for i, token in enumerate(tokens):
            if token == "(":
                depth += 1
            elif token == ")":
                depth = max(0, depth - 1)
            elif depth > 0 and out[i] in ("QUANTITY", "UNIT"):
                out[i] = "O"
        # Range dashes join their quantities: "2 - 4" is one QUANTITY.
        for i in range(1, len(tokens) - 1):
            if (tokens[i] == "-" and out[i - 1] == "QUANTITY"
                    and out[i + 1] == "QUANTITY"):
                out[i] = "QUANTITY"
        if not has_number:
            out = ["NAME" if t == "UNIT" else t for t in out]
        return out

    def tag_phrase(self, tokens: list[str] | tuple[str, ...]) -> TaggedPhrase:
        """Tag tokens and wrap in a :class:`TaggedPhrase`."""
        return TaggedPhrase(tuple(tokens), tuple(self.predict(tokens)))
