"""Tagged-phrase records and corpus I/O.

Tags follow the paper's inventory — NAME, STATE, UNIT, QUANTITY, TEMP,
DF (dry/fresh), SIZE — plus O for untagged tokens (punctuation,
instructions like "to taste").  Tokens carry one tag each (IO
encoding, as Stanford NER uses for this kind of corpus).

The on-disk format is Stanford NER's training TSV: one ``token<TAB>tag``
per line, blank line between phrases.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

#: The tag inventory, O first (the background tag).
TAGS: tuple[str, ...] = (
    "O",
    "NAME",
    "STATE",
    "UNIT",
    "QUANTITY",
    "TEMP",
    "DF",
    "SIZE",
)

_TAG_SET = frozenset(TAGS)


@dataclass(frozen=True, slots=True)
class TaggedPhrase:
    """One ingredient phrase with per-token tags."""

    tokens: tuple[str, ...]
    tags: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.tokens) != len(self.tags):
            raise ValueError(
                f"{len(self.tokens)} tokens vs {len(self.tags)} tags"
            )
        bad = [t for t in self.tags if t not in _TAG_SET]
        if bad:
            raise ValueError(f"unknown tags: {bad}")

    @property
    def text(self) -> str:
        """The phrase as plain text (detokenized with spaces)."""
        return " ".join(self.tokens)

    def entity_text(self, tag: str) -> str:
        """All tokens carrying *tag*, joined — e.g. the full NAME span.

        >>> p = TaggedPhrase(("1", "small", "onion"), ("QUANTITY", "SIZE", "NAME"))
        >>> p.entity_text("NAME")
        'onion'
        """
        if tag not in _TAG_SET:
            raise ValueError(f"unknown tag: {tag}")
        return " ".join(tok for tok, t in zip(self.tokens, self.tags) if t == tag)

    def spans(self) -> list[tuple[str, int, int]]:
        """Maximal same-tag spans as (tag, start, end) with end exclusive.

        O spans are omitted; used for entity-level F1.
        """
        out: list[tuple[str, int, int]] = []
        start = 0
        for i in range(1, len(self.tags) + 1):
            if i == len(self.tags) or self.tags[i] != self.tags[start]:
                if self.tags[start] != "O":
                    out.append((self.tags[start], start, i))
                start = i
        return out


def write_tsv(phrases: list[TaggedPhrase], path: str | Path) -> None:
    """Write phrases in Stanford NER TSV format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for phrase in phrases:
            for token, tag in zip(phrase.tokens, phrase.tags):
                fh.write(f"{token}\t{tag}\n")
            fh.write("\n")


def read_tsv(path: str | Path) -> list[TaggedPhrase]:
    """Read phrases from Stanford NER TSV format."""
    phrases: list[TaggedPhrase] = []
    tokens: list[str] = []
    tags: list[str] = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line.strip():
                if tokens:
                    phrases.append(TaggedPhrase(tuple(tokens), tuple(tags)))
                    tokens, tags = [], []
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ValueError(f"bad TSV line: {line!r}")
            tokens.append(parts[0])
            tags.append(parts[1])
    if tokens:
        phrases.append(TaggedPhrase(tuple(tokens), tuple(tags)))
    return phrases
