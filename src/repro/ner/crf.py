"""Linear-chain Conditional Random Field trained with L-BFGS.

The same model family as Stanford NER [Finkel et al. 2005]: per-token
feature functions paired with tags (emission weights) plus first-order
tag-transition weights, trained by maximizing L2-regularized
conditional log-likelihood with scipy's L-BFGS-B, decoded with Viterbi.

Implementation notes
--------------------
* Features are indexed once over the training corpus; unseen test
  features are ignored (standard behaviour).
* The objective/gradient use the forward-backward algorithm in log
  space via numpy ``logsumexp``-style reductions.
* Parameters are a single flat vector: emission block (F × K) followed
  by transition block (K × K) and start block (K).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize
from scipy.special import logsumexp

from repro.ner.corpus import TAGS, TaggedPhrase
from repro.ner.features import extract_features
from repro.ner.viterbi import viterbi_decode


class LinearChainCRF:
    """CRF tagger over the paper's tag inventory."""

    def __init__(
        self,
        tags: tuple[str, ...] = TAGS,
        l2: float = 1.0,
        max_iter: int = 100,
    ):
        if l2 < 0:
            raise ValueError(f"negative l2: {l2}")
        self._tags = tags
        self._tag_index = {t: i for i, t in enumerate(tags)}
        self._l2 = l2
        self._max_iter = max_iter
        self._feature_index: dict[str, int] = {}
        self._w_emit: np.ndarray | None = None   # (F, K)
        self._w_trans: np.ndarray | None = None  # (K, K)
        self._w_start: np.ndarray | None = None  # (K,)
        self.converged: bool | None = None

    @property
    def tags(self) -> tuple[str, ...]:
        return self._tags

    @property
    def n_features(self) -> int:
        return len(self._feature_index)

    # ------------------------------------------------------------------
    # data preparation

    def _index_features(self, corpus_feats: list[list[list[str]]]) -> None:
        index: dict[str, int] = {}
        for phrase_feats in corpus_feats:
            for token_feats in phrase_feats:
                for f in token_feats:
                    if f not in index:
                        index[f] = len(index)
        self._feature_index = index

    def _encode(self, phrase_feats: list[list[str]]) -> list[np.ndarray]:
        """Per-token arrays of known feature indices."""
        return [
            np.array(
                [self._feature_index[f] for f in fs if f in self._feature_index],
                dtype=np.int64,
            )
            for fs in phrase_feats
        ]

    # ------------------------------------------------------------------
    # training

    def train(self, phrases: list[TaggedPhrase]) -> None:
        """Fit by L-BFGS on the regularized conditional log-likelihood."""
        if not phrases:
            raise ValueError("empty training corpus")
        K = len(self._tags)
        corpus_feats = [extract_features(p.tokens) for p in phrases]
        self._index_features(corpus_feats)
        F = len(self._feature_index)
        encoded = [self._encode(fs) for fs in corpus_feats]
        gold = [
            np.array([self._tag_index[t] for t in p.tags], dtype=np.int64)
            for p in phrases
        ]

        n_params = F * K + K * K + K

        def unpack(theta: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            emit = theta[: F * K].reshape(F, K)
            trans = theta[F * K : F * K + K * K].reshape(K, K)
            start = theta[F * K + K * K :]
            return emit, trans, start

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            emit, trans, start = unpack(theta)
            g_emit = np.zeros_like(emit)
            g_trans = np.zeros_like(trans)
            g_start = np.zeros_like(start)
            nll = 0.0
            for feats, y in zip(encoded, gold):
                T = len(feats)
                em = np.zeros((T, K))
                for t, idx in enumerate(feats):
                    if idx.size:
                        em[t] = emit[idx].sum(axis=0)
                # gold score
                score = start[y[0]] + em[np.arange(T), y].sum()
                score += trans[y[:-1], y[1:]].sum() if T > 1 else 0.0
                # forward
                alpha = np.zeros((T, K))
                alpha[0] = start + em[0]
                for t in range(1, T):
                    alpha[t] = em[t] + logsumexp(
                        alpha[t - 1][:, None] + trans, axis=0
                    )
                log_z = logsumexp(alpha[-1])
                nll += log_z - score
                # backward
                beta = np.zeros((T, K))
                for t in range(T - 2, -1, -1):
                    beta[t] = logsumexp(
                        trans + (em[t + 1] + beta[t + 1])[None, :], axis=1
                    )
                # marginals
                gamma = np.exp(alpha + beta - log_z)  # (T, K)
                # expected - empirical
                for t, idx in enumerate(feats):
                    if idx.size:
                        g_emit[idx] += gamma[t]
                        g_emit[idx, y[t]] -= 1.0
                g_start += gamma[0]
                g_start[y[0]] -= 1.0
                for t in range(1, T):
                    pair = np.exp(
                        alpha[t - 1][:, None]
                        + trans
                        + (em[t] + beta[t])[None, :]
                        - log_z
                    )
                    g_trans += pair
                    g_trans[y[t - 1], y[t]] -= 1.0
            # L2 regularization
            nll += 0.5 * self._l2 * float(theta @ theta)
            grad = np.concatenate(
                [g_emit.ravel(), g_trans.ravel(), g_start]
            ) + self._l2 * theta
            return nll, grad

        theta0 = np.zeros(n_params)
        result = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self._max_iter},
        )
        self.converged = bool(result.success)
        self._w_emit, self._w_trans, self._w_start = unpack(result.x)

    # ------------------------------------------------------------------
    # inference

    def predict(self, tokens: list[str] | tuple[str, ...]) -> list[str]:
        """Tag a token sequence (raises if the model is untrained)."""
        if self._w_emit is None:
            raise RuntimeError("CRF is not trained")
        if not tokens:
            return []
        feats = self._encode(extract_features(tokens))
        K = len(self._tags)
        em = np.zeros((len(feats), K))
        for t, idx in enumerate(feats):
            if idx.size:
                em[t] = self._w_emit[idx].sum(axis=0)
        path = viterbi_decode(em, self._w_trans, self._w_start)
        return [self._tags[i] for i in path]

    def tag_phrase(self, tokens: list[str] | tuple[str, ...]) -> TaggedPhrase:
        """Tag tokens and wrap in a :class:`TaggedPhrase`."""
        return TaggedPhrase(tuple(tokens), tuple(self.predict(tokens)))
