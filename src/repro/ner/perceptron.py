"""Averaged structured perceptron tagger.

Collins (2002) structured perceptron with weight averaging: decode the
full sequence with Viterbi, and on mistakes promote gold features /
demote predicted features.  Same feature space and decoder as the CRF,
an order of magnitude faster to train — the pipeline's default tagger.
"""

from __future__ import annotations

import random
from collections import defaultdict

import numpy as np

from repro.ner.corpus import TAGS, TaggedPhrase
from repro.ner.features import extract_features
from repro.ner.viterbi import viterbi_decode


class AveragedPerceptronTagger:
    """Structured perceptron with averaging over all updates."""

    def __init__(self, tags: tuple[str, ...] = TAGS, seed: int = 13):
        self._tags = tags
        self._tag_index = {t: i for i, t in enumerate(tags)}
        self._seed = seed
        self._weights: dict[tuple[str, int], float] = defaultdict(float)
        self._transitions = np.zeros((len(tags), len(tags)))
        self._start = np.zeros(len(tags))
        self._trained = False

    @property
    def tags(self) -> tuple[str, ...]:
        return self._tags

    def train(
        self,
        phrases: list[TaggedPhrase],
        epochs: int = 5,
    ) -> None:
        """Fit on gold phrases with *epochs* shuffled passes."""
        if not phrases:
            raise ValueError("empty training corpus")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        rng = random.Random(self._seed)
        K = len(self._tags)

        # Accumulators for averaging: total = Σ (value at each step).
        # We use the standard lazy trick: keep last-update timestamps.
        acc_w: dict[tuple[str, int], float] = defaultdict(float)
        ts_w: dict[tuple[str, int], int] = defaultdict(int)
        acc_trans = np.zeros((K, K))
        ts_trans = np.zeros((K, K), dtype=np.int64)
        acc_start = np.zeros(K)
        ts_start = np.zeros(K, dtype=np.int64)
        step = 0

        def bump_w(key: tuple[str, int], delta: float) -> None:
            acc_w[key] += self._weights[key] * (step - ts_w[key])
            ts_w[key] = step
            self._weights[key] += delta

        data = [
            (extract_features(p.tokens), [self._tag_index[t] for t in p.tags])
            for p in phrases
        ]
        for _ in range(epochs):
            order = list(range(len(data)))
            rng.shuffle(order)
            for idx in order:
                feats, gold = data[idx]
                step += 1
                pred = self._decode_indices(feats)
                if pred == gold:
                    continue
                for i, (g, p) in enumerate(zip(gold, pred)):
                    if g != p:
                        for f in feats[i]:
                            bump_w((f, g), +1.0)
                            bump_w((f, p), -1.0)
                # Transition / start updates (full-path contrast).
                acc_start += self._start * (step - ts_start)
                ts_start[:] = step
                self._start[gold[0]] += 1.0
                self._start[pred[0]] -= 1.0
                acc_trans += self._transitions * (step - ts_trans)
                ts_trans[:, :] = step
                for i in range(1, len(gold)):
                    self._transitions[gold[i - 1], gold[i]] += 1.0
                    self._transitions[pred[i - 1], pred[i]] -= 1.0

        # Finalize averages.
        step += 1
        for key, value in self._weights.items():
            acc_w[key] += value * (step - ts_w[key])
        acc_trans += self._transitions * (step - ts_trans)
        acc_start += self._start * (step - ts_start)
        self._weights = defaultdict(
            float, {k: v / step for k, v in acc_w.items() if v}
        )
        self._transitions = acc_trans / step
        self._start = acc_start / step
        self._trained = True

    def _emissions(self, feats: list[list[str]]) -> np.ndarray:
        K = len(self._tags)
        em = np.zeros((len(feats), K))
        for i, token_feats in enumerate(feats):
            for f in token_feats:
                for k in range(K):
                    w = self._weights.get((f, k))
                    if w:
                        em[i, k] += w
        return em

    def _decode_indices(self, feats: list[list[str]]) -> list[int]:
        return viterbi_decode(self._emissions(feats), self._transitions, self._start)

    def predict(self, tokens: list[str] | tuple[str, ...]) -> list[str]:
        """Tag a token sequence."""
        if not tokens:
            return []
        feats = extract_features(tokens)
        return [self._tags[i] for i in self._decode_indices(feats)]

    def tag_phrase(self, tokens: list[str] | tuple[str, ...]) -> TaggedPhrase:
        """Tag tokens and wrap in a :class:`TaggedPhrase`."""
        return TaggedPhrase(tuple(tokens), tuple(self.predict(tokens)))
