"""Averaged structured perceptron tagger.

Collins (2002) structured perceptron with weight averaging: decode the
full sequence with Viterbi, and on mistakes promote gold features /
demote predicted features.  Same feature space and decoder as the CRF,
an order of magnitude faster to train — the pipeline's default tagger.
"""

from __future__ import annotations

import random
from collections import defaultdict

import numpy as np

from repro.ner.corpus import TAGS, TaggedPhrase
from repro.ner.features import extract_features, token_features, word_shape
from repro.ner.viterbi import viterbi_decode, viterbi_decode_batch
from repro.utils import DEFAULT_CACHE_CAP, BoundedCache


class AveragedPerceptronTagger:
    """Structured perceptron with averaging over all updates."""

    def __init__(self, tags: tuple[str, ...] = TAGS, seed: int = 13):
        self._tags = tags
        self._tag_index = {t: i for i, t in enumerate(tags)}
        self._seed = seed
        self._weights: dict[tuple[str, int], float] = defaultdict(float)
        self._transitions = np.zeros((len(tags), len(tags)))
        self._start = np.zeros(len(tags))
        self._trained = False
        # Interned decode-time view of the weights, built by train():
        # feature string -> row id, and a (n_features, K) matrix whose
        # row f holds the weights of feature f for every tag.  None
        # while training (the dict is the live, evolving store).
        self._feature_ids: dict[str, int] | None = None
        self._weight_matrix: np.ndarray | None = None
        # Window memo for predict_batch: the features of a position
        # are a pure function of the 5-token window around it (None
        # marks out-of-range neighbours, which encodes BOS/EOS and the
        # w±2 presence flags exactly), so the interned feature ids of
        # a recurring window are computed once.  Rebuilt whenever the
        # interned view is (see _intern_weights).
        self._window_ids: dict[tuple, list[int]] = BoundedCache(
            DEFAULT_CACHE_CAP
        )

    @property
    def tags(self) -> tuple[str, ...]:
        return self._tags

    def train(
        self,
        phrases: list[TaggedPhrase],
        epochs: int = 5,
    ) -> None:
        """Fit on gold phrases with *epochs* shuffled passes."""
        if not phrases:
            raise ValueError("empty training corpus")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        rng = random.Random(self._seed)
        K = len(self._tags)
        # The dict is the live store during training; drop any decode
        # view from a previous train() so _emissions tracks updates.
        self._feature_ids = None
        self._weight_matrix = None

        # Accumulators for averaging: total = Σ (value at each step).
        # We use the standard lazy trick: keep last-update timestamps.
        acc_w: dict[tuple[str, int], float] = defaultdict(float)
        ts_w: dict[tuple[str, int], int] = defaultdict(int)
        acc_trans = np.zeros((K, K))
        ts_trans = np.zeros((K, K), dtype=np.int64)
        acc_start = np.zeros(K)
        ts_start = np.zeros(K, dtype=np.int64)
        step = 0

        def bump_w(key: tuple[str, int], delta: float) -> None:
            acc_w[key] += self._weights[key] * (step - ts_w[key])
            ts_w[key] = step
            self._weights[key] += delta

        data = [
            (extract_features(p.tokens), [self._tag_index[t] for t in p.tags])
            for p in phrases
        ]
        for _ in range(epochs):
            order = list(range(len(data)))
            rng.shuffle(order)
            for idx in order:
                feats, gold = data[idx]
                step += 1
                pred = self._decode_indices(feats)
                if pred == gold:
                    continue
                for i, (g, p) in enumerate(zip(gold, pred)):
                    if g != p:
                        for f in feats[i]:
                            bump_w((f, g), +1.0)
                            bump_w((f, p), -1.0)
                # Transition / start updates (full-path contrast).
                acc_start += self._start * (step - ts_start)
                ts_start[:] = step
                self._start[gold[0]] += 1.0
                self._start[pred[0]] -= 1.0
                acc_trans += self._transitions * (step - ts_trans)
                ts_trans[:, :] = step
                for i in range(1, len(gold)):
                    self._transitions[gold[i - 1], gold[i]] += 1.0
                    self._transitions[pred[i - 1], pred[i]] -= 1.0

        # Finalize averages.
        step += 1
        for key, value in self._weights.items():
            acc_w[key] += value * (step - ts_w[key])
        acc_trans += self._transitions * (step - ts_trans)
        acc_start += self._start * (step - ts_start)
        self._weights = defaultdict(
            float, {k: v / step for k, v in acc_w.items() if v}
        )
        self._transitions = acc_trans / step
        self._start = acc_start / step
        self._intern_weights()
        self._trained = True

    def snapshot(self) -> dict:
        """Plain-builtins view of the trained model state.

        The weight dict is the single source of truth: entries are
        listed in insertion order, and :meth:`from_snapshot` re-inserts
        them identically before calling :meth:`_intern_weights` —
        which assigns feature ids by first appearance — so the
        restored interned matrix, and therefore every decode, is
        bit-identical to the original's.  (``ndarray.tolist``
        round-trips float64 exactly.)  Deriving the interned view on
        restore rather than storing it means a snapshot cannot carry a
        matrix that disagrees with its weights.
        """
        if not self._trained:
            raise ValueError("cannot snapshot an untrained tagger")
        return {
            "tags": list(self._tags),
            "seed": self._seed,
            "weights": [
                [feat, tag, value]
                for (feat, tag), value in self._weights.items()
            ],
            "transitions": self._transitions.tolist(),
            "start": self._start.tolist(),
        }

    @classmethod
    def from_snapshot(cls, state: dict) -> "AveragedPerceptronTagger":
        """Rebuild a trained tagger from :meth:`snapshot` output."""
        tagger = cls(tags=tuple(state["tags"]), seed=int(state["seed"]))
        for feat, tag, value in state["weights"]:
            tagger._weights[(feat, int(tag))] = float(value)
        K = len(tagger._tags)
        tagger._transitions = np.asarray(
            state["transitions"], dtype=float
        ).reshape(K, K)
        tagger._start = np.asarray(state["start"], dtype=float).reshape(K)
        tagger._intern_weights()
        tagger._trained = True
        return tagger

    def _intern_weights(self) -> None:
        """Build the interned feature-id / weight-matrix decode view.

        Decoding through the matrix replaces the per-token triple loop
        over ``dict.get((feature, tag))`` with one fancy-indexed row
        sum per token (see :meth:`_emissions`).
        """
        K = len(self._tags)
        feature_ids: dict[str, int] = {}
        for feat, _tag in self._weights:
            if feat not in feature_ids:
                feature_ids[feat] = len(feature_ids)
        matrix = np.zeros((len(feature_ids), K))
        for (feat, tag), weight in self._weights.items():
            matrix[feature_ids[feat], tag] = weight
        self._feature_ids = feature_ids
        self._weight_matrix = matrix
        self._window_ids = BoundedCache(DEFAULT_CACHE_CAP)

    def _emissions(self, feats: list[list[str]]) -> np.ndarray:
        """Emission scores, (T, K).

        Vectorized hot path: per token, gather the interned rows of
        its known features and sum them.  NumPy reduces axis 0 of a
        (n, K) block sequentially for K >= 2, so the result is
        bit-identical to the reference dict accumulation (the absent
        (feature, tag) cells hold +0.0, which is addition-neutral);
        ``tests/test_pipeline_parallel.py`` locks this in.  Falls back
        to the dict walk while training (the matrix is stale then).
        """
        matrix = self._weight_matrix
        if matrix is None:
            return self._emissions_reference(feats)
        K = len(self._tags)
        em = np.zeros((len(feats), K))
        feature_ids = self._feature_ids
        for i, token_feats in enumerate(feats):
            ids = [
                fid
                for f in token_feats
                if (fid := feature_ids.get(f)) is not None
            ]
            if ids:
                em[i] = matrix[ids].sum(axis=0)
        return em

    def _emissions_reference(self, feats: list[list[str]]) -> np.ndarray:
        """Reference dict-based emission loop (training + parity tests)."""
        K = len(self._tags)
        em = np.zeros((len(feats), K))
        for i, token_feats in enumerate(feats):
            for f in token_feats:
                for k in range(K):
                    w = self._weights.get((f, k))
                    if w:
                        em[i, k] += w
        return em

    def _decode_indices(self, feats: list[list[str]]) -> list[int]:
        return viterbi_decode(self._emissions(feats), self._transitions, self._start)

    def predict(self, tokens: list[str] | tuple[str, ...]) -> list[str]:
        """Tag a token sequence."""
        if not tokens:
            return []
        feats = extract_features(tokens)
        return [self._tags[i] for i in self._decode_indices(feats)]

    def predict_batch(
        self, token_seqs: list[list[str]]
    ) -> list[list[str]]:
        """Tag many token sequences with one chunk-wide emission pass.

        Extends the :meth:`_emissions` matrix pattern across a whole
        chunk: every token of every sequence contributes its interned
        feature rows to one flat gather, and ``np.add.reduceat`` sums
        each token's contiguous row block in a single call.  reduceat
        reduces axis 0 of each block sequentially exactly like
        ``matrix[ids].sum(axis=0)``, so per-line emissions — and the
        per-line Viterbi decodes over them — are bit-identical to
        :meth:`predict`.  Viterbi itself stays per sequence (it is a
        sequential recurrence); only the emission gather is batched.
        """
        matrix = self._weight_matrix
        if matrix is None:
            return [self.predict(tokens) for tokens in token_seqs]
        feature_ids = self._feature_ids
        window_ids = self._window_ids
        K = len(self._tags)

        # Interned feature ids per token, memoized on the 5-token
        # window (None-padded — the padding encodes BOS/EOS and the
        # w±2 presence exactly, see token_features).
        ids_per_seq: list[list[list[int]]] = []
        flat_ids: list[int] = []
        ids_per_token: list[int] = []  # interned-feature count per token
        for tokens in token_seqs:
            toks = list(tokens)
            n = len(toks)
            seq_ids: list[list[int]] = []
            shapes: list[str] | None = None
            for i in range(n):
                key = (
                    toks[i - 2] if i >= 2 else None,
                    toks[i - 1] if i >= 1 else None,
                    toks[i],
                    toks[i + 1] if i + 1 < n else None,
                    toks[i + 2] if i + 2 < n else None,
                )
                ids = window_ids.get(key)
                if ids is None:
                    if shapes is None:
                        shapes = [word_shape(t) for t in toks]
                    ids = [
                        fid
                        for f in token_features(toks, i, shapes)
                        if (fid := feature_ids.get(f)) is not None
                    ]
                    window_ids[key] = ids
                seq_ids.append(ids)
                flat_ids.extend(ids)
                ids_per_token.append(len(ids))
            ids_per_seq.append(seq_ids)

        em_all = np.zeros((len(ids_per_token), K))
        if flat_ids:
            rows = matrix[np.asarray(flat_ids, dtype=np.intp)]
            counts = np.asarray(ids_per_token, dtype=np.int64)
            # Tokens with no known features keep their zero rows; the
            # remaining blocks are contiguous in *rows*, and reduceat
            # is pointed only at their start offsets (reduceat treats
            # an empty segment as "take the element at the index",
            # which would be wrong — so empty segments never reach it).
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            nonempty = np.nonzero(counts)[0]
            em_all[nonempty] = np.add.reduceat(
                rows, starts[nonempty], axis=0
            )

        # Viterbi in length buckets: phrases of equal length decode in
        # one lockstep batch (bit-identical per phrase — see
        # viterbi_decode_batch).
        out: list[list[str] | None] = [None] * len(token_seqs)
        seq_slices: list = []
        offset = 0
        buckets: dict[int, list[int]] = {}
        for idx, seq_ids in enumerate(ids_per_seq):
            n = len(seq_ids)
            seq_slices.append(em_all[offset:offset + n])
            offset += n
            if n == 0:
                out[idx] = []
            else:
                buckets.setdefault(n, []).append(idx)
        tags = self._tags
        for members in buckets.values():
            em = np.stack([seq_slices[idx] for idx in members])
            paths = viterbi_decode_batch(em, self._transitions, self._start)
            for idx, path in zip(members, paths):
                out[idx] = [tags[k] for k in path]
        return out

    def tag_phrase(self, tokens: list[str] | tuple[str, ...]) -> TaggedPhrase:
        """Tag tokens and wrap in a :class:`TaggedPhrase`."""
        return TaggedPhrase(tuple(tokens), tuple(self.predict(tokens)))
