"""Exact first-order Viterbi decoding.

Shared by the CRF and the structured perceptron: both produce a
(T × K) emission-score matrix, a (K × K) transition matrix and a (K,)
start-score vector; decoding is identical.
"""

from __future__ import annotations

import numpy as np


def viterbi_decode(
    emissions: np.ndarray,
    transitions: np.ndarray,
    start: np.ndarray,
) -> list[int]:
    """Highest-scoring tag sequence.

    Parameters
    ----------
    emissions:
        Array of shape (T, K): score of tag k at position t.
    transitions:
        Array of shape (K, K): score of moving from tag i to tag j.
    start:
        Array of shape (K,): score of starting with tag k.

    Returns
    -------
    list[int]
        Tag indices of length T (empty list for T == 0).
    """
    T, K = emissions.shape
    if T == 0:
        return []
    if transitions.shape != (K, K):
        raise ValueError(f"transitions shape {transitions.shape} != ({K}, {K})")
    if start.shape != (K,):
        raise ValueError(f"start shape {start.shape} != ({K},)")

    delta = start + emissions[0]
    backpointers = np.zeros((T, K), dtype=np.int64)
    for t in range(1, T):
        # scores[i, j] = delta[i] + transitions[i, j]
        scores = delta[:, None] + transitions
        backpointers[t] = np.argmax(scores, axis=0)
        delta = scores[backpointers[t], np.arange(K)] + emissions[t]

    path = [int(np.argmax(delta))]
    for t in range(T - 1, 0, -1):
        path.append(int(backpointers[t, path[-1]]))
    path.reverse()
    return path


def viterbi_decode_batch(
    emissions: np.ndarray,
    transitions: np.ndarray,
    start: np.ndarray,
) -> list[list[int]]:
    """Decode a batch of equal-length sequences in lockstep.

    *emissions* has shape (N, T, K): N sequences of the same length T.
    Returns N tag-index paths.  Every step performs the same float64
    additions and first-occurrence argmax the per-sequence
    :func:`viterbi_decode` performs — elementwise ops broadcast per
    sequence, nothing is reduced across sequences — so each returned
    path is bit-identical to ``viterbi_decode(emissions[n], ...)``.
    Used by the columnar chunk pipeline, which buckets a chunk's
    phrases by length and decodes each bucket in one call.
    """
    N, T, K = emissions.shape
    if T == 0:
        return [[] for _ in range(N)]
    if transitions.shape != (K, K):
        raise ValueError(f"transitions shape {transitions.shape} != ({K}, {K})")
    if start.shape != (K,):
        raise ValueError(f"start shape {start.shape} != ({K},)")

    delta = start + emissions[:, 0]  # (N, K)
    backpointers = np.zeros((N, T, K), dtype=np.int64)
    for t in range(1, T):
        # scores[n, i, j] = delta[n, i] + transitions[i, j]
        scores = delta[:, :, None] + transitions
        bp = scores.argmax(axis=1)  # (N, K)
        backpointers[:, t] = bp
        delta = (
            np.take_along_axis(scores, bp[:, None, :], axis=1)[:, 0, :]
            + emissions[:, t]
        )

    last = delta.argmax(axis=1)
    paths: list[list[int]] = []
    for n in range(N):
        path = [int(last[n])]
        pointers = backpointers[n]
        for t in range(T - 1, 0, -1):
            path.append(int(pointers[t, path[-1]]))
        path.reverse()
        paths.append(path)
    return paths
