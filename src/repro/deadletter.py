"""Dead-letter records: quarantined inputs with reason-coded provenance.

A production corpus run must not die on one bad line.  When quarantine
is enabled, the two failure classes that used to abort a run are
instead diverted here:

* **ingest** — a JSONL corpus line that is not valid JSON or not a
  valid recipe (:func:`repro.recipedb.corpus.iter_recipes_jsonl` with
  ``on_error="skip"``), identified by its 1-based file line number;
* **estimate** — an ingredient line whose estimation raised
  (:meth:`NutritionEstimator.corpus_collect_estimates` with a
  quarantine log), identified by its ordinal in the corpus's
  distinct-line table.

Every record carries a machine-readable reason code in the same
registry style as :mod:`repro.core.resolution` — quarantined estimate
placeholders use :data:`repro.core.resolution.REASON_ESTIMATOR_ERROR`
so the reason surfaces through ``/metrics`` and reason breakdowns
exactly like any other per-line provenance.

The contract quarantine preserves: **a dead-lettered line behaves as
if it were absent from the corpus** — it contributes no unit
observations and a zero profile, so every clean line's estimate is
bit-identical to a run over the corpus with the bad line removed
(``tests/test_fault_tolerance.py``).

Durable batch runs persist their report with
:func:`write_report_jsonl`: one JSON object per line, stamped with
the run id and sorted into a stable canonical order, written
atomically into the run directory — so re-runs never overwrite each
other's reports and a resumed run's report is byte-identical to the
uninterrupted run's.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.utils import atomic_write_text

# Ingest-side reason codes (estimate-side quarantine reuses
# repro.core.resolution.REASON_ESTIMATOR_ERROR).
REASON_MALFORMED_JSON = "malformed-json"
REASON_INVALID_RECIPE = "invalid-recipe"

#: Offending input is truncated to this many characters per record so
#: a multi-megabyte corrupted line cannot balloon the log.
MAX_INPUT_CHARS = 200


@dataclass(frozen=True, slots=True)
class DeadLetter:
    """One quarantined input."""

    source: str  # "ingest" | "estimate"
    line_no: int  # 1-based file line (ingest) / distinct-line ordinal
    input: str  # offending input, truncated
    reason: str  # machine-readable reason code
    detail: str = ""  # human-readable cause (exception repr etc.)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "line_no": self.line_no,
            "input": self.input,
            "reason": self.reason,
            "detail": self.detail,
        }


class DeadLetterLog:
    """An append-only collection of :class:`DeadLetter` records."""

    def __init__(self) -> None:
        self._records: list[DeadLetter] = []

    def add(
        self,
        source: str,
        line_no: int,
        input_text: str,
        reason: str,
        detail: str = "",
    ) -> None:
        self._records.append(
            DeadLetter(
                source=source,
                line_no=line_no,
                input=input_text[:MAX_INPUT_CHARS],
                reason=reason,
                detail=detail[:MAX_INPUT_CHARS],
            )
        )

    def extend(self, records: "DeadLetterLog | list[DeadLetter]") -> None:
        self._records.extend(records)

    def replace(self, records: "list[DeadLetter]") -> None:
        """Swap the log's contents in place (identity-preserving).

        The sharded coordinator uses this to renumber estimate-side
        records without breaking callers that already hold a
        reference to the run report's log.
        """
        self._records = list(records)

    @property
    def records(self) -> tuple[DeadLetter, ...]:
        return tuple(self._records)

    def by_reason(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for record in self._records:
            tally[record.reason] = tally.get(record.reason, 0) + 1
        return dict(sorted(tally.items()))

    def render(self) -> str:
        """Human-readable dead-letter report (the CLI prints this)."""
        if not self._records:
            return "no dead-lettered lines"
        lines = [f"{len(self._records)} dead-lettered line(s):"]
        for record in self._records:
            lines.append(
                f"  [{record.source} line {record.line_no}] "
                f"{record.reason}: {record.input!r}"
                + (f" ({record.detail})" if record.detail else "")
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)


# ----------------------------------------------------------------------
# durable report files

#: File name for a run's persisted dead-letter report (one JSON object
#: per line, inside the run directory).
REPORT_NAME = "dead_letters.jsonl"


def report_lines(log: DeadLetterLog, run_id: str) -> list[str]:
    """The report's JSONL lines in their canonical, stable order.

    Records are sorted by ``(source, line_no, input, reason)`` — not
    by arrival order — so a resumed run (which replays journaled
    chunks and re-derives ingest records) emits a byte-identical
    report to the uninterrupted run, and repeated runs over the same
    corpus diff cleanly against each other.  Every line carries the
    run id, so reports from different runs are self-identifying and
    never mistaken for one another.
    """
    ordered = sorted(
        log.records,
        key=lambda r: (r.source, r.line_no, r.input, r.reason),
    )
    return [
        json.dumps({"run_id": run_id, **record.to_dict()}, sort_keys=True)
        for record in ordered
    ]


def write_report_jsonl(
    path: str | Path, log: DeadLetterLog, run_id: str
) -> Path:
    """Persist *log* as a run-id-stamped JSONL report, atomically.

    Written through :func:`repro.utils.atomic_write_text` so a crash
    mid-write can never leave a torn report next to a valid journal.
    An empty log still writes an (empty) file: the report's existence
    marks "this run flushed its dead letters", and byte-diffing a
    resumed run against a clean one stays meaningful.
    """
    path = Path(path)
    lines = report_lines(log, run_id)
    content = "\n".join(lines) + ("\n" if lines else "")
    atomic_write_text(path, content)
    return path
