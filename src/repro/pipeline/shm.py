"""Shared-memory artifact handoff for pool workers.

The original worker bootstrap pickled an :class:`EstimatorSpec` into
every worker, which re-serialized the food database and (for trained
taggers) full weight matrices once per process.  This module replaces
that with a **publish once, attach many** handoff:

1. The coordinator packs the complete artifact image — the exact
   header + checksum + payload byte layout of an artifact *file*
   (:func:`repro.artifacts.format.pack_artifact_blob`) — into one
   named ``multiprocessing.shared_memory`` segment (``repro-art-*``).
2. Each worker opens the segment read-only by name, validates magic →
   version → length → checksum → schema → database fingerprint, and
   builds its estimator from the validated payload.  A worker can
   therefore never boot from a torn or swapped image: the same typed
   errors a corrupt artifact *file* raises
   (:class:`~repro.artifacts.errors.ArtifactCorruptError`,
   :class:`~repro.artifacts.errors.ArtifactMismatchError`) surface
   through the pool's ``init_error`` channel.
3. The coordinator owns the segment's lifetime: it is created once
   per pool, survives worker crash/respawn cycles (respawned workers
   re-attach to the same name), and is unlinked exactly once in
   ``pool.close()`` — idempotently, so double-close and
   already-removed segments are no-ops.  Coordinators that die
   *uncleanly* (``kill -9``, OOM, injected ``os._exit``) can't unlink;
   :func:`sweep_stale_segments` reclaims their segments — identified
   by the dead creator pid embedded in the name — at the next pool
   start on the same host.

**Fork only.**  Under the ``fork`` start method every child inherits
the parent's resource-tracker connection, so attach-side registrations
dedup against the creator's and nothing unlinks the segment early.
Under ``spawn`` each child starts its *own* tracker, which would
unlink the segment when the first worker exits; for non-fork contexts
:func:`make_bootstrap` falls back to the classic pickled-spec
bootstrap, which is slower but start-method agnostic.  Estimators
whose tagger cannot be captured into an artifact payload fall back
the same way.

Fault injection: workers honour ``crash@shm-attach:<worker_id>``
(:mod:`repro.faults`) immediately before attaching, so the harness can
prove a worker killed at the worst moment — segment published, not
yet mapped — respawns, re-attaches and leaves no segment behind.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import secrets
from multiprocessing import shared_memory
from typing import Callable

from repro import faults
from repro.artifacts.errors import ArtifactMismatchError
from repro.artifacts.format import pack_artifact_blob, parse_artifact_blob
from repro.artifacts.store import (
    ArtifactSnapshot,
    _validate_schema,
    capture_payload,
    database_fingerprint,
)
from repro.core.estimator import NutritionEstimator
from repro.pipeline.spec import EstimatorSpec

#: Prefix of every segment this module creates; the lifecycle tests
#: scan ``/dev/shm`` for it to prove nothing leaks.
SEGMENT_PREFIX = "repro-art-"

#: Where POSIX shared memory appears as files on Linux.  The stale
#: sweep is skipped entirely on hosts without it.
_SHM_DIR = "/dev/shm"


def sweep_stale_segments() -> list[str]:
    """Unlink ``repro-art-*`` segments whose creator process is dead.

    A coordinator that dies *uncleanly* — ``kill -9``, OOM, or the
    fault harness's ``os._exit(70)`` — never reaches ``unlink()``, and
    its orphaned pool workers keep the inherited resource tracker
    alive indefinitely, so the tracker's leaked-resource cleanup never
    runs either.  Segment names embed the creator pid
    (``repro-art-<pid>-<hex>``), so the next pool start can reclaim
    exactly the segments whose creator no longer exists.  Segments
    with a live creator — other pools on the same host — are never
    touched; pid-reuse can only make the sweep skip a stale segment,
    never remove a live one.  Returns the names it removed.
    """
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return []
    removed: list[str] = []
    for name in names:
        if not name.startswith(SEGMENT_PREFIX):
            continue
        pid_text = name[len(SEGMENT_PREFIX):].split("-", 1)[0]
        if not pid_text.isdigit():
            continue
        try:
            os.kill(int(pid_text), 0)
        except ProcessLookupError:
            try:
                os.unlink(os.path.join(_SHM_DIR, name))
                removed.append(name)
            except OSError:
                pass
        except OSError:
            # Alive but owned by another user (EPERM) or pid 0-ish
            # weirdness: leave it alone.
            continue
    return removed


class SharedArtifactSegment:
    """A named shared-memory segment holding one artifact image.

    Owned by the pool coordinator.  ``unlink()`` is idempotent and
    tolerates a segment that something else already removed, so it is
    safe to call from ``close()``, ``finally`` blocks and finalizers
    alike.
    """

    __slots__ = ("_shm", "size", "_closed")

    def __init__(self, shm: shared_memory.SharedMemory, size: int):
        self._shm = shm
        self.size = size
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(cls, blob: bytes) -> "SharedArtifactSegment":
        """Publish *blob* under a fresh ``repro-art-*`` name.

        Also sweeps segments abandoned by dead coordinators first, so
        crash→restart cycles keep ``/dev/shm`` bounded.
        """
        sweep_stale_segments()
        while True:
            name = f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=len(blob)
                )
                break
            except FileExistsError:
                continue
        shm.buf[: len(blob)] = blob
        return cls(shm, len(blob))

    def unlink(self) -> None:
        """Close the mapping and remove the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except OSError:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class SpecBootstrap:
    """Classic bootstrap: each worker runs ``spec.build()`` itself.

    Used when shared memory is unavailable (non-fork start method) or
    the estimator cannot be captured into an artifact payload.
    """

    __slots__ = ("spec",)

    def __init__(self, spec: EstimatorSpec):
        self.spec = spec

    def build(self, worker_id: int) -> NutritionEstimator:
        return self.spec.build()


class SharedArtifactBootstrap:
    """Worker-side recipe: attach, validate, build.

    Carries only scalars and the spec's construction knobs — the heavy
    state travels through the segment.  The attach copies the image
    out of the mapping and closes it immediately, so a worker never
    holds the segment open past its own boot.
    """

    __slots__ = (
        "name",
        "size",
        "expected_fingerprint",
        "matcher_config",
        "max_grams",
        "cache_cap",
    )

    def __init__(
        self,
        name: str,
        size: int,
        expected_fingerprint: str | None,
        matcher_config,
        max_grams: float,
        cache_cap: int,
    ):
        self.name = name
        self.size = size
        self.expected_fingerprint = expected_fingerprint
        self.matcher_config = matcher_config
        self.max_grams = max_grams
        self.cache_cap = cache_cap

    def build(self, worker_id: int) -> NutritionEstimator:
        plan = faults.active_plan()
        if plan is not None:
            plan.fire("shm-attach", worker_id)
        shm = shared_memory.SharedMemory(name=self.name)
        try:
            blob = bytes(shm.buf[: self.size])
        finally:
            shm.close()

        source = f"shm:{self.name}"
        payload = parse_artifact_blob(blob, source=source)
        _validate_schema(source, payload)
        snapshot = ArtifactSnapshot(source, payload)
        expected = self.expected_fingerprint
        if expected is not None and expected != snapshot.fingerprint:
            raise ArtifactMismatchError(
                f"{source}: segment holds an artifact built against a "
                f"different database (fingerprint "
                f"{snapshot.fingerprint[:12]}…, worker expects "
                f"{expected[:12]}…)"
            )
        return snapshot.build_estimator(
            matcher_config=self.matcher_config,
            max_grams=self.max_grams,
            cache_cap=self.cache_cap,
        )


def _start_method(ctx) -> str:
    """The start method a multiprocessing context will use."""
    name = getattr(ctx, "_name", None)
    if name:
        return name
    get = getattr(ctx, "get_start_method", None)
    if get is not None:
        return get()
    return mp.get_start_method()


def make_bootstrap(
    spec: EstimatorSpec,
    estimator_supplier: Callable[[], NutritionEstimator] | None = None,
    ctx=None,
) -> tuple[object, SharedArtifactSegment | None]:
    """Pick the best worker bootstrap for *spec* under *ctx*.

    Returns ``(bootstrap, segment)``.  When the shared-memory path is
    viable the returned segment is live and the caller owns its
    ``unlink()``; otherwise the segment is ``None`` and the bootstrap
    is a :class:`SpecBootstrap`.

    The artifact image comes from the spec's artifact *file* when one
    is pinned (raw bytes, no re-serialization) or from capturing a
    locally built estimator (via *estimator_supplier* when the caller
    already has one to share).  Any failure to produce a valid image —
    unreadable file, uncapturable tagger — falls back to the pickled
    spec so the worker raises the same typed error the classic path
    would, through the same ``init_error`` channel.
    """
    if _start_method(ctx or mp.get_context()) != "fork":
        return SpecBootstrap(spec), None

    try:
        if spec.artifact_path is not None and spec.tagger is None:
            with open(spec.artifact_path, "rb") as handle:
                blob = handle.read()
            # Validate in-process first: a corrupt file must surface
            # through the worker init_error channel (via SpecBootstrap),
            # not as a poisoned segment.
            parse_artifact_blob(blob, source=str(spec.artifact_path))
            expected = spec.expected_fingerprint
            if expected is None and spec.foods is not None:
                expected = database_fingerprint(spec.foods)
        else:
            estimator = (
                estimator_supplier() if estimator_supplier is not None
                else spec.build()
            )
            payload = capture_payload(estimator)
            blob = pack_artifact_blob(payload)
            expected = payload["database"]["fingerprint"]
    except Exception:
        # Unreadable/corrupt file, uncapturable tagger, or a build that
        # fails outright: let the workers run the classic path so the
        # original error surfaces through init_error, same as before.
        return SpecBootstrap(spec), None

    segment = SharedArtifactSegment.create(blob)
    bootstrap = SharedArtifactBootstrap(
        name=segment.name,
        size=segment.size,
        expected_fingerprint=expected,
        matcher_config=spec.matcher_config,
        max_grams=spec.max_grams,
        cache_cap=spec.cache_cap,
    )
    return bootstrap, segment
