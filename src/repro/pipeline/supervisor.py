"""A supervised process pool: crashed and hung workers are survivable.

``multiprocessing.Pool`` — the engine's previous backend — treats
worker death as an unrecoverable protocol violation: a task handed to
a worker that segfaults or is OOM-killed simply never produces a
result, and ``imap`` waits for it forever.  One lost process aborts
(in practice: hangs) an entire corpus run.

:class:`SupervisedWorkerPool` replaces it with explicit supervision:

* **Assignment tracking** — every worker has its own task queue and
  holds at most one task, so the coordinator always knows exactly
  which chunk a dead worker took down with it.
* **Liveness + deadline** — the result loop polls each busy worker's
  ``Process.is_alive()`` (crash detection) and a per-task deadline
  (hang detection).  A hung worker is killed; both cases count in
  :class:`SupervisorStats`.
* **Respawn** — replacement workers are started from the same
  bootstrap the pool began with.  Under the fork start method that
  bootstrap is a shared-memory artifact segment
  (:mod:`repro.pipeline.shm`): the coordinator publishes one
  checksummed artifact image per pool and every worker — initial or
  respawned — attaches and validates it read-only instead of
  deserializing a pickled spec, so respawns cold-start in
  milliseconds (the PR-4 store earning its keep under failure).
* **Bounded retry** — the lost task is re-dispatched to a healthy
  worker, at most ``max_retries`` times, then
  :class:`~repro.pipeline.errors.ChunkRetriesExhaustedError`.
* **Ordered results** — :meth:`run` yields results in task order
  regardless of completion order, so the engine's chunk-order
  snapshot merge (the bit-identical parity requirement) is untouched
  by retries, respawns, or scheduling.

Determinism note: retrying a chunk on a different worker cannot change
its result — every worker rebuilds the identical estimator from the
spec, and chunk outcomes depend only on chunk content (the two-phase
protocol's core property).  Supervision therefore composes with the
engine's exact-parity guarantee instead of weakening it
(``tests/test_fault_tolerance.py``).

Handlers run with a :class:`WorkerState` (the worker's estimator plus
scratch flags) and receive ``(state, payload, task_id, attempt)`` —
the attempt number is what lets :mod:`repro.faults` crash a chunk's
first attempt while its retry succeeds.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import pickle
import queue
import signal
import time
from collections import deque
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.pipeline.errors import ChunkRetriesExhaustedError
from repro.pipeline.shm import make_bootstrap
from repro.pipeline.spec import EstimatorSpec

#: Seconds the result loop blocks on the result queue before running a
#: supervision sweep (liveness + deadlines).
POLL_INTERVAL_S = 0.02

#: Seconds to wait for a worker to exit voluntarily at close.
CLOSE_GRACE_S = 1.0


@dataclass
class SupervisorStats:
    """What supervision had to do during a pool's lifetime."""

    retries: int = 0
    respawns: int = 0
    crashes: int = 0
    hung: int = 0

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "respawns": self.respawns,
            "worker_crashes": self.crashes,
            "hung_workers": self.hung,
        }


class WorkerState:
    """Per-process state handed to task handlers."""

    __slots__ = ("estimator", "stats_token")

    def __init__(self, estimator) -> None:
        self.estimator = estimator
        # Serial of the merged phase-2 unit-statistics snapshot
        # currently installed on this worker's estimator (0 = none;
        # see the engine's fallback handler).  Reset on every
        # (re)spawn — a worker respawned mid-phase-3 re-installs the
        # snapshot riding on its next task — and compared against the
        # task's token so a *persistent* pool reused across runs can
        # never serve a stale merged table.
        self.stats_token = 0


def _picklable_exc(exc: BaseException) -> BaseException:
    """*exc* if it survives pickling, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_main(worker_id, bootstrap, handlers, task_q, result_q) -> None:
    """One worker process: build the estimator once, serve tasks."""
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group.  The coordinator's handler owns the shutdown (flush the
    # run journal and dead-letter report, then exit resumable); workers
    # must not die out from under it mid-chunk, so they ignore the
    # signal and let the coordinator wind them down through close().
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        estimator = bootstrap.build(worker_id)
    except BaseException as exc:  # noqa: BLE001 — shipped to coordinator
        result_q.put(("init_error", worker_id, _picklable_exc(exc)))
        return
    # On fork start, workers inherit the coordinator heap copy-on-
    # write; freezing keeps the worker's GC cycles from touching (and
    # copying) inherited pages.
    gc.freeze()
    state = WorkerState(estimator)
    while True:
        message = task_q.get()
        if message is None:
            return
        epoch, task_id, attempt, kind, payload = message
        try:
            result = handlers[kind](state, payload, task_id, attempt)
        except Exception as exc:  # noqa: BLE001 — shipped to coordinator
            result_q.put(
                ("error", worker_id, epoch, task_id, _picklable_exc(exc))
            )
        else:
            result_q.put(("ok", worker_id, epoch, task_id, result))


@dataclass
class _Worker:
    process: mp.Process
    task_q: "mp.Queue"
    busy: tuple[int, int, float | None] | None = None  # (epoch, task, deadline)


@dataclass
class _Run:
    """Bookkeeping for one :meth:`SupervisedWorkerPool.run` call."""

    epoch: int
    kind: str
    payloads: Sequence
    backlog: deque = field(default_factory=deque)
    attempts: dict[int, int] = field(default_factory=dict)
    results: dict[int, object] = field(default_factory=dict)
    done: set[int] = field(default_factory=set)
    next_yield: int = 0


class SupervisedWorkerPool:
    """``workers`` supervised processes executing chunk tasks.

    Parameters
    ----------
    spec:
        Estimator recipe each worker (and each respawned replacement)
        builds once at start-up.  Under the fork start method the
        spec is captured once into a shared-memory artifact segment
        (:mod:`repro.pipeline.shm`) that workers attach and validate,
        rather than each deserializing the pickled spec.
    handlers:
        ``kind -> handler(state, payload, task_id, attempt)`` —
        module-level functions (they must cross the process boundary).
    workers:
        Process count (>= 1).
    deadline_s:
        Per-task wall-clock budget; a worker that exceeds it is
        presumed hung, killed and replaced.  ``None`` disables hang
        detection (crash detection stays on).
    max_retries:
        Re-dispatches allowed per task after its first attempt.
    estimator_supplier:
        Optional zero-arg callable returning an already-built
        estimator equivalent to ``spec.build()``.  When the caller
        (e.g. the engine or service) holds a live estimator, the
        shared-memory bootstrap captures its payload directly instead
        of building a second one.
    """

    def __init__(
        self,
        spec: EstimatorSpec,
        handlers: dict[str, Callable],
        workers: int,
        *,
        deadline_s: float | None = None,
        max_retries: int = 2,
        ctx: mp.context.BaseContext | None = None,
        estimator_supplier: Callable | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {max_retries}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive: {deadline_s}")
        self._spec = spec
        self._handlers = handlers
        self._n_workers = workers
        self._deadline_s = deadline_s
        self._max_retries = max_retries
        self._ctx = ctx or mp.get_context()
        self._bootstrap, self._segment = make_bootstrap(
            spec, estimator_supplier, self._ctx
        )
        self._result_q: mp.Queue = self._ctx.Queue()
        self._workers: dict[int, _Worker] = {}
        self._next_wid = 0
        self._epoch = 0
        self._closed = False
        self.stats = SupervisorStats()
        for _ in range(workers):
            self._spawn()

    # ------------------------------------------------------------------
    # lifecycle

    def _spawn(self) -> int:
        wid = self._next_wid
        self._next_wid += 1
        task_q: mp.Queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                wid, self._bootstrap, self._handlers, task_q, self._result_q
            ),
            name=f"repro-pool-{wid}",
            daemon=True,
        )
        process.start()
        self._workers[wid] = _Worker(process=process, task_q=task_q)
        return wid

    def _discard(self, wid: int, *, kill: bool) -> None:
        worker = self._workers.pop(wid)
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=CLOSE_GRACE_S)
        # The queue feeder thread must not block interpreter exit on
        # unflushed buffers for a process that will never read them.
        worker.task_q.cancel_join_thread()
        worker.task_q.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            if worker.process.is_alive() and worker.busy is None:
                try:
                    worker.task_q.put_nowait(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for wid in list(self._workers):
            self._discard(wid, kill=True)
        self._result_q.cancel_join_thread()
        self._result_q.close()
        # Workers are gone; the coordinator removes the shared artifact
        # segment exactly once.  Idempotent, so a close() after a
        # crashed run (or a second close()) is still a no-op.
        if self._segment is not None:
            self._segment.unlink()

    def __enter__(self) -> "SupervisedWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution

    def run(self, kind: str, payloads: Sequence) -> Iterator:
        """Execute *payloads* under *kind*'s handler; yield results in
        task order (task id == payload index)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if not payloads:
            return
        self._epoch += 1
        run = _Run(epoch=self._epoch, kind=kind, payloads=payloads)
        run.backlog.extend(range(len(payloads)))
        run.attempts = dict.fromkeys(run.backlog, 0)
        n = len(payloads)
        while run.next_yield < n:
            self._dispatch_backlog(run)
            self._pump_one_message(run)
            self._sweep(run)
            while run.next_yield in run.results:
                yield run.results.pop(run.next_yield)
                run.next_yield += 1

    # ------------------------------------------------------------------
    # internals

    def _idle_workers(self) -> list[int]:
        return [
            wid for wid, w in self._workers.items() if w.busy is None
        ]

    def _dispatch_backlog(self, run: _Run) -> None:
        idle = self._idle_workers()
        while run.backlog and idle:
            task_id = run.backlog.popleft()
            wid = idle.pop()
            worker = self._workers[wid]
            deadline_at = (
                time.monotonic() + self._deadline_s
                if self._deadline_s is not None
                else None
            )
            worker.busy = (run.epoch, task_id, deadline_at)
            worker.task_q.put(
                (
                    run.epoch,
                    task_id,
                    run.attempts[task_id],
                    run.kind,
                    run.payloads[task_id],
                )
            )

    def _pump_one_message(self, run: _Run) -> None:
        try:
            message = self._result_q.get(timeout=POLL_INTERVAL_S)
        except queue.Empty:
            return
        tag = message[0]
        if tag == "init_error":
            # A worker (initial or respawned) cannot build its
            # estimator — e.g. a typed ArtifactMismatchError from a
            # swapped artifact file.  Systematic, so fatal: re-raise
            # the original typed exception.
            raise message[2]
        _, wid, epoch, task_id, payload = message
        worker = self._workers.get(wid)
        if worker is not None and worker.busy is not None:
            busy_epoch, busy_task, _ = worker.busy
            if (busy_epoch, busy_task) == (epoch, task_id):
                worker.busy = None
        if epoch != run.epoch or task_id in run.done:
            # Stale: a previous run's straggler, or a late result for
            # a task that already completed via retry.  The worker is
            # healthy again either way; the payload is discardable
            # (retried results are bit-identical by construction).
            return
        if tag == "error":
            # A task-level exception (not a crash) is deterministic —
            # the same input would fail on every worker — so it
            # aborts the run with the original exception, matching
            # the pre-supervision engine contract.
            raise payload
        run.done.add(task_id)
        run.results[task_id] = payload

    def _sweep(self, run: _Run) -> None:
        """Liveness + deadline pass over every worker."""
        now = time.monotonic()
        for wid in list(self._workers):
            worker = self._workers[wid]
            alive = worker.process.is_alive()
            if worker.busy is None:
                if not alive:
                    # Died between tasks; replace to keep capacity.
                    self._discard(wid, kill=False)
                    self.stats.crashes += 1
                    self.stats.respawns += 1
                    self._spawn()
                continue
            epoch, task_id, deadline_at = worker.busy
            if not alive:
                exitcode = worker.process.exitcode
                self._discard(wid, kill=False)
                self.stats.crashes += 1
                self.stats.respawns += 1
                self._spawn()
                self._retry(
                    run, epoch, task_id,
                    cause=f"worker crashed (exit code {exitcode})",
                )
            elif deadline_at is not None and now > deadline_at:
                self._discard(wid, kill=True)
                self.stats.hung += 1
                self.stats.respawns += 1
                self._spawn()
                self._retry(
                    run, epoch, task_id,
                    cause=(
                        f"chunk deadline of {self._deadline_s:.1f}s "
                        f"exceeded (worker killed)"
                    ),
                )

    def _retry(self, run: _Run, epoch: int, task_id: int, cause: str) -> None:
        if epoch != run.epoch or task_id in run.done:
            return
        run.attempts[task_id] += 1
        if run.attempts[task_id] > self._max_retries:
            raise ChunkRetriesExhaustedError(
                f"{run.kind} chunk {task_id} failed on "
                f"{run.attempts[task_id]} attempt(s), retry budget "
                f"({self._max_retries}) exhausted; last failure: {cause}",
                chunk_id=task_id,
                attempts=run.attempts[task_id],
            )
        self.stats.retries += 1
        # Retry at the front: the lost chunk is the oldest outstanding
        # work and downstream ordered consumption is waiting on it.
        run.backlog.appendleft(task_id)
