"""Picklable estimator configuration for worker processes.

A process pool cannot ship a live :class:`NutritionEstimator` — it
holds an inverted index, memo caches and (for learned taggers) weight
matrices that are expensive to serialize and pointless to copy per
task.  Instead the coordinator ships one small :class:`EstimatorSpec`
per worker at pool start-up; each worker rebuilds its estimator once
and reuses it for every chunk it is handed.

With :attr:`EstimatorSpec.artifact_path` set, "rebuild" means *load*:
each worker reconstructs its estimator from the build-once artifact
snapshot (:mod:`repro.artifacts`) instead of re-running description
preprocessing — the same spec therefore parameterizes instant cold
starts for the sharded engine and the HTTP service alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimator import NutritionEstimator, Tagger
from repro.matching.matcher import MatcherConfig
from repro.units.fallback import DEFAULT_MAX_GRAMS, UnitFallback
from repro.usda.database import NutrientDatabase, load_default_database
from repro.usda.schema import FoodItem
from repro.utils import DEFAULT_CACHE_CAP


@dataclass(frozen=True)
class EstimatorSpec:
    """Everything needed to rebuild an equivalent estimator.

    Attributes
    ----------
    foods:
        Food records for a custom database in insertion (SR-index)
        order, or ``None`` for the embedded default database (which
        each process loads once — the cheap, common case).
    matcher_config:
        Heuristic switches for the description matcher.
    tagger:
        A picklable NER tagger (rule-based tagger or a trained
        perceptron/CRF), or ``None`` for the default rule tagger.
    max_grams:
        The §II-C plausibility threshold for the unit fallback.
    cache_cap:
        Size cap for the per-instance memo caches.
    artifact_path:
        Path to a build-once artifact file (``repro build-artifact``).
        When set, :meth:`build` loads the snapshot instead of running
        the build path, and :meth:`database` returns the captured
        database.  ``foods`` may stay ``None`` (the artifact supplies
        the database) or name the database the artifact is *expected*
        to contain — a fingerprint mismatch raises
        :class:`~repro.artifacts.errors.ArtifactMismatchError` rather
        than silently serving numbers from the wrong database.  A
        ``tagger`` given alongside an artifact explicitly overrides
        the captured one.
    expected_fingerprint:
        Database fingerprint the artifact must carry (see
        :func:`repro.artifacts.database_fingerprint`), enforced on
        every load.  The cheap pinning channel: a coordinator that
        already validated the artifact ships this one string to its
        pool workers instead of the whole food list, and a worker
        that reads a swapped file fails with
        :class:`~repro.artifacts.errors.ArtifactMismatchError`.
    """

    foods: tuple[FoodItem, ...] | None = None
    matcher_config: MatcherConfig | None = None
    tagger: Tagger | None = None
    max_grams: float = DEFAULT_MAX_GRAMS
    cache_cap: int = DEFAULT_CACHE_CAP
    artifact_path: str | None = None
    expected_fingerprint: str | None = None

    @classmethod
    def for_database(
        cls, database: NutrientDatabase, **kwargs
    ) -> "EstimatorSpec":
        """Spec for a custom database (snapshots its insertion order)."""
        return cls(foods=tuple(database), **kwargs)

    def _snapshot(self):
        """The validated artifact snapshot this spec points at."""
        from repro.artifacts import load_artifact
        from repro.artifacts.errors import ArtifactMismatchError
        from repro.artifacts.store import database_fingerprint

        snapshot = load_artifact(self.artifact_path)
        expected = self.expected_fingerprint
        if expected is None and self.foods is not None:
            expected = database_fingerprint(self.foods)
        if expected is not None and expected != snapshot.fingerprint:
            raise ArtifactMismatchError(
                f"{self.artifact_path}: artifact was built against a "
                f"different database (fingerprint "
                f"{snapshot.fingerprint[:12]}…, spec expects "
                f"{expected[:12]}…); rebuild the artifact for this "
                f"database"
            )
        return snapshot

    def database(self) -> NutrientDatabase:
        """The database this spec describes (built fresh if custom)."""
        if self.artifact_path is not None:
            return self._snapshot().database()
        if self.foods is None:
            return load_default_database()
        return NutrientDatabase(self.foods)

    def build(self) -> NutritionEstimator:
        """Construct the estimator this spec describes.

        Loads from the artifact when :attr:`artifact_path` is set —
        bit-identical to the built-from-scratch estimator — and runs
        the full build path otherwise.
        """
        if self.artifact_path is not None:
            return self._snapshot().build_estimator(
                matcher_config=self.matcher_config,
                tagger=self.tagger,
                max_grams=self.max_grams,
                cache_cap=self.cache_cap,
            )
        return NutritionEstimator(
            database=self.database(),
            tagger=self.tagger,
            matcher_config=self.matcher_config,
            fallback=UnitFallback(self.max_grams),
            cache_cap=self.cache_cap,
        )
