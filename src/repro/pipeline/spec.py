"""Picklable estimator configuration for worker processes.

A process pool cannot ship a live :class:`NutritionEstimator` — it
holds an inverted index, memo caches and (for learned taggers) weight
matrices that are expensive to serialize and pointless to copy per
task.  Instead the coordinator ships one small :class:`EstimatorSpec`
per worker at pool start-up; each worker rebuilds its estimator once
and reuses it for every chunk it is handed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimator import NutritionEstimator, Tagger
from repro.matching.matcher import MatcherConfig
from repro.units.fallback import DEFAULT_MAX_GRAMS, UnitFallback
from repro.usda.database import NutrientDatabase, load_default_database
from repro.usda.schema import FoodItem
from repro.utils import DEFAULT_CACHE_CAP


@dataclass(frozen=True)
class EstimatorSpec:
    """Everything needed to rebuild an equivalent estimator.

    Attributes
    ----------
    foods:
        Food records for a custom database in insertion (SR-index)
        order, or ``None`` for the embedded default database (which
        each process loads once — the cheap, common case).
    matcher_config:
        Heuristic switches for the description matcher.
    tagger:
        A picklable NER tagger (rule-based tagger or a trained
        perceptron/CRF), or ``None`` for the default rule tagger.
    max_grams:
        The §II-C plausibility threshold for the unit fallback.
    cache_cap:
        Size cap for the per-instance memo caches.
    """

    foods: tuple[FoodItem, ...] | None = None
    matcher_config: MatcherConfig | None = None
    tagger: Tagger | None = None
    max_grams: float = DEFAULT_MAX_GRAMS
    cache_cap: int = DEFAULT_CACHE_CAP

    @classmethod
    def for_database(
        cls, database: NutrientDatabase, **kwargs
    ) -> "EstimatorSpec":
        """Spec for a custom database (snapshots its insertion order)."""
        return cls(foods=tuple(database), **kwargs)

    def database(self) -> NutrientDatabase:
        """The database this spec describes (built fresh if custom)."""
        if self.foods is None:
            return load_default_database()
        return NutrientDatabase(self.foods)

    def build(self) -> NutritionEstimator:
        """Construct the estimator this spec describes."""
        return NutritionEstimator(
            database=self.database(),
            tagger=self.tagger,
            matcher_config=self.matcher_config,
            fallback=UnitFallback(self.max_grams),
            cache_cap=self.cache_cap,
        )
