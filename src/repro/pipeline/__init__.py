"""Sharded multiprocess corpus estimation (the production-scale path).

The paper applies its pipeline corpus-wide — every RecipeDB recipe
through NER -> Jaccard matching -> unit resolution — and related work
runs the same estimation over 70k+ recipe datasets.  This subpackage
distributes :meth:`NutritionEstimator.estimate_corpus`'s two-phase
protocol across a process pool with an exact-parity guarantee: the
multi-worker result is bit-identical to the single-process path.

* :mod:`repro.pipeline.spec` — :class:`EstimatorSpec`, the picklable
  recipe for rebuilding an estimator once per worker,
* :mod:`repro.pipeline.wire` — the compact wire codec for shipping
  per-line estimates between workers and the coordinator,
* :mod:`repro.pipeline.supervisor` — :class:`SupervisedWorkerPool`,
  the fault-tolerant pool: crash/hang detection, spec-based respawn,
  bounded chunk retry, ordered results,
* :mod:`repro.pipeline.engine` — :class:`ShardedCorpusEstimator`, the
  coordinator: chunked sharding over the supervised pool, mergeable
  unit-statistics snapshots, bounded-memory streaming ingestion,
  optional dead-letter quarantine with a per-run :class:`RunReport`.
"""

from repro.pipeline.engine import RunReport, ShardedCorpusEstimator
from repro.pipeline.errors import (
    ChunkRetriesExhaustedError,
    PipelineError,
    WorkerPoolError,
)
from repro.pipeline.spec import EstimatorSpec
from repro.pipeline.supervisor import SupervisedWorkerPool, SupervisorStats

__all__ = [
    "ChunkRetriesExhaustedError",
    "EstimatorSpec",
    "PipelineError",
    "RunReport",
    "ShardedCorpusEstimator",
    "SupervisedWorkerPool",
    "SupervisorStats",
    "WorkerPoolError",
]
