"""The sharded corpus estimation coordinator.

Distributes the two-phase corpus protocol of
:meth:`NutritionEstimator.estimate_corpus` across a process pool:

1. **Collect (sharded)** — the coordinator streams the corpus once to
   count distinct ingredient lines (first-occurrence order), then
   fans chunks of ``(text, count)`` out to workers with imap load
   balancing.  Each worker estimates its chunk without the corpus
   fallback and returns compact wire estimates plus a mergeable
   unit-observation snapshot.
2. **Merge** — snapshots merge in chunk order
   (:meth:`UnitFallback.merge`), reproducing the exact table — counts
   *and* ``most_common`` tie-break order — a single process builds.
3. **Re-estimate (sharded)** — only lines that matched a description
   but failed unit resolution go back to the pool, which re-estimates
   them against the frozen merged table.
4. **Assemble** — the coordinator streams the corpus a second time
   and aggregates per-recipe results with the same float-operation
   order as the single-process path.

Every per-line outcome depends only on the line text and the merged
table — never on processing order — so the result is **bit-identical**
to ``NutritionEstimator.estimate_corpus`` regardless of worker count,
chunk size or scheduling (``tests/test_pipeline_parallel.py``).

Memory is bounded by the distinct-line working set plus
``max_pending`` in-flight chunks, not by corpus length: recipes are
streamed (see :func:`repro.recipedb.corpus.iter_recipes_jsonl`), and a
semaphore gates the imap feeder so a fast producer cannot buffer the
whole corpus into the task queue.
"""

from __future__ import annotations

import dataclasses
import gc
import multiprocessing as mp
import os
import threading
from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Sequence
from itertools import islice
from pathlib import Path

from repro.core.coverage import ReasonBreakdown, reason_breakdown_from_lines
from repro.core.estimator import (
    STATUS_NAME_ONLY,
    IngredientEstimate,
    NutritionEstimator,
    RecipeEstimate,
)
from repro.pipeline.spec import EstimatorSpec
from repro.pipeline.wire import dumps_estimates, loads_estimates
from repro.recipedb.corpus import iter_recipes_jsonl
from repro.recipedb.model import Recipe
from repro.units.fallback import UnitFallback

#: A corpus source the engine can traverse twice: an in-memory
#: sequence, or a path to a JSONL file (re-streamed per pass).
CorpusSource = Sequence[Recipe] | str | Path

# ----------------------------------------------------------------------
# worker side: one estimator per process, rebuilt from the spec once

_WORKER_ESTIMATOR: NutritionEstimator | None = None
_WORKER_INIT_ERROR: BaseException | None = None
_WORKER_STATS_INSTALLED = False


def _init_worker(spec: EstimatorSpec) -> None:
    global _WORKER_ESTIMATOR, _WORKER_INIT_ERROR, _WORKER_STATS_INSTALLED
    # A raising Pool initializer kills the worker and the pool spawns
    # a replacement, which fails the same way — an endless respawn
    # loop instead of an error.  Stash the failure (e.g. a typed
    # ArtifactMismatchError from a swapped artifact file) and let the
    # first task re-raise it through imap to the coordinator.
    try:
        _WORKER_ESTIMATOR = spec.build()
    except BaseException as exc:  # noqa: BLE001 — re-raised per task
        _WORKER_ESTIMATOR = None
        _WORKER_INIT_ERROR = exc
        return
    _WORKER_INIT_ERROR = None
    _WORKER_STATS_INSTALLED = False
    # On fork start, workers inherit the coordinator heap (recipe
    # lists, caches) copy-on-write.  Freezing moves those objects out
    # of the cyclic GC's reach so collection cycles in the worker do
    # not touch — and therefore copy — inherited pages.
    gc.freeze()


def _require_estimator() -> NutritionEstimator:
    if _WORKER_ESTIMATOR is None:
        raise _WORKER_INIT_ERROR or RuntimeError(
            "pool worker has no estimator (initializer did not run)"
        )
    return _WORKER_ESTIMATOR


def _collect_chunk(chunk: list[tuple[str, int]]):
    """Phase-1 task: wire estimates + observation snapshot for a chunk."""
    _require_estimator()
    estimates, snapshot = _WORKER_ESTIMATOR.corpus_collect_estimates(chunk)
    wire = dumps_estimates(
        [estimates[text] for text, _ in chunk], _WORKER_ESTIMATOR.database
    )
    return wire, snapshot


def _fallback_chunk(task):
    """Phase-3 task: re-estimate texts against the merged statistics.

    The merged snapshot rides along with each task; a worker installs
    it once (the engine uses one pool per run, so the snapshot cannot
    change under a live worker).
    """
    global _WORKER_STATS_INSTALLED
    _require_estimator()
    snapshot, texts = task
    if not _WORKER_STATS_INSTALLED:
        fallback = _WORKER_ESTIMATOR.fallback
        fallback.clear()
        fallback.merge(snapshot)
        _WORKER_STATS_INSTALLED = True
    estimates = _WORKER_ESTIMATOR.corpus_fallback_estimates(texts)
    return dumps_estimates(
        [estimates[text] for text in texts], _WORKER_ESTIMATOR.database
    )


# ----------------------------------------------------------------------
# coordinator

def _chunked(items: Iterable, size: int) -> Iterator[list]:
    iterator = iter(items)
    while chunk := list(islice(iterator, size)):
        yield chunk


class ShardedCorpusEstimator:
    """Corpus estimation across a process pool with exact parity.

    Parameters
    ----------
    spec:
        The estimator configuration every worker rebuilds (default:
        the default pipeline — embedded database, rule tagger).
    workers:
        Process count; ``None`` means ``os.cpu_count()``.  ``1`` runs
        the identical protocol in-process with no pool (useful as the
        parity reference and for streaming over huge corpora without
        IPC).
    chunk_size:
        Distinct ingredient lines per pool task.  Bigger chunks
        amortize task/pickle overhead; smaller chunks balance load.
    max_pending:
        In-flight chunk cap for the bounded imap feeder (default
        ``4 * workers``).
    """

    def __init__(
        self,
        spec: EstimatorSpec | None = None,
        *,
        workers: int | None = None,
        chunk_size: int = 512,
        max_pending: int | None = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        self._spec = spec or EstimatorSpec()
        self._workers = workers if workers is not None else (os.cpu_count() or 1)
        self._chunk_size = chunk_size
        self._max_pending = max_pending or 4 * self._workers
        self._local: NutritionEstimator | None = None
        self._foods = None
        self._pinned_fingerprint: str | None = None
        if self._spec.artifact_path is not None:
            # Pin the artifact version now: the coordinator's food
            # list (the wire codec's index space) must come from the
            # same file state the engine was created against, not from
            # whatever the file contains when the first corpus runs.
            # Foods and fingerprint both come from ONE snapshot so a
            # swap landing mid-construction cannot split the pin
            # across two file states.
            snapshot = self._spec._snapshot()
            self._foods = list(snapshot.database())
            self._pinned_fingerprint = snapshot.fingerprint

    @property
    def spec(self) -> EstimatorSpec:
        return self._spec

    @property
    def workers(self) -> int:
        return self._workers

    def _local_estimator(self) -> NutritionEstimator:
        if self._local is None:
            self._local = self._spec.build()
        return self._local

    def _food_list(self):
        if self._foods is None:
            self._foods = list(self._spec.database())
        return self._foods

    # ------------------------------------------------------------------

    @staticmethod
    def _stream(source: CorpusSource) -> Iterator[Recipe]:
        if isinstance(source, (str, Path)):
            return iter_recipes_jsonl(source)
        if isinstance(source, Sequence):
            return iter(source)
        raise TypeError(
            "corpus source must be a Sequence[Recipe] or a JSONL path "
            f"(the engine traverses it twice), got {type(source).__name__}"
        )

    def estimate_corpus(self, source: CorpusSource) -> list[RecipeEstimate]:
        """All recipe estimates, in corpus order."""
        return list(self.iter_corpus_estimates(source))

    def iter_corpus_estimates(
        self, source: CorpusSource
    ) -> Iterator[RecipeEstimate]:
        """Stream recipe estimates in corpus order.

        Results are yielded as the second corpus traversal assembles
        them, so a consumer that writes them out keeps memory bounded
        by the distinct-line estimate table.
        """
        # Distinct-line working set in first-occurrence order (Counter
        # preserves insertion order; counting runs at C speed).
        counts = Counter(
            text
            for recipe in self._stream(source)
            for text in recipe.ingredient_texts
        )
        estimates = self.estimate_table(counts)
        finish = NutritionEstimator.finish_recipe
        for recipe in self._stream(source):
            yield finish(
                [estimates[text] for text in recipe.ingredient_texts],
                recipe.servings,
            )

    def corpus_diagnostics(self, source: CorpusSource) -> ReasonBreakdown:
        """Reason-code breakdown over a whole corpus (Figure 2 by cause).

        Runs the two-phase protocol over the corpus's distinct-line
        table (sharded at ``workers > 1`` — reason codes and traces
        ship bit-identically through the wire codec) and attributes
        every line, weighted by occurrence count, to the §II-C
        strategy that resolved or killed it.
        """
        counts = Counter(
            text
            for recipe in self._stream(source)
            for text in recipe.ingredient_texts
        )
        table = self.estimate_table(counts)
        return reason_breakdown_from_lines(
            (table[text], count) for text, count in counts.items()
        )

    # ------------------------------------------------------------------
    # execution backends

    def estimate_table(
        self, counts: dict[str, int]
    ) -> dict[str, IngredientEstimate]:
        """Run the two-phase protocol over a distinct-line table.

        ``text -> final estimate`` for every key of *counts* (values
        are occurrence counts, which weight the unit statistics).  The
        building block under :meth:`iter_corpus_estimates`, exposed
        for callers that already hold a distinct-line table — the HTTP
        service's batch endpoint assembles its own recipes from this.
        Dispatches to the in-process estimator at ``workers=1`` and to
        the pool otherwise; results are bit-identical either way.
        """
        if self._workers == 1:
            return self._run_local(counts)
        return self._run_pool(counts)

    def _run_local(self, counts: dict[str, int]) -> dict[str, IngredientEstimate]:
        return self._local_estimator().corpus_estimate_table(counts)

    def _worker_spec(self) -> EstimatorSpec:
        """The spec shipped to pool workers.

        For artifact-backed specs the coordinator pins the database
        fingerprint it loaded at construction onto the worker spec:
        workers re-read the artifact file at pool start-up, and the
        wire codec decodes foods by database *index* against the
        coordinator's list — if the file were swapped for one built
        against different data between the coordinator's load and a
        later pool spawn (e.g. a deploy refreshing the artifact under
        a running service), the indices would silently resolve to the
        wrong foods.  Pinning routes that race into
        ``EstimatorSpec``'s fingerprint check, so every worker either
        loads the identical database or fails its pool task with a
        typed ``ArtifactMismatchError`` — at the cost of one string
        in initargs, not a pickled food list.
        """
        if (
            self._pinned_fingerprint is None
            or self._spec.expected_fingerprint is not None
        ):
            return self._spec
        return dataclasses.replace(
            self._spec, expected_fingerprint=self._pinned_fingerprint
        )

    def _run_pool(self, counts: dict[str, int]) -> dict[str, IngredientEstimate]:
        foods = self._food_list()
        merged_fallback = UnitFallback(self._spec.max_grams)
        estimates: dict[str, IngredientEstimate] = {}
        context = mp.get_context()
        with context.Pool(
            self._workers,
            initializer=_init_worker,
            initargs=(self._worker_spec(),),
        ) as pool:
            # Phase 1+2: collect shards, merge snapshots in chunk order.
            chunks = list(_chunked(counts.items(), self._chunk_size))
            for chunk, (wire, snapshot) in zip(
                chunks,
                self._imap_bounded(pool, _collect_chunk, chunks),
            ):
                merged_fallback.merge(snapshot)
                for (text, _), estimate in zip(
                    chunk, loads_estimates(wire, foods)
                ):
                    estimates[text] = estimate
            # Phase 3: re-estimate fallback candidates against the
            # frozen merged table.
            pending = [
                text
                for text, estimate in estimates.items()
                if estimate.status == STATUS_NAME_ONLY
            ]
            snapshot = merged_fallback.snapshot()
            tasks = [
                (snapshot, chunk)
                for chunk in _chunked(pending, self._chunk_size)
            ]
            for (_, chunk), wire in zip(
                tasks,
                self._imap_bounded(pool, _fallback_chunk, tasks),
            ):
                for text, estimate in zip(chunk, loads_estimates(wire, foods)):
                    estimates[text] = estimate
        return estimates

    def _imap_bounded(
        self, pool, fn: Callable, tasks: Iterable
    ) -> Iterator:
        """``pool.imap`` with at most ``max_pending`` tasks in flight.

        ``Pool.imap``'s feeder thread drains its input greedily; the
        semaphore makes it stall until results are consumed, keeping
        queued tasks (and their pickled payloads) bounded.

        The feeder must never block forever: if the consumer stops
        early (worker exception, ``KeyboardInterrupt``, abandoned
        generator), ``Pool`` shutdown joins its task-handler thread,
        which sits inside ``gated()`` — an unconditional ``acquire``
        there would deadlock the whole process.  Hence the polling
        acquire with an abort event, set in the ``finally`` below.
        """
        gate = threading.Semaphore(self._max_pending)
        abort = threading.Event()

        def gated() -> Iterator:
            for task in tasks:
                while not gate.acquire(timeout=0.05):
                    if abort.is_set():
                        return
                yield task

        try:
            for result in pool.imap(fn, gated()):
                gate.release()
                yield result
        finally:
            abort.set()
