"""The sharded corpus estimation coordinator.

Distributes the two-phase corpus protocol of
:meth:`NutritionEstimator.estimate_corpus` across a supervised
process pool:

1. **Collect (sharded)** — the coordinator streams the corpus once to
   count distinct ingredient lines (first-occurrence order), then
   fans chunks of ``(text, count)`` out to workers.  Each worker
   estimates its chunk without the corpus fallback and returns
   compact wire estimates plus a mergeable unit-observation snapshot.
2. **Merge** — snapshots merge in chunk order
   (:meth:`UnitFallback.merge`), reproducing the exact table — counts
   *and* ``most_common`` tie-break order — a single process builds.
3. **Re-estimate (sharded)** — only lines that matched a description
   but failed unit resolution go back to the pool, which re-estimates
   them against the frozen merged table.
4. **Assemble** — the coordinator streams the corpus a second time
   and aggregates per-recipe results with the same float-operation
   order as the single-process path.

Every per-line outcome depends only on the line text and the merged
table — never on processing order — so the result is **bit-identical**
to ``NutritionEstimator.estimate_corpus`` regardless of worker count,
chunk size or scheduling (``tests/test_pipeline_parallel.py``).

**Fault tolerance** (ISSUE 6): the pool is a
:class:`~repro.pipeline.supervisor.SupervisedWorkerPool` — a worker
that crashes or hangs mid-chunk is detected (liveness + chunk
deadline), respawned from the spec (instant with an artifact-backed
spec), and its chunk retried on a healthy worker with a bounded
budget; because chunk results are pure functions of chunk content,
recovery preserves the bit-identical merge.  With ``quarantine=True``
malformed corpus lines and estimator-raising ingredient lines are
diverted to dead-letter records (:mod:`repro.deadletter`) instead of
aborting the run; :attr:`ShardedCorpusEstimator.last_report` carries
the run's dead letters and supervision counters.  Both recovery paths
are deterministically testable through :mod:`repro.faults`.

**Durable runs** (ISSUE 7): with ``run_dir=`` set, the coordinator
itself stops being a single point of failure.  Each phase-1/phase-3
chunk result is appended — wire bytes, unit-observation snapshot,
dead letters — to a checksummed, fsync'd journal in the run directory
(:mod:`repro.runs`) the moment it arrives, and the merged unit tables
are checkpointed at the phase boundary.  ``resume=True`` replays the
journaled prefix in shard order and dispatches **only missing
chunks** to the pool (no pool is even spawned when nothing is
missing), which composes with the exact-parity property: a run killed
at any chunk boundary — or mid-append, leaving a torn journal tail —
resumes to bit-identical output (``tests/test_durable_resume.py``).

Memory is bounded by the distinct-line working set: recipes are
streamed (see :func:`repro.recipedb.corpus.iter_recipes_jsonl`), and
each worker holds at most one chunk at a time.

**Columnar hot path** (ISSUE 9): workers (and the ``workers=1``
in-process path) drive each chunk through the batched pipeline
(:mod:`repro.core.columnar`) — chunk-wide tokenize/tag/match stages
feeding the unmodified per-line tail — which is bit-identical to the
per-line reference by construction and pinned differentially by
``tests/test_columnar_parity.py``.  ``REPRO_COLUMNAR=0`` forces the
per-line path everywhere (the escape hatch the differential harness
and benchmarks flip).

**Duplicate collapse** (ISSUE 10): the coordinator hash-conses the
corpus's ingredient lines into the distinct-line table *before*
sharding, so wire traffic, NER, matching and unit-chain work all
scale with the distinct set — heavily Zipfian real corpora repeat "1
cup sugar" millions of times.  The collapse is exact: phase-1
observations are weighted by multiplicity
(:meth:`UnitFallback.observe` with ``count=n``), which produces the
identical counts *and* identical key insertion order — hence the same
``most_common`` tie-breaks — as n repeated observes, and phase-3
estimates are pure functions of (text, frozen table), so per-distinct
results expand to per-occurrence results losslessly on the assembly
pass.  ``REPRO_DEDUP=0`` (or ``dedup=False`` / the CLI's
``--no-dedup``) pins the per-occurrence oracle: the line table keeps
one ``(text, 1)`` entry per occurrence in corpus order, and the
differential suites byte-compare the two modes end to end
(``tests/test_dedup_parity.py``).  Estimate-side dead letters are
re-numbered by the coordinator from line-table ordinals to
per-occurrence corpus positions with the same procedure in both
modes, so a poisoned line that occurs k times dead-letters k times
with correct positions — and the persisted report is byte-identical
across modes and across resume.

**Persistent pool** (ISSUE 9): the supervised pool outlives a single
run.  The first pool run spawns it (workers boot from a shared-memory
artifact segment, :mod:`repro.pipeline.shm`); later runs on the same
engine reuse the warm workers — the HTTP service keeps one engine, so
``/v1/estimate_batch`` requests skip process spawn and estimator
rebuild entirely.  Phase-3 tasks carry a per-run ``stats_token`` so a
reused worker can never serve a previous run's merged unit table.
Call :meth:`ShardedCorpusEstimator.close` (or use the engine as a
context manager) to release the pool; a finalizer covers engines that
are simply dropped, and a failed run closes the pool rather than
reuse workers in an unknown state.
"""

from __future__ import annotations

import dataclasses
import os
import time
import weakref
from collections import Counter
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path

from repro import __version__, faults
from repro.core.coverage import ReasonBreakdown, reason_breakdown_from_lines
from repro.core.estimator import (
    STATUS_NAME_ONLY,
    IngredientEstimate,
    NutritionEstimator,
    RecipeEstimate,
)
from repro.deadletter import MAX_INPUT_CHARS, DeadLetterLog
from repro.pipeline.spec import EstimatorSpec
from repro.pipeline.supervisor import SupervisedWorkerPool, WorkerState
from repro.pipeline.wire import dumps_estimates, loads_estimates
from repro.recipedb.corpus import iter_recipes_jsonl
from repro.recipedb.model import Recipe
from repro.runs import DurableRun, RunError, RunJournalError, RunManifest
from repro.runs.manifest import corpus_identity, new_run_id
from repro.units.fallback import UnitFallback, snapshot_digest

#: A corpus source the engine can traverse twice: an in-memory
#: sequence, or a path to a JSONL file (re-streamed per pass).
CorpusSource = Sequence[Recipe] | str | Path

#: Default per-chunk wall-clock budget before a worker is presumed
#: hung.  Generous: a 512-line chunk estimates in well under a second
#: even with a trained tagger, so triggering this means a genuinely
#: stuck process, not a slow one.
DEFAULT_CHUNK_DEADLINE_S = 120.0

#: Default re-dispatches allowed per lost chunk.
DEFAULT_MAX_CHUNK_RETRIES = 2


def _columnar_enabled() -> bool:
    """Whether chunks run the columnar batch pipeline (default: yes).

    ``REPRO_COLUMNAR=0`` pins the per-line reference path — the
    differential harness and benchmarks use it to hold the oracle
    side still while the columnar side evolves.
    """
    return os.environ.get("REPRO_COLUMNAR", "1") != "0"


def _dedup_enabled() -> bool:
    """Whether corpus lines are collapsed to the distinct set (default:
    yes).

    ``REPRO_DEDUP=0`` pins the per-occurrence oracle — every
    ingredient-line occurrence is shipped, estimated and observed
    independently, exactly as if no interning layer existed.  The
    differential suites and the dedup benchmarks flip this to hold the
    reference side still.
    """
    return os.environ.get("REPRO_DEDUP", "1") != "0"


@dataclass
class RunReport:
    """What happened, beyond the estimates, during one corpus run."""

    workers: int = 1
    retries: int = 0
    respawns: int = 0
    worker_crashes: int = 0
    hung_workers: int = 0
    dead_letters: DeadLetterLog = field(default_factory=DeadLetterLog)
    #: Durable-run provenance (``None`` outside ``run_dir=`` runs).
    run_id: str | None = None
    run_dir: str | None = None
    resumed: bool = False
    #: Chunks whose results came straight from the journal vs chunks
    #: actually dispatched to workers.  A resume of a completed run is
    #: pure replay: ``executed_chunks == 0``.
    replayed_chunks: int = 0
    executed_chunks: int = 0
    #: Line-interning accounting (ISSUE 10).  ``total_lines`` counts
    #: ingredient-line occurrences across the corpus; ``distinct_lines``
    #: counts the entries that actually did pipeline work after
    #: duplicate collapse.  ``dedup=False`` marks the per-occurrence
    #: oracle run (``REPRO_DEDUP=0`` / ``--no-dedup``).
    dedup: bool = True
    total_lines: int = 0
    distinct_lines: int = 0
    #: Content digest of the frozen phase-boundary unit table — the
    #: statistics half of the service tier's fragment-cache token
    #: (:func:`repro.units.fallback.snapshot_digest`).
    stats_digest: str | None = None

    @property
    def dedup_ratio(self) -> float:
        """Occurrences per distinct line (1.0 when nothing repeats)."""
        if not self.distinct_lines:
            return 1.0
        return self.total_lines / self.distinct_lines

    def dedup_counters(self) -> dict:
        """Duplicate-collapse accounting (CLI summary + /metrics)."""
        return {
            "dedup": self.dedup,
            "total_lines": self.total_lines,
            "distinct_lines": self.distinct_lines,
            "dedup_ratio": round(self.dedup_ratio, 3),
        }

    def counters(self) -> dict:
        """Flat counter view (the service merges this into /metrics)."""
        return {
            "retries": self.retries,
            "respawns": self.respawns,
            "worker_crashes": self.worker_crashes,
            "hung_workers": self.hung_workers,
            "dead_lettered": len(self.dead_letters),
        }

    def journal_counters(self) -> dict:
        """Replay accounting for durable runs (journal + CLI summary)."""
        return {
            "replayed_chunks": self.replayed_chunks,
            "executed_chunks": self.executed_chunks,
            "resumed": self.resumed,
        }


# ----------------------------------------------------------------------
# worker-side task handlers (module-level: they cross the process
# boundary by reference; each runs with the worker's WorkerState)

def _collect_task(state: WorkerState, payload, task_id: int, attempt: int):
    """Phase-1 task: wire estimates + observation snapshot for a chunk.

    ``payload`` is ``(base_ordinal, chunk, quarantine_on, columnar)``.
    Returns ``(wire, snapshot, dead_letter_records)``.
    """
    base_ordinal, chunk, quarantine_on, columnar = payload
    plan = faults.active_plan()
    if plan is not None:
        plan.fire("collect-chunk", task_id, attempt)
    log = DeadLetterLog() if quarantine_on else None
    estimates, snapshot = state.estimator.corpus_collect_estimates(
        chunk, quarantine=log, ordinal_base=base_ordinal, columnar=columnar
    )
    wire = dumps_estimates(
        [estimates[text] for text, _ in chunk], state.estimator.database
    )
    return wire, snapshot, (log.records if log is not None else ())


def _fallback_task(state: WorkerState, payload, task_id: int, attempt: int):
    """Phase-3 task: re-estimate texts against the merged statistics.

    ``payload`` is ``(stats_token, snapshot, items, quarantine_on,
    columnar)`` with ``items`` a list of ``(ordinal, text)``.  The
    merged snapshot rides along with each task and a worker installs
    it once per *token* — a fresh serial per engine run — which makes
    two failure shapes correct at once: a worker respawned
    mid-phase-3 (``stats_token`` reset to 0) installs the snapshot
    from its next task, and a **persistent pool reused across runs**
    sees a new token and can never serve the previous run's table.
    Returns ``(present_indices, wire, dead_letter_records)`` where
    ``present_indices`` are the positions in *items* that produced an
    estimate (a line quarantined here keeps its phase-1 estimate).
    """
    stats_token, snapshot, items, quarantine_on, columnar = payload
    plan = faults.active_plan()
    if plan is not None:
        plan.fire("fallback-chunk", task_id, attempt)
    if state.stats_token != stats_token:
        fallback = state.estimator.fallback
        fallback.clear()
        fallback.merge(snapshot)
        state.stats_token = stats_token
    log = DeadLetterLog() if quarantine_on else None
    texts = [text for _, text in items]
    estimates = state.estimator.corpus_fallback_estimates(
        texts,
        quarantine=log,
        ordinals={text: ordinal for ordinal, text in items},
        columnar=columnar,
    )
    present = [i for i, text in enumerate(texts) if text in estimates]
    wire = dumps_estimates(
        [estimates[texts[i]] for i in present], state.estimator.database
    )
    return present, wire, (log.records if log is not None else ())


_HANDLERS = {
    "collect-chunk": _collect_task,
    "fallback-chunk": _fallback_task,
}


# ----------------------------------------------------------------------
# coordinator

def _chunked(items, size: int) -> Iterator[list]:
    iterator = iter(items)
    while chunk := list(islice(iterator, size)):
        yield chunk


class ShardedCorpusEstimator:
    """Corpus estimation across a supervised process pool with exact
    parity.

    Parameters
    ----------
    spec:
        The estimator configuration every worker rebuilds (default:
        the default pipeline — embedded database, rule tagger).
    workers:
        Process count; ``None`` means ``os.cpu_count()``.  ``1`` runs
        the identical protocol in-process with no pool (useful as the
        parity reference and for streaming over huge corpora without
        IPC).
    chunk_size:
        Distinct ingredient lines per pool task.  Bigger chunks
        amortize task/pickle overhead; smaller chunks balance load.
    max_pending:
        Retained for API compatibility; the supervised pool holds at
        most one task per worker, so in-flight work is already
        bounded tighter than any sensible value of this.
    quarantine:
        With ``True``, malformed JSONL corpus lines and ingredient
        lines whose estimation raises are diverted to dead-letter
        records on :attr:`last_report` instead of aborting the run.
        Default ``False``: strict mode, every failure propagates
        (the seed behaviour, and what the parity suites pin).
    chunk_deadline_s:
        Per-chunk wall-clock budget before a worker is presumed hung
        and replaced (``None`` disables hang detection).
    max_chunk_retries:
        Re-dispatches allowed per chunk lost to a crashed or hung
        worker before :class:`ChunkRetriesExhaustedError`.
    run_dir:
        Directory for a **durable run** (:mod:`repro.runs`): manifest,
        chunk journal, checkpoint.  Requires a JSONL-path corpus
        source (an in-memory sequence has no durable identity to bind
        the manifest to).  One engine instance maps to one run
        directory — construct a fresh engine per durable run.
    resume:
        Resume the existing run in *run_dir*: verify its manifest
        against this engine's corpus/config (typed
        :class:`~repro.runs.errors.RunMismatchError` on drift),
        truncate any torn journal tail, replay journaled chunks and
        execute only the missing ones.
    dedup:
        Collapse corpus lines to the distinct-line table before
        sharding (the interning layer).  ``None`` — the default —
        defers to the ``REPRO_DEDUP`` environment variable (on unless
        ``0``), resolved per run; ``False`` pins the per-occurrence
        oracle for this engine regardless of environment.
    force_pool:
        Route even ``workers=1`` non-durable runs through the
        supervised pool instead of the in-process shortcut.  The
        worker-scaling benchmarks use this so every point of a worker
        series measures the same pool machinery (spawn, IPC, shm
        bootstrap) rather than comparing a pool against a loop.
    estimator_supplier:
        Zero-arg callable returning an already-built estimator
        equivalent to ``spec.build()``, used only to capture the
        shared-memory bootstrap payload at pool spawn.  The HTTP
        service passes its warm estimator so the pool bootstrap does
        not build a second one; default is the engine's own lazily
        built in-process estimator.
    """

    def __init__(
        self,
        spec: EstimatorSpec | None = None,
        *,
        workers: int | None = None,
        chunk_size: int = 512,
        max_pending: int | None = None,
        quarantine: bool = False,
        chunk_deadline_s: float | None = DEFAULT_CHUNK_DEADLINE_S,
        max_chunk_retries: int = DEFAULT_MAX_CHUNK_RETRIES,
        run_dir: str | Path | None = None,
        resume: bool = False,
        dedup: bool | None = None,
        force_pool: bool = False,
        estimator_supplier=None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
        if max_chunk_retries < 0:
            raise ValueError(
                f"max_chunk_retries must be >= 0: {max_chunk_retries}"
            )
        if resume and run_dir is None:
            raise ValueError("resume=True requires run_dir")
        self._run_dir = Path(run_dir) if run_dir is not None else None
        self._resume = resume
        self._spec = spec or EstimatorSpec()
        if workers is not None:
            self._workers = workers
        else:
            self._workers = os.cpu_count() or 1
        self._chunk_size = chunk_size
        self._quarantine = quarantine
        self._dedup = dedup
        self._chunk_deadline_s = chunk_deadline_s
        self._max_chunk_retries = max_chunk_retries
        self._force_pool = force_pool
        self._estimator_supplier = estimator_supplier
        self._local: NutritionEstimator | None = None
        self._foods = None
        self._pinned_fingerprint: str | None = None
        #: Persistent supervised pool: spawned on the first pool run,
        #: reused by later runs until :meth:`close`.
        self._pool: SupervisedWorkerPool | None = None
        self._pool_finalizer: weakref.finalize | None = None
        #: Serial for phase-3 merged-table installs (see
        #: :func:`_fallback_task`); monotonically increasing per run.
        self._stats_serial = 0
        #: Supervision counters and dead letters for the most recent
        #: corpus run (None until a run happens).  Refreshed at the
        #: start of every run; read it before starting the next one.
        self.last_report: RunReport | None = None
        if self._spec.artifact_path is not None:
            # Pin the artifact version now: the coordinator's food
            # list (the wire codec's index space) must come from the
            # same file state the engine was created against, not from
            # whatever the file contains when the first corpus runs.
            # Foods and fingerprint both come from ONE snapshot so a
            # swap landing mid-construction cannot split the pin
            # across two file states.
            snapshot = self._spec._snapshot()
            self._foods = list(snapshot.database())
            self._pinned_fingerprint = snapshot.fingerprint

    @property
    def spec(self) -> EstimatorSpec:
        return self._spec

    @property
    def workers(self) -> int:
        return self._workers

    def _local_estimator(self) -> NutritionEstimator:
        if self._local is None:
            self._local = self._spec.build()
        return self._local

    # ------------------------------------------------------------------
    # persistent pool lifecycle

    def ensure_pool(self) -> None:
        """Spawn the persistent worker pool now (idempotent).

        Lets services and benchmarks pay the spawn + shared-memory
        bootstrap cost up front instead of inside the first request or
        timed region.  Only useful for engines that actually route
        through the pool (``workers > 1`` or ``force_pool=True``).
        """
        self._ensure_pool()

    def _ensure_pool(self) -> SupervisedWorkerPool:
        if self._pool is None:
            pool = SupervisedWorkerPool(
                self._worker_spec(),
                _HANDLERS,
                self._workers,
                deadline_s=self._chunk_deadline_s,
                max_retries=self._max_chunk_retries,
                estimator_supplier=(
                    self._estimator_supplier or self._local_estimator
                ),
            )
            self._pool = pool
            # Safety net for engines dropped without close(): the
            # callback holds the pool, never the engine, so the
            # finalizer cannot keep the engine alive.
            self._pool_finalizer = weakref.finalize(self, pool.close)
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool and its shared segment.

        Idempotent; the engine remains usable (the next pool run
        simply spawns a fresh pool).
        """
        pool, self._pool = self._pool, None
        finalizer, self._pool_finalizer = self._pool_finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            pool.close()

    def __enter__(self) -> "ShardedCorpusEstimator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _food_list(self):
        if self._foods is None:
            self._foods = list(self._spec.database())
        return self._foods

    # ------------------------------------------------------------------

    def _stream(
        self, source: CorpusSource, dead_letters: DeadLetterLog | None = None
    ) -> Iterator[Recipe]:
        """One corpus traversal, quarantine-aware for JSONL sources.

        With quarantine on, malformed lines are skipped on **every**
        pass (both passes must see the identical recipe stream) but
        recorded only on the pass that supplies *dead_letters*.
        """
        if isinstance(source, (str, Path)):
            if self._quarantine:
                return iter_recipes_jsonl(
                    source, on_error="skip", dead_letters=dead_letters
                )
            return iter_recipes_jsonl(source)
        if isinstance(source, Sequence):
            return iter(source)
        raise TypeError(
            "corpus source must be a Sequence[Recipe] or a JSONL path "
            f"(the engine traverses it twice), got {type(source).__name__}"
        )

    def _dedup_on(self) -> bool:
        """Resolve the dedup mode for one run (ctor arg, else env)."""
        if self._dedup is not None:
            return self._dedup
        return _dedup_enabled()

    def _begin_run(self) -> RunReport:
        self.last_report = RunReport(
            workers=self._workers, dedup=self._dedup_on()
        )
        return self.last_report

    def _line_table(
        self, source: CorpusSource, report: RunReport
    ) -> list[tuple[str, int]]:
        """First corpus traversal → the line table the run estimates.

        Dedup mode hash-conses every ingredient line into a
        distinct-line table with multiplicities (Counter preserves
        first-occurrence order; counting runs at C speed), so all
        downstream work scales with the distinct set.  The oracle mode
        keeps one ``(text, 1)`` entry per occurrence in corpus order
        instead — identical statistics (a weighted observe equals n
        repeated observes, and first-occurrence key order is the same
        either way) at full per-occurrence cost.
        """
        stream = self._stream(source, report.dead_letters)
        if report.dedup:
            counts = Counter(
                text
                for recipe in stream
                for text in recipe.ingredient_texts
            )
            report.total_lines = sum(counts.values())
            report.distinct_lines = len(counts)
            return list(counts.items())
        lines = [
            (text, 1)
            for recipe in stream
            for text in recipe.ingredient_texts
        ]
        report.total_lines = len(lines)
        report.distinct_lines = len({text for text, _ in lines})
        return lines

    @staticmethod
    def _pull_poisoned(report: RunReport) -> dict[str, tuple[str, str]]:
        """Lift estimate-source dead letters out for re-numbering.

        Corpus paths renumber estimate-side letters from line-table
        ordinals to per-occurrence corpus positions; this removes them
        from the report (ingest letters keep their 1-based file line
        numbers) and returns ``truncated input -> (reason, detail)``
        for the assembly pass to expand.  Estimation is deterministic
        per text, so every occurrence of a poisoned line shares one
        reason/detail; running the identical procedure in both dedup
        modes makes the final report byte-identical across them.
        """
        poisoned: dict[str, tuple[str, str]] = {}
        kept = []
        for letter in report.dead_letters.records:
            if letter.source == "estimate":
                poisoned.setdefault(
                    letter.input, (letter.reason, letter.detail)
                )
            else:
                kept.append(letter)
        report.dead_letters.replace(kept)
        return poisoned

    # ------------------------------------------------------------------
    # durable runs

    def _database_fingerprint(self) -> str:
        """The fingerprint a durable run's manifest binds to."""
        if self._pinned_fingerprint is not None:
            return self._pinned_fingerprint
        from repro.artifacts.store import database_fingerprint

        return database_fingerprint(self._food_list())

    def _durable_run(
        self, source: CorpusSource, dedup: bool
    ) -> DurableRun | None:
        """Create (or reopen and verify) this engine's durable run."""
        if self._run_dir is None:
            return None
        if not isinstance(source, (str, Path)):
            raise RunError(
                "durable runs need a JSONL corpus path (an in-memory "
                "sequence has no durable identity for the manifest)"
            )
        fingerprint = self._database_fingerprint()
        if self._resume:
            run = DurableRun.open(self._run_dir)
            run.manifest.verify_corpus(source)
            run.manifest.verify_config(
                chunk_size=self._chunk_size,
                quarantine=self._quarantine,
                max_grams=self._spec.max_grams,
                database_fingerprint=fingerprint,
                dedup=dedup,
            )
            return run
        database: dict = {
            "fingerprint": fingerprint,
            "artifact_path": self._spec.artifact_path,
        }
        if self._spec.artifact_path is not None:
            from repro.artifacts.format import read_artifact_digest

            database["artifact_sha256"] = read_artifact_digest(
                self._spec.artifact_path
            )
        # The CLI names run directories after the run id it generates
        # (``ROOT/run-.../``); adopting such a name keeps directory and
        # manifest in agreement instead of minting a second id.
        dir_name = self._run_dir.name
        manifest = RunManifest(
            run_id=dir_name if dir_name.startswith("run-") else new_run_id(),
            created_at=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            repro_version=__version__,
            corpus=corpus_identity(source),
            config={
                "chunk_size": self._chunk_size,
                "quarantine": self._quarantine,
                "max_grams": self._spec.max_grams,
                "workers": self._workers,
                "dedup": dedup,
            },
            database=database,
        )
        return DurableRun.create(self._run_dir, manifest)

    @staticmethod
    def _note_run(report: RunReport, run: DurableRun | None) -> None:
        if run is not None:
            report.run_id = run.manifest.run_id
            report.run_dir = str(run.path)
            report.resumed = run.resumed

    # ------------------------------------------------------------------

    def estimate_corpus(self, source: CorpusSource) -> list[RecipeEstimate]:
        """All recipe estimates, in corpus order."""
        return list(self.iter_corpus_estimates(source))

    def iter_corpus_estimates(
        self, source: CorpusSource
    ) -> Iterator[RecipeEstimate]:
        """Stream recipe estimates in corpus order.

        Results are yielded as the second corpus traversal assembles
        them, so a consumer that writes them out keeps memory bounded
        by the distinct-line estimate table.
        """
        report = self._begin_run()
        run = self._durable_run(source, report.dedup)
        self._note_run(report, run)
        try:
            lines = self._line_table(source, report)
            estimates = self._estimate_table_into(lines, report, run)
        finally:
            if run is not None:
                run.close()
        # Fan-out: per-distinct estimates expand to per-occurrence
        # results in corpus order, and estimate-side dead letters are
        # renumbered to per-occurrence positions in the flattened
        # ingredient-line stream (same procedure in both dedup modes).
        poisoned = (
            self._pull_poisoned(report) if report.dead_letters else {}
        )
        finish = NutritionEstimator.finish_recipe
        offset = 0
        for recipe in self._stream(source):
            texts = recipe.ingredient_texts
            if poisoned:
                log = report.dead_letters
                for j, text in enumerate(texts):
                    hit = poisoned.get(text[:MAX_INPUT_CHARS])
                    if hit is not None:
                        log.add(
                            "estimate", offset + j, text, hit[0], hit[1]
                        )
            offset += len(texts)
            yield finish(
                [estimates[text] for text in texts], recipe.servings
            )

    def corpus_diagnostics(self, source: CorpusSource) -> ReasonBreakdown:
        """Reason-code breakdown over a whole corpus (Figure 2 by cause).

        Runs the two-phase protocol over the corpus's distinct-line
        table (sharded at ``workers > 1`` — reason codes and traces
        ship bit-identically through the wire codec) and attributes
        every line, weighted by occurrence count, to the §II-C
        strategy that resolved or killed it.
        """
        report = self._begin_run()
        run = self._durable_run(source, report.dedup)
        self._note_run(report, run)
        try:
            lines = self._line_table(source, report)
            table = self._estimate_table_into(lines, report, run)
        finally:
            if run is not None:
                run.close()
        poisoned = (
            self._pull_poisoned(report) if report.dead_letters else {}
        )
        if poisoned:
            # Extra traversal only when something was quarantined: the
            # letters must carry per-occurrence corpus positions, like
            # the streaming path's assembly pass produces.
            log = report.dead_letters
            offset = 0
            for recipe in self._stream(source):
                for j, text in enumerate(recipe.ingredient_texts):
                    hit = poisoned.get(text[:MAX_INPUT_CHARS])
                    if hit is not None:
                        log.add(
                            "estimate", offset + j, text, hit[0], hit[1]
                        )
                offset += len(recipe.ingredient_texts)
        return reason_breakdown_from_lines(
            (table[text], count) for text, count in lines
        )

    # ------------------------------------------------------------------
    # execution backends

    def estimate_table(
        self, counts: dict[str, int]
    ) -> dict[str, IngredientEstimate]:
        """Run the two-phase protocol over a distinct-line table.

        ``text -> final estimate`` for every key of *counts* (values
        are occurrence counts, which weight the unit statistics).  The
        building block under :meth:`iter_corpus_estimates`, exposed
        for callers that already hold a distinct-line table — the HTTP
        service's batch endpoint assembles its own recipes from this.
        Dispatches to the in-process estimator at ``workers=1`` and to
        the supervised pool otherwise; results are bit-identical
        either way.  In oracle mode (``REPRO_DEDUP=0`` /
        ``dedup=False``) the multiplicities are expanded back into
        per-occurrence entries so even this pre-collapsed entry point
        exercises the undeduped pipeline.
        """
        report = self._begin_run()
        report.total_lines = sum(counts.values())
        report.distinct_lines = len(counts)
        if report.dedup:
            lines = list(counts.items())
        else:
            lines = [
                (text, 1)
                for text, count in counts.items()
                for _ in range(count)
            ]
        return self._estimate_table_into(lines, report)

    def _estimate_table_into(
        self,
        lines: list[tuple[str, int]],
        report: RunReport,
        run: DurableRun | None = None,
    ) -> dict[str, IngredientEstimate]:
        if run is None and self._workers == 1 and not self._force_pool:
            return self._run_local(lines, report)
        # A durable run always takes the chunked pool path, even at
        # workers=1: journaling and replay are defined over the chunk
        # plan, and a full replay never spawns a worker anyway.
        return self._run_pool(lines, report, run)

    def _run_local(
        self, lines: list[tuple[str, int]], report: RunReport
    ) -> dict[str, IngredientEstimate]:
        log = report.dead_letters if self._quarantine else None
        estimator = self._local_estimator()
        estimates = estimator.corpus_estimate_table(
            lines, quarantine=log, columnar=_columnar_enabled()
        )
        report.stats_digest = snapshot_digest(
            estimator.fallback.snapshot()
        )
        return estimates

    def _worker_spec(self) -> EstimatorSpec:
        """The spec shipped to pool workers.

        For artifact-backed specs the coordinator pins the database
        fingerprint it loaded at construction onto the worker spec:
        workers re-read the artifact file at pool start-up — and again
        on every supervised **respawn** — and the wire codec decodes
        foods by database *index* against the coordinator's list.  If
        the file were swapped for one built against different data
        between the coordinator's load and a later spawn (e.g. a
        deploy refreshing the artifact under a running service), the
        indices would silently resolve to the wrong foods.  Pinning
        routes that race into ``EstimatorSpec``'s fingerprint check,
        so every worker either loads the identical database or fails
        with a typed ``ArtifactMismatchError`` — at the cost of one
        string in the spawn args, not a pickled food list.
        """
        if (
            self._pinned_fingerprint is None
            or self._spec.expected_fingerprint is not None
        ):
            return self._spec
        return dataclasses.replace(
            self._spec, expected_fingerprint=self._pinned_fingerprint
        )

    def _run_pool(
        self,
        lines: list[tuple[str, int]],
        report: RunReport,
        run: DurableRun | None = None,
    ) -> dict[str, IngredientEstimate]:
        foods = self._food_list()
        merged_fallback = UnitFallback(self._spec.max_grams)
        estimates: dict[str, IngredientEstimate] = {}
        chunks = list(_chunked(lines, self._chunk_size))
        quarantine_on = self._quarantine
        columnar = _columnar_enabled()
        if run is not None:
            run.begin(
                n_chunks=len(chunks),
                distinct_lines=len(lines),
                chunk_size=self._chunk_size,
            )
        if not chunks:
            # Even an empty run freezes (an empty) unit table; give it
            # a digest so downstream cache tokens never see None.
            report.stats_digest = snapshot_digest(UnitFallback().snapshot())
            if run is not None and not run.complete:
                run.record_complete(
                    {**report.counters(), **report.journal_counters()}
                )
            return estimates

        # The pool is acquired lazily: a resume whose journal already
        # covers every chunk is pure replay and spawns no workers.
        # The pool itself is persistent (spawned once per engine,
        # reused run-to-run), so supervision counters are reported as
        # deltas against a baseline captured at first acquisition.
        used_pool: SupervisedWorkerPool | None = None
        baseline = (0, 0, 0, 0)

        def ensure_pool() -> SupervisedWorkerPool:
            nonlocal used_pool, baseline
            acquired = self._ensure_pool()
            if used_pool is None:
                used_pool = acquired
                stats = acquired.stats
                baseline = (
                    stats.retries, stats.respawns, stats.crashes, stats.hung
                )
            return acquired

        def replay_decode(wire, expected: int, what: str, index: int):
            decoded = loads_estimates(wire, foods)
            if len(decoded) != expected:
                raise RunJournalError(
                    f"journaled {what} chunk {index} decodes to "
                    f"{len(decoded)} estimates where the recomputed "
                    f"chunk holds {expected} — the corpus changed since "
                    f"the run was started"
                )
            return decoded

        try:
            # Phase 1+2: collect shards, merge snapshots in chunk
            # order.  The supervised pool yields results in task order
            # even when a retry finishes out of sequence, so the merge
            # order — and therefore the tie-break-exact table — is
            # independent of failures; journal replay slots into the
            # same chunk-order merge, with only the missing chunk
            # indices (in increasing order) dispatched to workers.
            replay = run.collect if run is not None else {}
            missing = [i for i in range(len(chunks)) if i not in replay]
            payloads = [
                (i * self._chunk_size, chunks[i], quarantine_on, columnar)
                for i in missing
            ]
            executed = (
                ensure_pool().run("collect-chunk", payloads)
                if payloads
                else iter(())
            )
            for i, chunk in enumerate(chunks):
                if i in replay:
                    wire, snapshot, letters = replay[i]
                    decoded = replay_decode(wire, len(chunk), "collect", i)
                    report.replayed_chunks += 1
                else:
                    wire, snapshot, letters = next(executed)
                    decoded = loads_estimates(wire, foods)
                    if run is not None:
                        run.record_collect(i, wire, snapshot, list(letters))
                    report.executed_chunks += 1
                merged_fallback.merge(snapshot)
                report.dead_letters.extend(list(letters))
                for (text, _), estimate in zip(chunk, decoded):
                    estimates[text] = estimate
            # Phase boundary: checkpoint the merged unit tables — or,
            # on a resume that already holds a checkpoint, cross-check
            # it against the tables just merged from replay.  A
            # divergence means the corpus or database changed in a way
            # the manifest's sampled prefix could not see.
            snapshot = merged_fallback.snapshot()
            report.stats_digest = snapshot_digest(snapshot)
            if run is not None:
                if run.checkpoint is None:
                    run.record_checkpoint(snapshot)
                elif run.checkpoint != snapshot:
                    raise RunJournalError(
                        "journaled phase-boundary checkpoint does not "
                        "match the unit tables merged from the replayed "
                        "chunks — the corpus changed since the run was "
                        "started"
                    )
            # Phase 3: re-estimate fallback candidates against the
            # frozen merged table.  The pending list is a pure function
            # of the phase-1 estimates, so a resume recomputes the
            # identical fallback chunking and can address journaled
            # phase-3 frames by chunk index.
            ordinals: dict[str, int] = {}
            for i, (text, _) in enumerate(lines):
                if text not in ordinals:
                    ordinals[text] = i
            pending = [
                (ordinals[text], text)
                for text, estimate in estimates.items()
                if estimate.status == STATUS_NAME_ONLY
            ]
            fallback_chunks = list(_chunked(pending, self._chunk_size))
            fb_replay = run.fallback if run is not None else {}
            fb_missing = [
                i for i in range(len(fallback_chunks)) if i not in fb_replay
            ]
            self._stats_serial += 1
            stats_token = self._stats_serial
            payloads = [
                (
                    stats_token, snapshot, fallback_chunks[i],
                    quarantine_on, columnar,
                )
                for i in fb_missing
            ]
            executed = (
                ensure_pool().run("fallback-chunk", payloads)
                if payloads
                else iter(())
            )
            for i, items in enumerate(fallback_chunks):
                if i in fb_replay:
                    present, wire, letters = fb_replay[i]
                    if present and not (
                        0 <= min(present) and max(present) < len(items)
                    ):
                        raise RunJournalError(
                            f"journaled fallback chunk {i} addresses "
                            f"lines outside the recomputed chunk — the "
                            f"corpus changed since the run was started"
                        )
                    decoded = replay_decode(
                        wire, len(present), "fallback", i
                    )
                    report.replayed_chunks += 1
                else:
                    present, wire, letters = next(executed)
                    decoded = loads_estimates(wire, foods)
                    if run is not None:
                        run.record_fallback(i, present, wire, list(letters))
                    report.executed_chunks += 1
                report.dead_letters.extend(list(letters))
                for p, estimate in zip(present, decoded):
                    estimates[items[p][1]] = estimate
        except BaseException:
            # A failed run leaves workers in an unknown state (mid-
            # chunk, half-installed table); close the pool so the next
            # run starts from fresh workers instead of reusing them.
            self.close()
            raise
        finally:
            if used_pool is not None:
                stats = used_pool.stats
                report.retries = stats.retries - baseline[0]
                report.respawns = stats.respawns - baseline[1]
                report.worker_crashes = stats.crashes - baseline[2]
                report.hung_workers = stats.hung - baseline[3]
        if run is not None and not run.complete:
            run.record_complete(
                {**report.counters(), **report.journal_counters()}
            )
        return estimates
