"""Typed failures of the supervised sharded engine.

Callers that want to degrade gracefully (the HTTP service's circuit
breaker) catch :class:`PipelineError`; everything the supervision
layer can give up on derives from it.  Worker *initialization*
failures are not wrapped: a typed
:class:`~repro.artifacts.errors.ArtifactMismatchError` from a swapped
artifact re-raises as itself, exactly as the pre-supervision engine
did.
"""

from __future__ import annotations


class PipelineError(RuntimeError):
    """Base class for supervised-engine failures."""


class ChunkRetriesExhaustedError(PipelineError):
    """A chunk failed on every healthy worker it was retried on.

    Raised after ``1 + max_chunk_retries`` attempts, each on a
    freshly respawned or different worker — at that point the failure
    is systematic (every worker crashes or hangs on this input), not
    transient, and retrying further would loop forever.
    """

    def __init__(self, message: str, *, chunk_id: int, attempts: int):
        super().__init__(message)
        self.chunk_id = chunk_id
        self.attempts = attempts


class WorkerPoolError(PipelineError):
    """The pool itself is unusable (e.g. workers die before serving)."""
