"""Compact wire serialization for per-line estimates.

Shipping :class:`IngredientEstimate` lists between processes with
plain pickle is dominated by one payload item: every estimate drags
its matched :class:`FoodItem` (nutrients dict + portions, ~1 KB).
Worker and coordinator build their databases from the same
:class:`EstimatorSpec`, so the food rows are identical on both sides —
a food only needs to travel as its database index.

The codec is therefore stock (C-speed) pickle with a
``dispatch_table`` entry that reduces ``FoodItem`` to
``_restore_food(index)``; on load the index resolves against the
receiving side's database.  Everything else — parsed tokens, match
word sets, the 30-float profile — round-trips through pickle
unchanged, so ``loads_estimates(dumps_estimates(x, db), db) == x``
field-for-field with zero hand-maintained field lists.  That includes
provenance: the ``reason`` / ``trace`` fields added by the resolution
strategy chain travel bit-identically without codec changes, which is
what lets sharded workers ship per-line diagnostics to the
coordinator for corpus-level reason breakdowns.

The run journal (:mod:`repro.runs.journal`) is a second consumer of
this codec: durable runs persist each chunk's wire blob verbatim and
decode it at resume time with :func:`loads_estimates` against the
resuming coordinator's database.  The manifest's database-fingerprint
binding is what makes that sound — a resume only gets this far when
the index space is provably the one the blob was encoded against.
"""

from __future__ import annotations

import copyreg
import io
import pickle
from collections.abc import Sequence

from repro.core.estimator import IngredientEstimate
from repro.usda.database import NutrientDatabase
from repro.usda.schema import FoodItem

#: Foods of the database the *current* loads_estimates call resolves
#: against.  Module-global because pickle's reduce callbacks receive
#: only their stored arguments; set/cleared around each load (the
#: engine coordinator is single-threaded).
_LOAD_FOODS: Sequence[FoodItem] | None = None


def _restore_food(index: int) -> FoodItem:
    if _LOAD_FOODS is None:
        raise RuntimeError(
            "estimate wire records can only be unpickled via "
            "loads_estimates (no database bound)"
        )
    return _LOAD_FOODS[index]


class _EstimatePickler(pickle.Pickler):
    """Pickler that writes foods as database indices."""

    def __init__(self, buffer: io.BytesIO, database: NutrientDatabase):
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        index_of = database.index_of
        table = copyreg.dispatch_table.copy()
        table[FoodItem] = lambda food: (
            _restore_food, (index_of(food.ndb_no),)
        )
        self.dispatch_table = table


def dumps_estimates(
    estimates: Sequence[IngredientEstimate], database: NutrientDatabase
) -> bytes:
    """Serialize estimates, replacing foods with database indices."""
    buffer = io.BytesIO()
    _EstimatePickler(buffer, database).dump(list(estimates))
    return buffer.getvalue()


def loads_estimates(
    blob: bytes, database: NutrientDatabase | Sequence[FoodItem]
) -> list[IngredientEstimate]:
    """Deserialize estimates, resolving food indices in *database*."""
    global _LOAD_FOODS
    _LOAD_FOODS = (
        list(database)
        if isinstance(database, NutrientDatabase)
        else database
    )
    try:
        return pickle.loads(blob)
    finally:
        _LOAD_FOODS = None
