"""Per-food unit -> gram resolution (paper §II-C and Table IV).

Given a matched :class:`~repro.usda.schema.FoodItem`, the resolver
answers "how many grams is 1 <unit> of this food?" by:

1. exact lookup among the food's SR portions (after normalization),
2. size equivalence — small/medium/large "were considered equivalent
   because of ambiguity between sizes",
3. direct mass arithmetic (gram/ounce/pound need no portion),
4. volume derivation — "For butter, the units 'cup' and 'tablespoon'
   are present, but 'teaspoon' is not.  Hence, we can add teaspoon as a
   unit since the ratio of volume of a cup and a teaspoon is constant",
5. countable fallback — a bare quantity ("2 eggs") uses the first
   countable portion of the food.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units.aliases import SIZE_UNITS
from repro.units.conversions import MASS_GRAMS, VOLUME_ML, is_mass_unit, is_volume_unit
from repro.units.normalize import normalize_unit
from repro.usda.schema import FoodItem

#: How a gram weight was obtained; benchmark coverage reports group by
#: this (Figure 2's "main problem lies in matching the units").
METHOD_EXACT = "exact"
METHOD_SIZE = "size-equivalent"
METHOD_MASS = "mass"
METHOD_VOLUME = "volume-derived"
METHOD_COUNT = "countable"


@dataclass(frozen=True, slots=True)
class UnitResolution:
    """Result of resolving a unit for a food."""

    unit: str
    grams_per_unit: float
    method: str


# Units that denote "one piece of the food" when the phrase gives a bare
# count ("2 eggs", "1 onion").  Excludes measures (cup, tbsp, ...) and
# packagings resolved explicitly.
_NON_COUNTABLE: frozenset[str] = frozenset(VOLUME_ML) | frozenset(MASS_GRAMS) | {
    "package", "can", "jar", "bottle", "packet", "envelope", "container",
    "carton", "box", "bag",
}


class UnitResolver:
    """Resolve units to gram weights for one food item."""

    def __init__(self, food: FoodItem):
        self._food = food
        self._portion_grams: dict[str, float] = {}
        for portion in food.portions:
            unit = normalize_unit(portion.unit)
            if unit is None:
                continue
            # Keep the first (lowest-seq) portion per unit, mirroring
            # SR's own ordering of household measures.
            self._portion_grams.setdefault(unit, portion.grams_per_amount)

    @classmethod
    def from_parts(
        cls, food: FoodItem, portion_grams: dict[str, float]
    ) -> "UnitResolver":
        """Reconstruct a resolver from precomputed portion weights.

        *portion_grams* must be a prior :meth:`known_units` result for
        *food* — the artifact loader (:mod:`repro.artifacts`) stores
        one table per food so restored estimators skip the portion
        normalization pass.  Countable fallback still walks the food's
        portions at resolve time, exactly like a freshly built
        resolver.
        """
        resolver = cls.__new__(cls)
        resolver._food = food
        resolver._portion_grams = dict(portion_grams)
        return resolver

    @property
    def food(self) -> FoodItem:
        return self._food

    def known_units(self) -> dict[str, float]:
        """Canonical unit -> grams-per-unit from the food's portions."""
        return dict(self._portion_grams)

    def resolve(self, unit: str | None) -> UnitResolution | None:
        """Gram weight of 1 *unit* of this food, or ``None``.

        ``unit`` may be a raw string (it is normalized first) or
        ``None`` / "" / "whole", meaning a bare count of the food.
        """
        if unit is None or not unit.strip() or unit.strip().lower() in ("whole", "each"):
            return self._resolve_countable()
        canonical = normalize_unit(unit)
        if canonical is None:
            return None

        grams = self._portion_grams.get(canonical)
        if grams is not None:
            return UnitResolution(canonical, grams, METHOD_EXACT)

        if canonical in SIZE_UNITS:
            for alt in SIZE_UNITS:
                grams = self._portion_grams.get(alt)
                if grams is not None:
                    return UnitResolution(canonical, grams, METHOD_SIZE)

        if is_mass_unit(canonical):
            return UnitResolution(canonical, MASS_GRAMS[canonical], METHOD_MASS)

        if is_volume_unit(canonical):
            derived = self._derive_volume(canonical)
            if derived is not None:
                return UnitResolution(canonical, derived, METHOD_VOLUME)

        if canonical == "half":
            base = self._resolve_countable()
            if base is not None:
                return UnitResolution("half", base.grams_per_unit / 2.0, METHOD_COUNT)
        if canonical == "quarter":
            base = self._resolve_countable()
            if base is not None:
                return UnitResolution("quarter", base.grams_per_unit / 4.0, METHOD_COUNT)

        return None

    def _derive_volume(self, unit: str) -> float | None:
        """Derive grams for a volume unit from any known volume portion.

        Density (g/ml) is constant for the food, so grams scale with
        the volume ratio.  Prefer the smallest known volume unit: SR
        rounds portion grams, and scaling a tablespoon down to a
        teaspoon loses less precision than scaling a cup down.
        """
        known_volumes = [
            (VOLUME_ML[u], u, grams)
            for u, grams in self._portion_grams.items()
            if is_volume_unit(u)
        ]
        if not known_volumes:
            return None
        _, base_unit, base_grams = min(known_volumes)
        return base_grams * VOLUME_ML[unit] / VOLUME_ML[base_unit]

    def _resolve_countable(self) -> UnitResolution | None:
        """Gram weight for "one of" the food (bare quantity).

        SR sequence order decides: the first countable portion is the
        conventional default piece ("large" for eggs, "medium" for
        onions), exactly as SR orders its household measures.
        """
        for portion in self._food.portions:
            unit = normalize_unit(portion.unit)
            if unit is None or unit in _NON_COUNTABLE:
                continue
            return UnitResolution(unit, portion.grams_per_amount, METHOD_COUNT)
        return None
