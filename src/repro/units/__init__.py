"""Unit matching substrate (paper §II-C).

Pipeline: raw unit string -> :func:`normalize_unit` (lemmatize, first
word, alphabetic regex) -> canonical unit via the alias table ->
gram weight via the food's SR portions, deriving missing volume units
through the Book-of-Yields conversion tables.
"""

from repro.units.aliases import CANONICAL_UNITS, canonicalize_unit
from repro.units.conversions import (
    MASS_GRAMS,
    VOLUME_ML,
    is_mass_unit,
    is_volume_unit,
    volume_ratio,
)
from repro.units.gram_weights import UnitResolution, UnitResolver
from repro.units.normalize import normalize_unit
from repro.units.fallback import UnitFallback, scan_for_unit

__all__ = [
    "CANONICAL_UNITS",
    "canonicalize_unit",
    "MASS_GRAMS",
    "VOLUME_ML",
    "is_mass_unit",
    "is_volume_unit",
    "volume_ratio",
    "UnitResolution",
    "UnitResolver",
    "normalize_unit",
    "UnitFallback",
    "scan_for_unit",
]
