"""Canonical cooking units and their aliases.

The paper: "standard units were defined for units where aliases were
present, for example, tbsp and tablespoon both now represent the
standard unit tablespoon" — plus 'pound'/'lb'.  This module owns that
standardization: every unit string that survives
:func:`repro.units.normalize.normalize_unit` is mapped to a canonical
spelling here.
"""

from __future__ import annotations

#: canonical unit -> aliases (lemmatized, lower-case, alphabetic only).
ALIASES: dict[str, tuple[str, ...]] = {
    "tablespoon": ("tbsp", "tbs", "tb", "tbl", "tablespoonful"),
    "teaspoon": ("tsp", "teaspoonful"),
    "cup": ("c",),
    "fluid ounce": ("floz",),  # "fl oz" collapses to "floz" after cleaning
    "ounce": ("oz", "ozs"),
    "pound": ("lb", "lbs"),
    "gram": ("g", "gm", "gr", "gms"),
    "kilogram": ("kg", "kgs", "kilo"),
    "milliliter": ("ml", "millilitre", "mls"),
    "liter": ("l", "litre"),
    "pint": ("pt",),
    "quart": ("qt",),
    "gallon": ("gal",),
    "package": ("pkg", "pkt", "packages"),
    "piece": ("pc", "pcs"),
    "dozen": ("doz",),
    "pinch": (),
    "dash": (),
    "drop": (),
    "clove": (),
    "slice": (),
    "stick": (),
    "pat": (),
    "can": (),
    "jar": (),
    "bottle": (),
    "packet": (),
    "envelope": (),
    "container": (),
    "carton": (),
    "box": (),
    "bag": (),
    "bunch": (),
    "head": (),
    "stalk": (),
    "rib": (),
    "sprig": (),
    "leaf": ("leave",),
    "loaf": (),
    "ear": (),
    "wedge": (),
    "cube": (),
    "strip": (),
    "patty": (),
    "link": (),
    "bar": (),
    "square": (),
    "scoop": (),
    "serving": (),
    "fillet": ("filet",),
    "breast": (),
    "thigh": (),
    "drumstick": (),
    "wing": (),
    "liver": (),
    "steak": (),
    "chop": (),
    "roll": (),
    "sheet": (),
    "cracker": (),
    "cookie": (),
    "tortilla": (),
    "pita": (),
    "date": (),
    "olive": (),
    "pickle": (),
    "spear": (),
    "pod": (),
    "floweret": ("floret",),
    "shallot": (),
    "pepper": (),
    "carrot": (),
    "beet": (),
    "radish": (),
    "turnip": (),
    "apricot": (),
    "banana": (),
    "grape": (),
    "cherry": (),
    "strawberry": (),
    "lemon": (),
    "lime": (),
    "orange": (),
    "fruit": (),
    "avocado": (),
    "mango": (),
    "plum": (),
    "peach": (),
    "pear": (),
    "eggplant": (),
    "cucumber": (),
    "zucchini": (),
    "artichoke": (),
    "mushroom": (),
    "potato": (),
    "sweetpotato": (),
    "tomato": (),
    "onion": (),
    "leek": (),
    "chicken": (),
    "quesadilla": (),
    "pizza": (),
    "frankfurter": ("frank",),
    "sausage": (),
    "anchovy": (),
    "sardine": (),
    "shrimp": (),
    "egg": (),
    "block": (),
    "bean": (),
    "sprout": (),
    "marshmallow": (),
    "large": ("lg", "lge"),
    "medium": ("med",),
    "small": ("sm",),
    "extra large": ("xl",),
    "whole": (),
    "half": (),
    "quarter": (),
    "handful": (),
}

#: alias -> canonical (includes identity mappings).
_CANONICAL: dict[str, str] = {}
for canonical, aliases in ALIASES.items():
    key = canonical.replace(" ", "")
    _CANONICAL[key] = canonical
    _CANONICAL[canonical] = canonical
    for alias in aliases:
        _CANONICAL[alias] = canonical

#: The set of canonical unit names.
CANONICAL_UNITS: frozenset[str] = frozenset(ALIASES)

#: Sizes are "considered equivalent because of ambiguity between sizes"
#: (paper §II-C): small, medium and large interchange when resolving
#: portion gram weights.
SIZE_UNITS: frozenset[str] = frozenset({"small", "medium", "large", "extra large"})


def canonicalize_unit(cleaned: str) -> str | None:
    """Map a cleaned unit token to its canonical unit, or ``None``.

    *cleaned* must already be lemmatized/lower-cased (the output of
    :func:`repro.units.normalize.normalize_unit` pre-canonical step).

    >>> canonicalize_unit("tbsp")
    'tablespoon'
    >>> canonicalize_unit("lb")
    'pound'
    """
    return _CANONICAL.get(cleaned)
