"""Measurement conversion tables (paper §II-C, after The Book of Yields).

"measurement conversion tables were created with detailed conversions
between units on the basis of volume ... The tables mention conversions
such as '1 cup' is equivalent to '16 tbsp' and '48 tsp' and so on."

US customary kitchen measures.  Volumes are stored in milliliters and
masses in grams so any two units of the same kind convert through a
single ratio.
"""

from __future__ import annotations

#: Volume units in milliliters per 1 unit.
VOLUME_ML: dict[str, float] = {
    "drop": 0.0513,
    "dash": 0.6161,
    "pinch": 0.3080,
    "teaspoon": 4.92892,
    "tablespoon": 14.78676,
    "fluid ounce": 29.5735,
    "cup": 236.588,
    "pint": 473.176,
    "quart": 946.353,
    "gallon": 3785.41,
    "milliliter": 1.0,
    "liter": 1000.0,
}

#: Mass units in grams per 1 unit.
MASS_GRAMS: dict[str, float] = {
    "gram": 1.0,
    "kilogram": 1000.0,
    "ounce": 28.3495,
    "pound": 453.592,
}

#: Human-readable Book-of-Yields-style equivalences (documentation and
#: the examples use these; derived from VOLUME_ML).
EQUIVALENCE_TABLE: tuple[str, ...] = (
    "1 gallon = 4 quarts = 8 pints = 16 cups",
    "1 cup = 16 tablespoons = 48 teaspoons = 8 fluid ounces",
    "1 tablespoon = 3 teaspoons = 1/2 fluid ounce",
    "1 pound = 16 ounces = 453.592 grams",
    "1 liter = 1000 milliliters = 4.2268 cups",
)


def is_volume_unit(unit: str) -> bool:
    """True if *unit* (canonical name) measures volume."""
    return unit in VOLUME_ML


def is_mass_unit(unit: str) -> bool:
    """True if *unit* (canonical name) measures mass."""
    return unit in MASS_GRAMS


def volume_ratio(unit_a: str, unit_b: str) -> float:
    """How many *unit_b* fit in one *unit_a* (both volumes).

    >>> round(volume_ratio("cup", "tablespoon"), 3)
    16.0
    >>> round(volume_ratio("cup", "teaspoon"), 3)
    48.0

    Raises
    ------
    KeyError
        If either unit is not a volume unit.
    """
    return VOLUME_ML[unit_a] / VOLUME_ML[unit_b]


def mass_grams(unit: str) -> float:
    """Grams in one *unit* (canonical mass unit).

    Raises ``KeyError`` for non-mass units.
    """
    return MASS_GRAMS[unit]


def convert(amount: float, from_unit: str, to_unit: str) -> float:
    """Convert *amount* between two units of the same kind.

    >>> convert(2.0, "cup", "tablespoon")
    32.0

    Raises
    ------
    ValueError
        If the units are of different kinds (volume vs mass) or unknown.
    """
    if is_volume_unit(from_unit) and is_volume_unit(to_unit):
        return amount * volume_ratio(from_unit, to_unit)
    if is_mass_unit(from_unit) and is_mass_unit(to_unit):
        return amount * MASS_GRAMS[from_unit] / MASS_GRAMS[to_unit]
    raise ValueError(
        f"cannot convert between {from_unit!r} and {to_unit!r}: "
        "different or unknown measurement kinds"
    )
