"""Unit fallback heuristics (paper §II-C, last two paragraphs).

Three recovery mechanisms for phrases where NER produced no unit or a
garbled one:

* :func:`scan_for_unit` — "In certain cases NER did not detect units,
  in that scenario we searched the ingredient phrase for known units".
* :meth:`UnitFallback.plausible` — "'500 g or 1 cup' which the NER
  wrongly detected as '500 cups'.  This was dealt ... by putting a
  threshold on the quantity per unit."
* :meth:`UnitFallback.most_frequent_unit` — "wherever a unit was still
  not present, the most frequent unit for that particular ingredient
  was used ... for garlic ... it would most probably be clove."
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter, defaultdict
from functools import lru_cache

from repro.text.tokenize import tokenize
from repro.units.aliases import canonicalize_unit
from repro.units.normalize import normalize_unit

#: Above this many grams, a (quantity, unit) pair for a single
#: ingredient line is implausible and treated as a mis-detection.  The
#: biggest legitimate single-ingredient amounts in recipes (a gallon of
#: water ~3.8 kg, 5 lb of flour ~2.3 kg) stay under it.
DEFAULT_MAX_GRAMS: float = 5000.0


@lru_cache(maxsize=8192)
def _scan_token_unit(token: str) -> str | None:
    """Canonical unit for one alphabetic token, for the phrase scan.

    A token counts only if its raw lower-cased spelling is itself a
    known unit alias (precision guard: "cup" scans, a lemmatizable
    near-miss does not) *and* the full normalization pipeline maps it
    to a canonical unit.  The cheap dict-membership guard runs first —
    it rejects most tokens without paying ``normalize_unit``'s
    regex + lemmatizer walk — and the result is memoized per token:
    corpus vocabulary is small and Zipf-distributed, so the scan's per
    -token work collapses to one cache hit for all repeat tokens.
    """
    if canonicalize_unit(token.lower()) is None:
        return None
    return normalize_unit(token)


def scan_for_unit(phrase: str) -> str | None:
    """Find the first known unit token inside a raw ingredient phrase.

    >>> scan_for_unit("500 g flour or 1 cup")
    'gram'
    """
    for token in tokenize(phrase):
        if not token.isalpha():
            continue
        unit = _scan_token_unit(token)
        if unit is not None:
            return unit
    return None


class UnitFallback:
    """Corpus-level unit statistics per ingredient name.

    Feed every successfully resolved (ingredient name, unit) pair with
    :meth:`observe`; query :meth:`most_frequent_unit` when a later
    phrase for the same ingredient lacks a unit.  "This works well to
    maintain consistency in the data since we have a lot of units
    corresponding to each ingredient, but only a few of them are
    dominant."
    """

    def __init__(self, max_grams: float = DEFAULT_MAX_GRAMS):
        if max_grams <= 0:
            raise ValueError(f"non-positive max_grams: {max_grams}")
        self._max_grams = max_grams
        self._counts: dict[str, Counter[str]] = defaultdict(Counter)

    @property
    def max_grams(self) -> float:
        """The plausibility threshold (grams per ingredient line)."""
        return self._max_grams

    def observe(self, ingredient: str, unit: str, count: int = 1) -> None:
        """Record *count* resolved usages of *unit* for *ingredient*.

        The weighted form exists for the corpus protocol: a distinct
        ingredient line that occurs N times contributes N observations
        in one call, which yields exactly the same counts (and the
        same key insertion order, hence the same ``most_common``
        tie-breaks) as N sequential calls.
        """
        if count <= 0:
            raise ValueError(f"non-positive observation count: {count}")
        self._counts[ingredient.lower()][unit] += count

    def most_frequent_unit(self, ingredient: str) -> str | None:
        """Dominant unit for *ingredient*, or ``None`` if never seen."""
        counts = self._counts.get(ingredient.lower())
        if not counts:
            return None
        return counts.most_common(1)[0][0]

    def plausible(self, quantity: float, grams_per_unit: float) -> bool:
        """Sanity threshold on total grams for one ingredient line."""
        return 0 < quantity * grams_per_unit <= self._max_grams

    # ------------------------------------------------------------------
    # mergeable corpus statistics (sharded estimation protocol)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Picklable copy of the observation table.

        Both levels preserve insertion order (first-observation order),
        which :meth:`merge` relies on to reproduce single-process
        ``most_common`` tie-breaking exactly.
        """
        return {
            ingredient: dict(units)
            for ingredient, units in self._counts.items()
        }

    def merge(self, snapshot: dict[str, dict[str, int]]) -> None:
        """Add a :meth:`snapshot` (e.g. from a worker shard) into this table.

        Merging per-shard snapshots *in shard order* over contiguous
        corpus shards reproduces the exact table a single process
        builds scanning the corpus front to back: counts add, and keys
        are inserted in first-shard-that-saw-them order, which equals
        first-occurrence order.  ``Counter.most_common`` breaks count
        ties by insertion order, so the dominant-unit answers are
        identical too.
        """
        for ingredient, units in snapshot.items():
            counts = self._counts[ingredient]
            for unit, count in units.items():
                counts[unit] += count

    def clear(self) -> None:
        """Drop all observations (corpus runs compute stats from scratch)."""
        self._counts.clear()

    def observed_ingredients(self) -> list[str]:
        """All ingredient names with at least one observation."""
        return sorted(self._counts)

    def unit_distribution(self, ingredient: str) -> dict[str, int]:
        """Unit -> count for *ingredient* (empty dict if unseen)."""
        return dict(self._counts.get(ingredient.lower(), {}))


def snapshot_digest(snapshot: dict[str, dict[str, int]]) -> str:
    """Content identity of a frozen observation table.

    Serialized *without* key sorting: insertion order decides
    ``most_common`` tie-breaks, so two tables with equal counts but
    different key order can answer ``most_frequent_unit`` differently
    and must digest differently.  Used as the statistics component of
    the service tier's fragment-cache token — estimates are a pure
    function of (line text, frozen table, database artifact), so equal
    digests under the same artifact mean byte-equal serialized
    estimates.
    """
    payload = json.dumps(snapshot, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
