"""Unit-string cleaning (paper §II-C).

"we applied WordNet Lemmatization ... on all the units present in our
recipes and USDA-SR database then took the first word and applied
Regular Expression (regex) to obtain a cleaner version containing only
alphabets (this helps us to ignore noise and keep relevant part like
taking pat out of 'pat (1" sq, 1/3" high)')."

The cleaning order matters and is reproduced exactly:

1. lower-case, split off parentheticals,
2. take the first word,
3. strip non-alphabetic characters,
4. lemmatize,
5. map through the alias table to the canonical unit.

A special case: "fl oz" must survive as a two-word unit, so "fl" is
joined with a following "oz" before the first-word rule applies.
"""

from __future__ import annotations

import re

from repro.text.lemmatizer import default_lemmatizer
from repro.units.aliases import canonicalize_unit

_ALPHA_RE = re.compile(r"[^a-z]+")

# Words that precede the real unit and should be skipped, e.g.
# "heaping tablespoon", "level tsp", "scant cup".
_QUALIFIERS: frozenset[str] = frozenset(
    {"heaping", "heaped", "level", "scant", "rounded", "generous", "big",
     "good"}
)


def clean_unit_token(raw: str) -> str | None:
    """Steps 1–4: produce the cleaned, lemmatized first word of *raw*.

    Returns ``None`` when nothing alphabetic survives ("1/2", "").
    """
    if not raw:
        return None
    text = raw.lower()
    # Cut everything from the first parenthetical: the paper's example
    # 'pat (1" sq, 1/3" high)' keeps only 'pat'.
    text = text.split("(", 1)[0]
    words = text.replace(",", " ").split()
    for word in words:
        stripped = _ALPHA_RE.sub("", word)
        if not stripped or stripped in _QUALIFIERS:
            continue
        if stripped == "fl" or stripped == "fluid":
            # Re-join the split "fl oz" so the alias table sees "floz".
            rest = words[words.index(word) + 1 :] if word in words else []
            for nxt in rest:
                nxt_stripped = _ALPHA_RE.sub("", nxt)
                if nxt_stripped in ("oz", "ounce", "ounces"):
                    return "floz"
            return "fluid"  # bare "fluid"; canonicalization will fail it
        if stripped == "extra":
            # "extra large" / "extra-large" is one size unit.
            rest = words[words.index(word) + 1 :] if word in words else []
            for nxt in rest:
                if _ALPHA_RE.sub("", nxt).startswith("large"):
                    return "extralarge"
            return "extra"
        return default_lemmatizer().lemmatize(stripped)
    return None


def normalize_unit(raw: str) -> str | None:
    """Full pipeline: raw unit text -> canonical unit name (or ``None``).

    >>> normalize_unit('pat (1" sq, 1/3" high)')
    'pat'
    >>> normalize_unit("Tbsps")
    'tablespoon'
    >>> normalize_unit("cups, sliced")
    'cup'
    >>> normalize_unit("fl oz")
    'fluid ounce'
    """
    cleaned = clean_unit_token(raw)
    if cleaned is None:
        return None
    canonical = canonicalize_unit(cleaned)
    if canonical is not None:
        return canonical
    # The lemma may differ from the alias table key only by an "s" the
    # lemmatizer kept (e.g. unknown plural); try a bare s-strip.
    if cleaned.endswith("s"):
        return canonicalize_unit(cleaned[:-1])
    return None
