"""Human-readable explanations of match decisions.

The paper's heuristics interact (score, raw preference, term priority,
SR index); when auditing matches — as the authors did manually for
5,000 pairs — one wants to see *why* a description won.  This module
renders the candidate ranking with every tie-break made explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.matcher import DescriptionMatcher
from repro.matching.types import MatchResult


@dataclass(frozen=True, slots=True)
class MatchExplanation:
    """Why an ingredient matched its description."""

    name: str
    state: str
    query_words: frozenset[str]
    winner: MatchResult | None
    candidates: tuple[MatchResult, ...]

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"query: name={self.name!r} state={self.state!r}"]
        lines.append(f"word set A: {{{', '.join(sorted(self.query_words))}}}")
        if self.winner is None:
            lines.append("no description shares a name word -> UNMATCHED")
            return "\n".join(lines)
        lines.append(f"winner: {self.winner.description}")
        lines.append("candidates (score | matched words | mean term priority | raw | SR index):")
        for i, cand in enumerate(self.candidates):
            marker = "->" if cand.food.ndb_no == self.winner.food.ndb_no else "  "
            matched = ", ".join(sorted(cand.matched_words))
            lines.append(
                f" {marker} {cand.score:.3f} | {{{matched}}} | "
                f"{cand.priority:.2f} | {'raw' if cand.raw_added else '-'} | "
                f"#{cand.db_index}  {cand.description}"
            )
            if i >= 9:
                lines.append(f"    ... and {len(self.candidates) - 10} more")
                break
        # Name the deciding criterion against the runner-up.
        if len(self.candidates) > 1:
            a, b = self.candidates[0], self.candidates[1]
            if a.score != b.score:
                reason = "similarity score (heuristics (c)/(e))"
            elif a.priority != b.priority:
                reason = "comma-term priority (heuristic (h))"
            elif a.raw_added != b.raw_added:
                reason = 'the "raw" preference (heuristic (g))'
            else:
                reason = "SR index order (heuristic (i))"
            lines.append(f"decided by: {reason}")
        return "\n".join(lines)


def explain_match(
    matcher: DescriptionMatcher,
    name: str,
    state: str = "",
    temperature: str = "",
    dry_fresh: str = "",
    k: int = 5,
) -> MatchExplanation:
    """Build a :class:`MatchExplanation` for one query."""
    query, _ = matcher.build_query(name, state, temperature, dry_fresh)
    winner = matcher.match(name, state, temperature, dry_fresh)
    candidates = tuple(
        matcher.top_matches(name, state, temperature, dry_fresh, k=k)
    )
    return MatchExplanation(
        name=name,
        state=state,
        query_words=query,
        winner=winner,
        candidates=candidates,
    )
