"""Vanilla and modified Jaccard indices (paper §II-B (c), (e)).

With A the preprocessed ingredient-phrase word set and B the
preprocessed food-description word set:

* vanilla:   J(A, B)  = |A ∩ B| / |A ∪ B|
* modified:  J*(A, B) = |A ∩ B| / |A|

The modified denominator removes the bias against long, detailed food
descriptions ("skimmed milk" must not lose "Milk, reduced fat, fluid,
2% milkfat, protein fortified, ..." to "Milk shakes, thick chocolate"
just because the former has more words).
"""

from __future__ import annotations

from collections.abc import Set


def vanilla_jaccard(a: Set[str], b: Set[str]) -> float:
    """|A ∩ B| / |A ∪ B|; 0.0 when both sets are empty.

    >>> vanilla_jaccard({"red", "lentil"}, {"lentil", "pink", "red", "raw"})
    0.5
    """
    if not a and not b:
        return 0.0
    union = len(a | b)
    return len(a & b) / union


def modified_jaccard(a: Set[str], b: Set[str]) -> float:
    """|A ∩ B| / |A|; 0.0 when A is empty.

    Bounded in [0, 1] because |A ∩ B| <= |A|.

    >>> modified_jaccard({"red", "lentil"}, {"lentil", "pink", "red", "raw"})
    1.0
    """
    if not a:
        return 0.0
    return len(a & b) / len(a)
