"""Result types for description matching."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.usda.schema import FoodItem


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of matching one ingredient name against the database.

    Attributes
    ----------
    food:
        The matched USDA food.
    score:
        The similarity under the configured metric (modified Jaccard by
        default), in [0, 1].
    priority:
        Mean comma-term index of the matched words (lower = words sit
        in more important terms) — the heuristic-(h) tie-break key.
    db_index:
        SR insertion index of the food — the heuristic-(i) final
        tie-break ("simply take the first match").
    query_words:
        The preprocessed word set A built from the ingredient name and
        its STATE/TEMP/DRY-FRESH entities (plus the synthetic "raw").
    matched_words:
        A ∩ B.
    raw_added:
        Whether heuristic (g) injected "raw" into the query.
    """

    food: FoodItem
    score: float
    priority: float
    db_index: int
    query_words: frozenset[str] = field(default_factory=frozenset)
    matched_words: frozenset[str] = field(default_factory=frozenset)
    raw_added: bool = False

    @property
    def description(self) -> str:
        """Convenience: the matched food's long description."""
        return self.food.description
