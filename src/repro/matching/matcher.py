"""The closest-description matcher implementing heuristics (a)–(i).

Selection order for the best description (paper §II-B):

1. highest similarity score — modified Jaccard J* = |A∩B| / |A| by
   default, vanilla J = |A∩B| / |A∪B| for the ablation/Table III
   comparison (heuristics (c), (e));
2. among score ties, lowest mean comma-term priority of the matched
   words (heuristic (h): "apple" prefers "Apples, raw, with skin" where
   the match sits in term 1 over "Babyfood, apples, dices, toddler"
   where it sits in term 2);
3. among remaining ties, lowest SR index (heuristic (i): "simply take
   the first match", relying on SR's indexing to put the canonical
   variant first).

Query construction implements heuristics (b), (d), (f), (g): the word
set A is built from the ingredient NAME plus STATE/TEMP/DRY-FRESH
entities, lemmatized and negation-rewritten; when no STATE is given,
the synthetic word "raw" joins A so uncooked descriptions gain exactly
one extra matching word.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matching.jaccard import modified_jaccard, vanilla_jaccard
from repro.matching.preprocess import (
    PreprocessedDescription,
    preprocess_description,
    preprocess_words,
)
from repro.matching.types import MatchResult
from repro.text.lemmatizer import WordNetStyleLemmatizer
from repro.usda.database import NutrientDatabase


@dataclass(frozen=True, slots=True)
class MatcherConfig:
    """Ablation switches for the matching heuristics.

    The defaults reproduce the paper's full protocol; benchmarks flip
    individual switches to quantify each heuristic's contribution.
    """

    use_modified_jaccard: bool = True   # heuristic (e) vs vanilla (c)
    rewrite_negations: bool = True      # heuristic (f)
    raw_bonus: bool = True              # heuristic (g)
    priority_tiebreak: bool = True      # heuristic (h)
    min_score: float = 1e-9             # below this, no match at all


class DescriptionMatcher:
    """Match ingredient names to food descriptions in a database."""

    def __init__(
        self,
        database: NutrientDatabase,
        config: MatcherConfig | None = None,
    ):
        self._db = database
        self._config = config or MatcherConfig()
        # The lemmatizer validates rule output against the database
        # vocabulary (paper (b): WordNet lemmatization; our lexicon is
        # the matching vocabulary itself).
        self._lemmatizer = WordNetStyleLemmatizer(database.vocabulary())
        self._descriptions: list[PreprocessedDescription] = [
            preprocess_description(food.description, self._lemmatizer)
            for food in database
        ]
        self._foods = list(database)
        self._cache: dict[tuple[str, str, str, str], MatchResult | None] = {}

    @property
    def database(self) -> NutrientDatabase:
        return self._db

    @property
    def config(self) -> MatcherConfig:
        return self._config

    def build_query(
        self,
        name: str,
        state: str = "",
        temperature: str = "",
        dry_fresh: str = "",
    ) -> tuple[frozenset[str], bool]:
        """Construct the word set A; returns (words, raw_preference).

        Heuristic (d): STATE, TEMP and DRY/FRESH entities join the
        name because "comma-separated terms in later portions of the
        food description are more likely to match with the State,
        Temperature and Freshness of the ingredient".

        Heuristic (g): when no STATE was identified, descriptions
        containing the word "raw" get a preference — implemented as a
        tie-break (``raw_preference=True``) rather than a query word so
        the bonus can never outvote real word overlap ("white sugar"
        must not drift to "Egg, white, raw, fresh" on the strength of
        the synthetic "raw").
        """
        parts = " ".join(p for p in (name, state, temperature, dry_fresh) if p)
        words = frozenset(self._preprocess(parts))
        raw_preference = self._config.raw_bonus and not state.strip()
        return words, raw_preference

    def _preprocess(self, text: str) -> list[str]:
        if not self._config.rewrite_negations:
            # Ablation: skip negation rewriting but keep the rest of
            # the pipeline (tokenize, stop words, lemmatize).
            from repro.text.stopwords import STOP_WORDS
            from repro.text.tokenize import word_tokens
            from repro.matching.preprocess import canonical_word

            return [
                canonical_word(w, self._lemmatizer)
                for w in word_tokens(text)
                if w not in STOP_WORDS
            ]
        return preprocess_words(text, self._lemmatizer)

    def match(
        self,
        name: str,
        state: str = "",
        temperature: str = "",
        dry_fresh: str = "",
    ) -> MatchResult | None:
        """Best description for an ingredient, or ``None`` if nothing scores.

        Results are cached per (name, state, temperature, dry_fresh).
        """
        key = (name.lower(), state.lower(), temperature.lower(), dry_fresh.lower())
        if key in self._cache:
            return self._cache[key]
        result = self._match_uncached(name, state, temperature, dry_fresh)
        self._cache[key] = result
        return result

    def _match_uncached(
        self, name: str, state: str, temperature: str, dry_fresh: str
    ) -> MatchResult | None:
        query, raw_pref = self.build_query(name, state, temperature, dry_fresh)
        if not query:
            return None
        # A candidate must share at least one word with the NAME itself:
        # state/temperature words alone ("diced" matching "Babyfood,
        # apples, dices, toddler" for "bacon, diced") never constitute
        # a match.
        name_words = frozenset(self._preprocess(name))
        best: MatchResult | None = None
        for index, (food, desc) in enumerate(zip(self._foods, self._descriptions)):
            matched = query & desc.words
            if not matched:
                continue
            if name_words and not (matched & name_words):
                continue
            if self._config.use_modified_jaccard:
                score = modified_jaccard(query, desc.words)
            else:
                score = vanilla_jaccard(query, desc.words)
            if score < self._config.min_score:
                continue
            candidate = MatchResult(
                food=food,
                score=score,
                priority=self._mean_priority(matched, desc),
                db_index=index,
                query_words=query,
                matched_words=frozenset(matched),
                raw_added=raw_pref and desc.has_raw,
            )
            if best is None or self._better(candidate, best):
                best = candidate
        return best

    def _mean_priority(
        self, matched: set[str], desc: PreprocessedDescription
    ) -> float:
        """Mean comma-term index of matched words (lower is better)."""
        if not matched:
            return float("inf")
        return sum(desc.term_priority[w] for w in matched) / len(matched)

    def _better(self, a: MatchResult, b: MatchResult) -> bool:
        """True if *a* beats *b*: score, raw preference, priority, index.

        The heuristic-(g) raw preference sits between priority and
        index: at equal word overlap *and* equal term priority, an
        uncooked ingredient prefers the description that says "raw"
        ("fava beans" picks "Broadbeans (fava beans), mature seeds,
        raw" over the canned variant; "whole eggs" picks "Egg, whole,
        raw, fresh" over the hard-boiled entry).  Term priority stays
        ahead of it so "white sugar" resolves to term-1 "Sugars,
        granulated" rather than raw-but-term-2 "Egg, white, raw,
        fresh" (heuristic (h) before (g)).
        """
        if a.score != b.score:
            return a.score > b.score
        if self._config.priority_tiebreak and a.priority != b.priority:
            return a.priority < b.priority
        if a.raw_added != b.raw_added:
            return a.raw_added
        return a.db_index < b.db_index

    def top_matches(
        self,
        name: str,
        state: str = "",
        temperature: str = "",
        dry_fresh: str = "",
        k: int = 5,
    ) -> list[MatchResult]:
        """The *k* best-scoring candidates, in selection order.

        Useful for audits (the paper's manual validation of the 5,000
        most frequent ingredient+state pairs) and for debugging
        collisions.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query, raw_pref = self.build_query(name, state, temperature, dry_fresh)
        if not query:
            return []
        name_words = frozenset(self._preprocess(name))
        candidates: list[MatchResult] = []
        for index, (food, desc) in enumerate(zip(self._foods, self._descriptions)):
            matched = query & desc.words
            if not matched:
                continue
            if name_words and not (matched & name_words):
                continue
            if self._config.use_modified_jaccard:
                score = modified_jaccard(query, desc.words)
            else:
                score = vanilla_jaccard(query, desc.words)
            if score < self._config.min_score:
                continue
            candidates.append(
                MatchResult(
                    food=food,
                    score=score,
                    priority=self._mean_priority(matched, desc),
                    db_index=index,
                    query_words=query,
                    matched_words=frozenset(matched),
                    raw_added=raw_pref and desc.has_raw,
                )
            )
        sort_key = (
            (lambda r: (-r.score, r.priority, not r.raw_added, r.db_index))
            if self._config.priority_tiebreak
            else (lambda r: (-r.score, not r.raw_added, r.db_index))
        )
        candidates.sort(key=sort_key)
        return candidates[:k]
