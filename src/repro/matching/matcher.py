"""The closest-description matcher implementing heuristics (a)–(i).

Selection order for the best description (paper §II-B):

1. highest similarity score — modified Jaccard J* = |A∩B| / |A| by
   default, vanilla J = |A∩B| / |A∪B| for the ablation/Table III
   comparison (heuristics (c), (e));
2. among score ties, lowest mean comma-term priority of the matched
   words (heuristic (h): "apple" prefers "Apples, raw, with skin" where
   the match sits in term 1 over "Babyfood, apples, dices, toddler"
   where it sits in term 2);
3. among remaining ties, lowest SR index (heuristic (i): "simply take
   the first match", relying on SR's indexing to put the canonical
   variant first).

Query construction implements heuristics (b), (d), (f), (g): the word
set A is built from the ingredient NAME plus STATE/TEMP/DRY-FRESH
entities, lemmatized and negation-rewritten; when no STATE is given,
the synthetic word "raw" joins A so uncooked descriptions gain exactly
one extra matching word.

Candidate generation is sub-linear: a :class:`DescriptionIndex` built
at construction restricts scoring to descriptions sharing at least one
NAME word with the query (see ``index.py`` for the exactness
argument).  Scores, tie-breaks and winners are bit-identical to the
original full scan.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.matching.index import DescriptionIndex
from repro.matching.preprocess import (
    PreprocessedDescription,
    canonical_word,
    preprocess_description,
)
from repro.matching.types import MatchResult
from repro.text.lemmatizer import WordNetStyleLemmatizer
from repro.text.negation import rewrite_negations
from repro.text.stopwords import STOP_WORDS
from repro.text.tokenize import word_tokens
from repro.usda.database import NutrientDatabase
from repro.utils import DEFAULT_CACHE_CAP, BoundedCache

#: Sentinel distinguishing "not cached" from a cached ``None`` miss.
_UNCACHED = object()


@dataclass(frozen=True, slots=True)
class MatcherConfig:
    """Ablation switches for the matching heuristics.

    The defaults reproduce the paper's full protocol; benchmarks flip
    individual switches to quantify each heuristic's contribution.
    """

    use_modified_jaccard: bool = True   # heuristic (e) vs vanilla (c)
    rewrite_negations: bool = True      # heuristic (f)
    raw_bonus: bool = True              # heuristic (g)
    priority_tiebreak: bool = True      # heuristic (h)
    min_score: float = 1e-9             # below this, no match at all


class DescriptionMatcher:
    """Match ingredient names to food descriptions in a database."""

    def __init__(
        self,
        database: NutrientDatabase,
        config: MatcherConfig | None = None,
        cache_cap: int = DEFAULT_CACHE_CAP,
    ):
        self._db = database
        self._config = config or MatcherConfig()
        # The lemmatizer validates rule output against the database
        # vocabulary (paper (b): WordNet lemmatization; our lexicon is
        # the matching vocabulary itself).
        self._lemmatizer = WordNetStyleLemmatizer(database.vocabulary())
        # word -> lemma memo, shared by description preprocessing and
        # every query: each distinct token is lemmatized exactly once
        # per matcher lifetime.  All three memos are size-capped
        # (``cache_cap`` entries, FIFO) so an unbounded query stream
        # cannot grow matcher memory without limit.
        self._canon_cache: dict[str, str] = BoundedCache(cache_cap)
        # text -> word tokens memo: ingredient names recur across
        # states ("butter" softened/melted/...), so each distinct
        # entity string is tokenized once per matcher lifetime.
        self._token_cache: dict[str, tuple[str, ...]] = BoundedCache(cache_cap)
        self._descriptions: list[PreprocessedDescription] = [
            preprocess_description(
                food.description, self._lemmatizer, cache=self._canon_cache
            )
            for food in database
        ]
        self._foods = list(database)
        self._index = DescriptionIndex(self._descriptions)
        self._cache: dict[tuple[str, str, str, str], MatchResult | None] = (
            BoundedCache(cache_cap)
        )

    @classmethod
    def from_precomputed(
        cls,
        database: NutrientDatabase,
        descriptions: Sequence[PreprocessedDescription],
        index: DescriptionIndex,
        config: MatcherConfig | None = None,
        cache_cap: int = DEFAULT_CACHE_CAP,
    ) -> "DescriptionMatcher":
        """Construct a matcher from already-preprocessed state.

        The artifact loader (:mod:`repro.artifacts`) restores the
        description word sets and the inverted index from a snapshot
        and skips the per-description lemmatization pass entirely —
        the matcher's dominant construction cost.  *descriptions* and
        *index* must describe *database* in SR index order; queries
        against the result are bit-identical to a freshly built
        matcher because per-query scoring reads only this state (the
        heuristic switches in *config* are applied at query time and
        are independent of it).
        """
        matcher = cls.__new__(cls)
        matcher._db = database
        matcher._config = config or MatcherConfig()
        matcher._lemmatizer = WordNetStyleLemmatizer(database.vocabulary())
        matcher._canon_cache = BoundedCache(cache_cap)
        matcher._token_cache = BoundedCache(cache_cap)
        matcher._descriptions = list(descriptions)
        matcher._foods = list(database)
        matcher._index = index
        matcher._cache = BoundedCache(cache_cap)
        if len(matcher._descriptions) != len(matcher._foods):
            raise ValueError(
                f"{len(matcher._descriptions)} precomputed descriptions "
                f"for {len(matcher._foods)} foods"
            )
        return matcher

    @property
    def database(self) -> NutrientDatabase:
        return self._db

    @property
    def config(self) -> MatcherConfig:
        return self._config

    @property
    def index(self) -> DescriptionIndex:
        """The inverted index backing candidate generation."""
        return self._index

    @property
    def descriptions(self) -> Sequence[PreprocessedDescription]:
        """Preprocessed descriptions, in SR index order (read-only)."""
        return tuple(self._descriptions)

    def clear_cache(self) -> None:
        """Drop memoized match results (benchmarking/profiling hook)."""
        self._cache.clear()

    def cache_stats(self) -> dict[str, int | float]:
        """Result-memo effectiveness (``/metrics`` ``caches.matcher``)."""
        return self._cache.stats()

    def build_query(
        self,
        name: str,
        state: str = "",
        temperature: str = "",
        dry_fresh: str = "",
    ) -> tuple[frozenset[str], bool]:
        """Construct the word set A; returns (words, raw_preference).

        Heuristic (d): STATE, TEMP and DRY/FRESH entities join the
        name because "comma-separated terms in later portions of the
        food description are more likely to match with the State,
        Temperature and Freshness of the ingredient".

        Heuristic (g): when no STATE was identified, descriptions
        containing the word "raw" get a preference — implemented as a
        tie-break (``raw_preference=True``) rather than a query word so
        the bonus can never outvote real word overlap ("white sugar"
        must not drift to "Egg, white, raw, fresh" on the strength of
        the synthetic "raw").
        """
        words, _, raw_preference = self._query_parts(
            name, state, temperature, dry_fresh
        )
        return words, raw_preference

    def _query_parts(
        self, name: str, state: str, temperature: str, dry_fresh: str
    ) -> tuple[frozenset[str], frozenset[str], bool]:
        """(query words A, NAME-only words, raw preference) in one pass.

        The NAME tokens are preprocessed once and reused as the full
        query when no STATE/TEMP/DRY-FRESH entities are present (the
        common case); with entities present, the memoized per-entity
        tokens are concatenated and only the cheap tail of the
        pipeline (negation rewrite, stop words, memoized lemmas) runs
        over the combined sequence — token concatenation equals
        tokenizing the joined phrase because alphabetic tokens never
        span whitespace.
        """
        name_tokens = self._tokens(name)
        name_words = frozenset(self._finish(name_tokens))
        if state or temperature or dry_fresh:
            combined = list(name_tokens)
            for part in (state, temperature, dry_fresh):
                if part:
                    combined.extend(self._tokens(part))
            words = frozenset(self._finish(combined))
        else:
            words = name_words
        raw_preference = self._config.raw_bonus and not state.strip()
        return words, name_words, raw_preference

    def _tokens(self, text: str) -> tuple[str, ...]:
        tokens = self._token_cache.get(text)
        if tokens is None:
            tokens = tuple(word_tokens(text))
            self._token_cache[text] = tokens
        return tokens

    def _finish(self, tokens: Sequence[str]) -> list[str]:
        """Pipeline tail after tokenization: negations, stops, lemmas.

        With ``rewrite_negations`` off (ablation) the rewrite step is
        skipped but stop words and lemmatization still apply.
        """
        if self._config.rewrite_negations:
            tokens = rewrite_negations(list(tokens))
        lemmatizer = self._lemmatizer
        cache = self._canon_cache
        return [
            canonical_word(word, lemmatizer, cache)
            for word in tokens
            if word not in STOP_WORDS
        ]

    def match(
        self,
        name: str,
        state: str = "",
        temperature: str = "",
        dry_fresh: str = "",
    ) -> MatchResult | None:
        """Best description for an ingredient, or ``None`` if nothing scores.

        Results are cached per (name, state, temperature, dry_fresh).
        """
        key = (name.lower(), state.lower(), temperature.lower(), dry_fresh.lower())
        cached = self._cache.get(key, _UNCACHED)
        if cached is not _UNCACHED:
            return cached
        result = self._match_uncached(name, state, temperature, dry_fresh)
        self._cache[key] = result
        return result

    def match_many(
        self,
        queries: Iterable[str | Sequence[str]],
    ) -> list[MatchResult | None]:
        """Batch variant of :meth:`match` over many ingredient lines.

        Each query is a name string or a ``(name[, state[, temperature
        [, dry_fresh]]])`` sequence.  All queries share the
        per-instance result cache, so a corpus where the same
        ingredient+state pair recurs pays the scoring cost once.
        """
        results: list[MatchResult | None] = []
        for query in queries:
            if isinstance(query, str):
                query = (query,)
            name, state, temperature, dry_fresh = (
                tuple(query) + ("", "", "")
            )[:4]
            results.append(self.match(name, state, temperature, dry_fresh))
        return results

    #: Uncached queries per columnar counting pass; bounds the bincount
    #: scratch space (queries x n_descriptions int64) to a few MB.
    _CHUNK_QUERIES = 256

    def match_chunk(
        self,
        queries: Sequence[Sequence[str]],
    ) -> list[MatchResult | None]:
        """Columnar batch variant of :meth:`match` for whole chunks.

        Each query is a ``(name[, state[, temperature[, dry_fresh]]])``
        sequence.  Cached keys are answered from the per-instance
        memo; the distinct uncached remainder is scored through
        :meth:`DescriptionIndex.batch_candidate_counts` — one
        chunk-wide postings/bincount pass instead of a dict walk per
        query — and the winners are selected by the same
        :meth:`_winner_from_tied` code as the per-line path.  Results
        *and* cache insertion order are bit-identical to mapping
        :meth:`match` over the queries (first-appearance order, so
        FIFO eviction behaves identically).
        """
        results: list[MatchResult | None] = [None] * len(queries)
        cache = self._cache
        order: list[tuple] = []  # (key, name, state, temp, df), distinct
        positions: dict[tuple, list[int]] = {}
        for pos, query in enumerate(queries):
            name, state, temperature, dry_fresh = (
                tuple(query) + ("", "", "")
            )[:4]
            key = (
                name.lower(), state.lower(),
                temperature.lower(), dry_fresh.lower(),
            )
            cached = cache.get(key, _UNCACHED)
            if cached is not _UNCACHED:
                results[pos] = cached
                continue
            group = positions.get(key)
            if group is not None:
                group.append(pos)
                continue
            positions[key] = [pos]
            order.append((key, name, state, temperature, dry_fresh))

        for begin in range(0, len(order), self._CHUNK_QUERIES):
            batch = order[begin:begin + self._CHUNK_QUERIES]
            parts = [
                self._query_parts(name, state, temperature, dry_fresh)
                for (_, name, state, temperature, dry_fresh) in batch
            ]
            counted = self._index.batch_candidate_counts(
                [(words, name_words or None) for (words, name_words, _) in parts]
            )
            for (key, *_), (words, _, raw_pref), (indices, counts) in zip(
                batch, parts, counted
            ):
                result = None
                if words:
                    result = self._best_from_arrays(
                        words, raw_pref, indices, counts
                    )
                cache[key] = result
                for pos in positions[key]:
                    results[pos] = result
        return results

    def _best_from_arrays(
        self,
        query: frozenset[str],
        raw_pref: bool,
        indices,
        counts,
    ) -> MatchResult | None:
        """:meth:`_best_match` over precomputed candidate arrays.

        *indices*/*counts* are the aligned arrays from
        :meth:`DescriptionIndex.batch_candidate_counts`.  Scores use
        the same int-over-int float64 divisions as the dict path
        (NumPy's elementwise true divide is the identical IEEE
        operation), and the score-tied leaders go through the shared
        :meth:`_winner_from_tied`, so the selected match is
        bit-identical.
        """
        if len(indices) == 0:
            return None
        config = self._config
        n_query = len(query)
        if config.use_modified_jaccard:
            best_overlap = int(counts.max())
            best_score = best_overlap / n_query
            if best_score < config.min_score:
                return None
            tied = [int(i) for i in indices[counts == best_overlap]]
        else:
            word_counts = self._index.word_counts_array()[indices]
            scores = counts / (n_query + word_counts - counts)
            best_score = float(scores.max())
            if best_score < config.min_score:
                return None
            tied = [int(i) for i in indices[scores == best_score]]
        return self._winner_from_tied(tied, query, raw_pref, best_score)

    def _match_uncached(
        self, name: str, state: str, temperature: str, dry_fresh: str
    ) -> MatchResult | None:
        query, name_words, raw_pref = self._query_parts(
            name, state, temperature, dry_fresh
        )
        if not query:
            return None
        return self._best_match(query, name_words, raw_pref)

    def _best_match(
        self,
        query: frozenset[str],
        name_words: frozenset[str],
        raw_pref: bool,
    ) -> MatchResult | None:
        """Single-winner fast path: overlap counts first, then full
        scoring (priority, raw flag) only for the score-tied leaders.

        Selects exactly the candidate :meth:`_selection_key` ranks
        first — the score comparison is monotone in the overlap count
        for modified Jaccard and uses the identical float division for
        vanilla, and the leaders' tie-break keys replicate the
        remaining ordering.
        """
        index = self._index
        counts = index.candidate_counts(
            query, required=name_words or None
        )
        if not counts:
            return None
        config = self._config
        n_query = len(query)
        if config.use_modified_jaccard:
            best_overlap = max(counts.values())
            best_score = best_overlap / n_query
            if best_score < config.min_score:
                return None
            tied = [i for i, c in counts.items() if c == best_overlap]
        else:
            word_count = index.word_count
            best_score = -1.0
            tied = []
            for i, count in counts.items():
                score = count / (n_query + word_count(i) - count)
                if score > best_score:
                    best_score = score
                    tied = [i]
                elif score == best_score:
                    tied.append(i)
            if best_score < config.min_score:
                return None
        return self._winner_from_tied(tied, query, raw_pref, best_score)

    def _winner_from_tied(
        self,
        tied: list[int],
        query: frozenset[str],
        raw_pref: bool,
        best_score: float,
    ) -> MatchResult:
        """Resolve the score-tied leaders to one :class:`MatchResult`.

        Shared by :meth:`_best_match` and the columnar
        :meth:`match_chunk` path.  The tie-break key ends in the
        description index — a strict total order — so the order of
        *tied* never affects the winner.
        """
        config = self._config
        descriptions = self._descriptions
        if len(tied) == 1:
            win = tied[0]
            desc = descriptions[win]
            matched = query & desc.words
            priority = (
                sum(desc.term_priority[w] for w in matched) / len(matched)
            )
            win_raw = raw_pref and desc.has_raw
        else:
            priority_on = config.priority_tiebreak
            best_key: tuple | None = None
            win, matched, priority, win_raw = -1, frozenset(), 0.0, False
            for i in tied:
                desc = descriptions[i]
                overlap = query & desc.words
                mean_priority = (
                    sum(desc.term_priority[w] for w in overlap)
                    / len(overlap)
                )
                raw = raw_pref and desc.has_raw
                key = (
                    (mean_priority, not raw, i)
                    if priority_on
                    else (not raw, i)
                )
                if best_key is None or key < best_key:
                    best_key = key
                    win, matched, priority, win_raw = (
                        i, overlap, mean_priority, raw,
                    )
        return MatchResult(
            food=self._foods[win],
            score=best_score,
            priority=priority,
            db_index=win,
            query_words=query,
            matched_words=frozenset(matched),
            raw_added=win_raw,
        )

    def _candidates(
        self,
        query: frozenset[str],
        name_words: frozenset[str],
        raw_pref: bool,
    ) -> list[MatchResult]:
        """Score every index candidate — shared by match/top_matches.

        A candidate must share at least one word with the NAME itself:
        state/temperature words alone ("diced" matching "Babyfood,
        apples, dices, toddler" for "bacon, diced") never constitute a
        match — hence ``required=name_words`` seeding the posting walk.
        """
        config = self._config
        use_modified = config.use_modified_jaccard
        min_score = config.min_score
        n_query = len(query)
        index = self._index
        results: list[MatchResult] = []
        for db_index, overlap in index.candidate_matches(
            query, required=name_words or None
        ).items():
            n_overlap = len(overlap)
            if use_modified:
                # modified_jaccard(query, B) with |A∩B| = n_overlap
                score = n_overlap / n_query
            else:
                # vanilla_jaccard via |A∪B| = |A| + |B| - |A∩B|
                score = n_overlap / (
                    n_query + index.word_count(db_index) - n_overlap
                )
            if score < min_score:
                continue
            desc = self._descriptions[db_index]
            term_priority = desc.term_priority
            priority = (
                sum(term_priority[w] for w in overlap) / n_overlap
            )
            results.append(
                MatchResult(
                    food=self._foods[db_index],
                    score=score,
                    priority=priority,
                    db_index=db_index,
                    query_words=query,
                    matched_words=frozenset(overlap),
                    raw_added=raw_pref and desc.has_raw,
                )
            )
        return results

    def _selection_key(self) -> Callable[[MatchResult], tuple]:
        """Sort key for selection order: score, priority, raw, index.

        The heuristic-(g) raw preference sits between priority and
        index: at equal word overlap *and* equal term priority, an
        uncooked ingredient prefers the description that says "raw"
        ("fava beans" picks "Broadbeans (fava beans), mature seeds,
        raw" over the canned variant; "whole eggs" picks "Egg, whole,
        raw, fresh" over the hard-boiled entry).  Term priority stays
        ahead of it so "white sugar" resolves to term-1 "Sugars,
        granulated" rather than raw-but-term-2 "Egg, white, raw,
        fresh" (heuristic (h) before (g)).  The key is a strict total
        order (db_index breaks all remaining ties), so iteration order
        never affects the winner; :meth:`_best_match`'s tie-break loop
        replicates the same ordering.
        """
        if self._config.priority_tiebreak:
            return lambda r: (-r.score, r.priority, not r.raw_added, r.db_index)
        return lambda r: (-r.score, not r.raw_added, r.db_index)

    def top_matches(
        self,
        name: str,
        state: str = "",
        temperature: str = "",
        dry_fresh: str = "",
        k: int = 5,
    ) -> list[MatchResult]:
        """The *k* best-scoring candidates, in selection order.

        Useful for audits (the paper's manual validation of the 5,000
        most frequent ingredient+state pairs) and for debugging
        collisions.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        query, name_words, raw_pref = self._query_parts(
            name, state, temperature, dry_fresh
        )
        if not query:
            return []
        candidates = self._candidates(query, name_words, raw_pref)
        candidates.sort(key=self._selection_key())
        return candidates[:k]
