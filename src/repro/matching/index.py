"""Inverted-index candidate generation for the description matcher.

The seed matcher scored every USDA description against every query —
an O(|DB|) scan per ingredient line, with a fresh set intersection per
description.  At RecipeDB scale (millions of lines, §III) that scan is
the pipeline's hot loop.  :class:`DescriptionIndex` replaces it with a
classic inverted index built once per matcher:

    word -> posting list of description indices containing that word

plus per-description word counts (``len(B)``, the vanilla-Jaccard
denominator piece) and ``has_raw`` flags, so scoring a query only
touches descriptions that share at least one query word.

Exactness argument
------------------
Both similarity metrics the matcher uses are zero when ``A ∩ B`` is
empty, and the matcher additionally discards candidates whose overlap
misses the ingredient NAME words entirely.  Any description that can
score therefore shares at least one (name) word with the query — and
every such description appears in the posting list of that shared
word.  Walking the posting lists of the query words thus enumerates a
superset of all scoring candidates, and for each one accumulates the
exact intersection ``A ∩ B``: the integer counts feeding the Jaccard
ratios and the term-priority sums are identical to the linear scan's,
so scores, tie-breaks and winners are bit-identical (property-tested
in ``tests/test_matching_index.py``).

:func:`linear_candidate_matches` keeps the O(|DB|) reference
enumeration alive for verification and benchmarking.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.matching.preprocess import PreprocessedDescription


class _ColumnarPostings:
    """Flattened numpy view of the postings, for chunked counting.

    Built lazily on the first :meth:`DescriptionIndex.
    batch_candidate_counts` call (numpy stays off the plain import
    path): every posting list is concatenated into one int64 array
    with a start-offset table, and each word gets a dense id.  The
    arrays are read-only derived state — the dict postings remain the
    source of truth for the per-query path and for serialization.
    """

    __slots__ = ("word_ids", "flat", "starts", "word_counts", "n_desc")

    def __init__(
        self,
        postings: dict[str, tuple[int, ...]],
        word_counts: Sequence[int],
    ):
        import numpy as np

        self.word_ids: dict[str, int] = {}
        flat: list[int] = []
        starts: list[int] = [0]
        for word, indices in postings.items():
            self.word_ids[word] = len(starts) - 1
            flat.extend(indices)
            starts.append(len(flat))
        self.flat = np.asarray(flat, dtype=np.int64)
        self.starts = np.asarray(starts, dtype=np.int64)
        self.word_counts = np.asarray(word_counts, dtype=np.int64)
        self.n_desc = len(word_counts)


class DescriptionIndex:
    """Inverted index over preprocessed food descriptions."""

    def __init__(self, descriptions: Sequence[PreprocessedDescription]):
        postings: dict[str, list[int]] = {}
        for index, desc in enumerate(descriptions):
            for word in desc.words:
                postings.setdefault(word, []).append(index)
        # Posting lists are ascending by construction (descriptions are
        # enumerated in SR index order); tuples keep them immutable.
        self._postings: dict[str, tuple[int, ...]] = {
            word: tuple(indices) for word, indices in postings.items()
        }
        self._word_counts: tuple[int, ...] = tuple(
            len(d.words) for d in descriptions
        )
        self._has_raw: tuple[bool, ...] = tuple(
            d.has_raw for d in descriptions
        )
        self._columnar: _ColumnarPostings | None = None

    @classmethod
    def from_parts(
        cls,
        postings: dict[str, Sequence[int]],
        word_counts: Sequence[int],
        has_raw: Sequence[bool],
    ) -> "DescriptionIndex":
        """Reconstruct an index from :meth:`to_parts` output.

        Used by :mod:`repro.artifacts` to restore a snapshot without
        re-walking the descriptions.  The parts are trusted as-is (the
        artifact layer checksums them); a round trip through
        ``from_parts(*index.to_parts())`` is equal to the original.
        """
        index = cls.__new__(cls)
        index._postings = {
            word: tuple(indices) for word, indices in postings.items()
        }
        index._word_counts = tuple(word_counts)
        index._has_raw = tuple(bool(flag) for flag in has_raw)
        index._columnar = None
        return index

    def to_parts(
        self,
    ) -> tuple[dict[str, tuple[int, ...]], tuple[int, ...], tuple[bool, ...]]:
        """The index's full state: (postings, word counts, raw flags)."""
        return dict(self._postings), self._word_counts, self._has_raw

    def __len__(self) -> int:
        """Number of indexed descriptions."""
        return len(self._word_counts)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed words."""
        return len(self._postings)

    def postings(self, word: str) -> tuple[int, ...]:
        """Description indices containing *word* (ascending; () if none)."""
        return self._postings.get(word, ())

    def word_count(self, index: int) -> int:
        """``len(B)`` for description *index* (vanilla-Jaccard term)."""
        return self._word_counts[index]

    def has_raw(self, index: int) -> bool:
        """Whether description *index* contains the literal word "raw"."""
        return self._has_raw[index]

    def candidate_counts(
        self,
        query: frozenset[str],
        required: frozenset[str] | None = None,
    ) -> dict[int, int]:
        """``|A ∩ B|`` per description worth scoring (fast-path variant).

        Same candidate set as :meth:`candidate_matches` but accumulates
        only overlap *counts* — all either similarity metric needs —
        so the single-best ``match()`` path defers materializing the
        matched-word sets to the handful of score-tied leaders.
        """
        postings = self._postings
        counts: dict[int, int] = {}
        get = counts.get
        if required is not None:
            seeds = required if required <= query else required & query
            if not seeds:
                return counts
            for word in seeds:
                for index in postings.get(word, ()):
                    counts[index] = get(index, 0) + 1
            for word in query:
                if word in seeds:
                    continue
                for index in postings.get(word, ()):
                    count = get(index)
                    if count is not None:
                        counts[index] = count + 1
        else:
            for word in query:
                for index in postings.get(word, ()):
                    counts[index] = get(index, 0) + 1
        return counts

    def batch_candidate_counts(
        self,
        queries: Sequence[tuple[frozenset[str], frozenset[str] | None]],
    ) -> list[tuple["object", "object"]]:
        """Chunked :meth:`candidate_counts` over many queries at once.

        Each ``(query, required)`` pair gets back ``(indices, counts)``
        — two aligned int64 arrays, *indices* the candidate description
        ids in ascending order and *counts* the exact ``|A ∩ B|``
        integers :meth:`candidate_counts` would produce for them.  The
        whole chunk's seed words are resolved against the flattened
        postings in one pass: every posting hit lands in a single
        ``np.bincount`` with a per-query offset (query ``q`` owns slots
        ``[q*n_desc, (q+1)*n_desc)``), and a second bincount tops up
        the non-seed query words.  Candidates are rows with at least
        one seed hit — identical to the dict walk's seeding rule, so
        the counts (and everything scored from them) are bit-identical.
        """
        import numpy as np

        columnar = self._columnar
        if columnar is None:
            columnar = _ColumnarPostings(self._postings, self._word_counts)
            self._columnar = columnar
        word_ids = columnar.word_ids
        flat = columnar.flat
        starts = columnar.starts
        n_desc = columnar.n_desc

        seed_segments: list = []
        extra_segments: list = []
        active: list[bool] = []
        for q, (query, required) in enumerate(queries):
            if required is not None:
                seeds = required if required <= query else required & query
            else:
                seeds = query
            if not seeds:
                active.append(False)
                continue
            active.append(True)
            base = q * n_desc
            for word in seeds:
                wid = word_ids.get(word)
                if wid is not None:
                    seed_segments.append(
                        flat[starts[wid]:starts[wid + 1]] + base
                    )
            if seeds is not query:
                for word in query:
                    if word in seeds:
                        continue
                    wid = word_ids.get(word)
                    if wid is not None:
                        extra_segments.append(
                            flat[starts[wid]:starts[wid + 1]] + base
                        )

        size = len(queries) * n_desc
        empty = np.empty(0, dtype=np.int64)
        if seed_segments:
            seed_counts = np.bincount(
                np.concatenate(seed_segments), minlength=size
            ).reshape(len(queries), n_desc)
        else:
            return [(empty, empty) for _ in queries]
        extra_counts = None
        if extra_segments:
            extra_counts = np.bincount(
                np.concatenate(extra_segments), minlength=size
            ).reshape(len(queries), n_desc)

        out: list[tuple[object, object]] = []
        for q, is_active in enumerate(active):
            if not is_active:
                out.append((empty, empty))
                continue
            row = seed_counts[q]
            indices = np.nonzero(row)[0]
            counts = row[indices]
            if extra_counts is not None:
                counts = counts + extra_counts[q][indices]
            out.append((indices, counts))
        return out

    def word_counts_array(self):
        """``len(B)`` per description as an int64 array (lazy numpy)."""
        columnar = self._columnar
        if columnar is None:
            columnar = _ColumnarPostings(self._postings, self._word_counts)
            self._columnar = columnar
        return columnar.word_counts

    def candidate_matches(
        self,
        query: frozenset[str],
        required: frozenset[str] | None = None,
    ) -> dict[int, list[str]]:
        """``A ∩ B`` word lists for every description worth scoring.

        With *required* (the preprocessed NAME words), only
        descriptions sharing at least one required word are returned —
        the matcher's "state words alone never constitute a match"
        rule — and the posting walk is seeded from the (usually much
        rarer) required words before the remaining query words top up
        the overlap lists of the surviving candidates only.
        """
        postings = self._postings
        matched: dict[int, list[str]] = {}
        if required is not None:
            # Only required words *in the query* can appear in A ∩ B.
            seeds = required if required <= query else required & query
            if not seeds:
                return matched
            for word in seeds:
                for index in postings.get(word, ()):
                    matched.setdefault(index, []).append(word)
            for word in query:
                if word in seeds:
                    continue
                for index in postings.get(word, ()):
                    overlap = matched.get(index)
                    if overlap is not None:
                        overlap.append(word)
        else:
            for word in query:
                for index in postings.get(word, ()):
                    matched.setdefault(index, []).append(word)
        return matched


def linear_candidate_matches(
    descriptions: Sequence[PreprocessedDescription],
    query: frozenset[str],
    required: frozenset[str] | None = None,
) -> dict[int, list[str]]:
    """The seed O(|DB|) candidate enumeration, kept as a reference.

    Semantically equivalent to
    :meth:`DescriptionIndex.candidate_matches`; used by the
    equivalence property tests and by ``bench_throughput.py`` to
    measure the index's speedup against the original scan.
    """
    matched: dict[int, list[str]] = {}
    for index, desc in enumerate(descriptions):
        overlap = query & desc.words
        if not overlap:
            continue
        if required is not None and not (overlap & required):
            continue
        matched[index] = list(overlap)
    return matched
