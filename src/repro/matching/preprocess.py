"""Word-set preprocessing shared by both sides of the match (§II-B).

Order of operations (identical for ingredient phrases and USDA
descriptions, which is what makes the negation trick work):

1. tokenize to lower-cased alphabetic words (hyphens split),
2. rewrite negation words/affixes to explicit ``not`` (heuristic (f)),
3. remove stop words (``not`` is deliberately not a stop word),
4. lemmatize — nouns by default; past participles fall back to the
   verb lemma so "salted" (from "unsalted" -> "not salted") meets the
   description side's "salt" ("Butter, without salt" -> "not salt").

Descriptions additionally carry *term priorities*: the 1-based index of
the comma-separated term each word first appears in (heuristic (a):
earlier terms matter more; heuristic (h) uses these to break ties).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.lemmatizer import WordNetStyleLemmatizer, default_lemmatizer
from repro.text.negation import rewrite_negations
from repro.text.stopwords import STOP_WORDS
from repro.text.tokenize import word_tokens

#: Participle suffixes that trigger the verb-lemma fallback.
_PARTICIPLE_SUFFIXES = ("ed", "ing")


def canonical_word(
    word: str,
    lemmatizer: WordNetStyleLemmatizer | None = None,
    cache: dict[str, str] | None = None,
) -> str:
    """Lemmatize one word the way the matcher expects.

    Noun lemma first; if that leaves a participle untouched, use the
    verb lemma so both "salted"/"salt" sides normalize identically.

    *cache* memoizes word -> lemma; the caller owns it and must scope
    it to one lemmatizer (the matcher keeps one per instance so each
    distinct token is lemmatized once per matcher lifetime).
    """
    if cache is not None:
        hit = cache.get(word)
        if hit is not None:
            return hit
    lem = lemmatizer or default_lemmatizer()
    noun = lem.lemmatize(word, "n")
    if noun != word.lower():
        result = noun
    elif word.lower().endswith(_PARTICIPLE_SUFFIXES):
        result = lem.lemmatize(word, "v")
    else:
        result = noun
    if cache is not None:
        cache[word] = result
    return result


def preprocess_words(
    text: str,
    lemmatizer: WordNetStyleLemmatizer | None = None,
    cache: dict[str, str] | None = None,
) -> list[str]:
    """Full preprocessing returning an ordered token list (may repeat).

    >>> preprocess_words("unsalted butter")
    ['not', 'salt', 'butter']
    >>> preprocess_words("Butter, without salt")
    ['butter', 'not', 'salt']
    """
    words = word_tokens(text)
    words = rewrite_negations(words)
    out: list[str] = []
    for word in words:
        if word in STOP_WORDS:
            continue
        out.append(canonical_word(word, lemmatizer, cache))
    return out


def preprocess_word_set(
    text: str, lemmatizer: WordNetStyleLemmatizer | None = None
) -> frozenset[str]:
    """Preprocessed words as a set (the Jaccard operand)."""
    return frozenset(preprocess_words(text, lemmatizer))


@dataclass(frozen=True, slots=True)
class PreprocessedDescription:
    """A USDA description ready for matching.

    Attributes
    ----------
    words:
        The preprocessed word set B.
    term_priority:
        word -> 1-based index of the comma term the word first occurs
        in ("Butter, whipped, with salt": butter->1, whip->2, salt->3).
    has_raw:
        Whether the literal word "raw" occurs in the description
        (heuristic (g)'s bonus-word provision).
    """

    words: frozenset[str]
    term_priority: dict[str, int]
    has_raw: bool


def preprocess_description(
    description: str,
    lemmatizer: WordNetStyleLemmatizer | None = None,
    cache: dict[str, str] | None = None,
) -> PreprocessedDescription:
    """Preprocess a comma-separated USDA food description."""
    terms = [t.strip() for t in description.split(",") if t.strip()]
    words: set[str] = set()
    priority: dict[str, int] = {}
    for index, term in enumerate(terms, start=1):
        for word in preprocess_words(term, lemmatizer, cache):
            words.add(word)
            priority.setdefault(word, index)
    return PreprocessedDescription(
        words=frozenset(words),
        term_priority=priority,
        has_raw="raw" in words,
    )
