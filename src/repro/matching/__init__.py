"""Closest-description annotation via string similarity (paper §II-B).

The matcher maps an NER-extracted ingredient name (plus its STATE,
TEMP and DRY/FRESH entities) to a USDA-SR food description using the
paper's modified Jaccard index and heuristics (a)–(i).
"""

from repro.matching.index import DescriptionIndex, linear_candidate_matches
from repro.matching.jaccard import modified_jaccard, vanilla_jaccard
from repro.matching.matcher import DescriptionMatcher, MatcherConfig
from repro.matching.preprocess import preprocess_description, preprocess_words
from repro.matching.types import MatchResult

__all__ = [
    "modified_jaccard",
    "vanilla_jaccard",
    "DescriptionIndex",
    "linear_candidate_matches",
    "DescriptionMatcher",
    "MatcherConfig",
    "preprocess_description",
    "preprocess_words",
    "MatchResult",
]
