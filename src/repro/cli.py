"""Command-line interface.

Subcommands::

    python -m repro estimate --servings 4 "2 cups flour" "1 tsp salt"
    python -m repro parse "1 small onion , finely chopped"
    python -m repro match "red lentils" --state rinsed --explain
    python -m repro explain "1 garlic" --context "2 cloves garlic , minced"
    python -m repro generate --recipes 5 --out corpus.jsonl
    python -m repro batch corpus.jsonl --workers 4 --jsonl --reasons
    python -m repro batch corpus.jsonl --workers 4 --run-dir runs/
    python -m repro batch --resume runs/run-20260807-.../
    python -m repro runs list runs/
    python -m repro build-artifact pipeline.artifact
    python -m repro serve --port 8080 --workers 2 --artifact pipeline.artifact
    python -m repro tables

``explain`` renders one line's full pipeline provenance — NER tags,
description candidates, every §II-C resolution strategy with its
reason code.  ``batch`` runs the two-phase corpus protocol;
``--workers N`` (N > 1) fans it out through the sharded multiprocess
engine, ``--jsonl`` streams the corpus with bounded memory and
``--reasons`` appends the corpus reason-code breakdown (Figure 2's
name-vs-full gap by cause).  ``serve`` stands up the
long-lived HTTP JSON API (``/v1/estimate``, ``/v1/estimate_batch``,
``/v1/match``, ``/v1/parse``, ``/healthz``, ``/metrics`` — see
``docs/api.md``) on a warm shared estimator.  ``build-artifact``
captures everything expensive to construct into one checksummed
snapshot file; ``batch``/``serve`` ``--artifact`` then start every
process — coordinator and sharded workers alike — from that snapshot
instead of rebuilding (see ``docs/operations.md``).

``batch --run-dir ROOT`` makes the run **durable** (:mod:`repro.runs`):
a fresh ``ROOT/<run-id>/`` directory gets a manifest binding corpus,
database and config, a crash-safe chunk journal, and the run's
dead-letter report.  ``batch --resume RUN_DIR`` continues a killed run
from its journal — replaying finished chunks, executing only the
missing ones — with output bit-identical to an uninterrupted run.
SIGINT/SIGTERM exit with code :data:`EXIT_INTERRUPTED` after flushing
the report (the journal is always already on disk); ``repro runs
list``/``show`` inspect run directories.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path

from repro.core.coverage import ReasonTally
from repro.core.estimator import STATUS_FULL, NutritionEstimator
from repro.core.explain import explain_line
from repro.matching.explain import explain_match
from repro.pipeline import EstimatorSpec, ShardedCorpusEstimator
from repro.pipeline.engine import (
    DEFAULT_CHUNK_DEADLINE_S,
    DEFAULT_MAX_CHUNK_RETRIES,
)
from repro.recipedb.corpus import (
    iter_recipes_jsonl,
    load_recipes_jsonl,
    save_recipes_jsonl,
)
from repro.deadletter import REPORT_NAME, write_report_jsonl
from repro.recipedb.generator import GeneratorConfig, RecipeGenerator
from repro.runs import (
    RunError,
    RunManifest,
    iter_run_dirs,
    mark_interrupted,
    new_run_id,
    run_summary,
)
from repro.service import ServiceConfig, serve
from repro.service.state import (
    DEFAULT_FRAGMENT_CACHE_CAP,
    DEFAULT_RESPONSE_CACHE_CAP,
)
from repro.eval.tables import (
    render_table_i,
    render_table_ii,
    render_table_iii,
    render_table_iv,
)


def _cmd_estimate(args: argparse.Namespace) -> int:
    estimator = NutritionEstimator()
    recipe = estimator.estimate_recipe(args.phrases, servings=args.servings)
    for item in recipe.ingredients:
        description = item.match.description if item.match else "(unmatched)"
        print(f"{item.parsed.text[:46]:48} {item.grams:8.1f} g "
              f"{item.calories:8.1f} kcal  {description[:44]}")
    print()
    for key, value in recipe.per_serving.rounded().items():
        print(f"{key:18} {value:10.2f} per serving")
    return 0


def _cmd_parse(args: argparse.Namespace) -> int:
    estimator = NutritionEstimator()
    for phrase in args.phrases:
        parsed = estimator.parse(phrase)
        print(phrase)
        for token, tag in zip(parsed.tokens, parsed.tags):
            print(f"  {token:20} {tag}")
        print(f"  -> name={parsed.name!r} state={parsed.state!r} "
              f"qty={parsed.quantity!r} unit={parsed.unit!r} "
              f"temp={parsed.temperature!r} df={parsed.dry_fresh!r} "
              f"size={parsed.size!r}")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    estimator = NutritionEstimator()
    if args.explain:
        explanation = explain_match(
            estimator.matcher, args.name, args.state, k=args.top)
        print(explanation.render())
        return 0 if explanation.winner else 1
    result = estimator.matcher.match(args.name, args.state)
    if result is None:
        print("UNMATCHED")
        return 1
    print(f"{result.description}  (score {result.score:.3f}, "
          f"NDB {result.food.ndb_no})")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Render one line's full pipeline provenance."""
    if args.top < 0:
        print(f"error: --top must be >= 0, got {args.top}")
        return 2
    estimator = NutritionEstimator()
    explanation = explain_line(
        estimator, args.phrase, context=args.context, k=args.top
    )
    print(explanation.render())
    return 0 if explanation.estimate.status == STATUS_FULL else 1


def _spec_from_args(args: argparse.Namespace) -> EstimatorSpec:
    """Estimator spec for commands that accept ``--artifact``."""
    artifact = getattr(args, "artifact", None)
    return EstimatorSpec(artifact_path=artifact or None)


#: Exit code for a batch run stopped by SIGINT/SIGTERM after flushing
#: its journal and dead-letter report.  Distinct from crashes (which
#: the fault harness exits with 70, EX_SOFTWARE): 75 is EX_TEMPFAIL —
#: "try again", which for a durable run means ``batch --resume``.
EXIT_INTERRUPTED = 75


class _Interrupted(Exception):
    """SIGINT/SIGTERM arrived; carries the signal number."""

    def __init__(self, signum: int):
        super().__init__(signum)
        self.signum = signum


def _raise_interrupted(signum, frame):  # noqa: ARG001
    raise _Interrupted(signum)


def _cmd_batch(args: argparse.Namespace) -> int:
    """Estimate a whole JSONL corpus through the batch pipeline."""
    if args.passes < 1:
        print(f"error: --passes must be >= 1, got {args.passes}")
        return 2
    if args.chunk_deadline < 0:
        print(
            "error: --chunk-deadline must be >= 0 (0 disables), got "
            f"{args.chunk_deadline}"
        )
        return 2
    if args.chunk_deadline == 0:
        args.chunk_deadline = None
    if args.max_chunk_retries < 0:
        print(
            f"error: --max-chunk-retries must be >= 0, got "
            f"{args.max_chunk_retries}"
        )
        return 2

    # Durable-run plumbing: --run-dir starts a fresh run in its own
    # ROOT/<run-id>/ directory; --resume continues an existing one,
    # defaulting corpus path and config from the run's manifest so
    # `repro batch --resume RUN_DIR` alone is a complete invocation.
    run_dir: Path | None = None
    resume = False
    if args.resume:
        run_dir = Path(args.resume)
        resume = True
        manifest = RunManifest.load(run_dir)
        if args.path is None:
            args.path = manifest.corpus["path"]
        if args.workers is None:
            args.workers = manifest.config.get("workers", 1)
        if args.chunk_size is None:
            args.chunk_size = manifest.config.get("chunk_size", 512)
        if not args.artifact:
            args.artifact = manifest.database.get("artifact_path") or ""
        if not args.strict and not manifest.config.get("quarantine", True):
            args.strict = True
        if not args.no_dedup and not manifest.config.get("dedup", True):
            args.no_dedup = True
    elif args.run_dir:
        run_dir = Path(args.run_dir) / new_run_id()
    if args.path is None:
        print("error: a corpus path is required (or --resume RUN_DIR)")
        return 2
    if args.workers is None:
        args.workers = 1
    if args.chunk_size is None:
        args.chunk_size = 512
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}")
        return 2
    if args.chunk_size < 1:
        print(f"error: --chunk-size must be >= 1, got {args.chunk_size}")
        return 2

    spec = _spec_from_args(args)
    use_engine = args.workers > 1 or args.jsonl or run_dir is not None
    if use_engine and args.passes != 2:
        print(
            "note: the sharded corpus engine always runs the two-phase "
            f"corpus protocol; --passes {args.passes} is ignored"
        )

    def show(recipe, est) -> None:
        print(
            f"{recipe.title[:40]:42} {est.per_serving.calories:9.1f} "
            f"kcal/serving  {100 * est.fraction_fully_mapped:5.1f}% mapped"
        )

    n_recipes = 0
    lines = 0
    # Incremental fold, not a buffer: --reasons must not defeat the
    # bounded memory of the streaming engine path.
    reason_tally = ReasonTally() if args.reasons else None
    report = None
    if use_engine:
        # Sharded/streaming path: the engine traverses the file itself
        # (twice, bounded memory); recipes stream alongside for titles
        # and results print as they arrive.  Estimation is lazy here,
        # so the timer necessarily spans the consuming loop.
        quarantine = not args.strict
        engine = ShardedCorpusEstimator(
            spec,
            workers=args.workers,
            chunk_size=args.chunk_size,
            quarantine=quarantine,
            chunk_deadline_s=args.chunk_deadline,
            max_chunk_retries=args.max_chunk_retries,
            run_dir=run_dir,
            resume=resume,
            dedup=False if args.no_dedup else None,
        )
        recipe_stream = (
            iter_recipes_jsonl(args.path, on_error="skip")
            if quarantine
            else iter_recipes_jsonl(args.path)
        )
        if run_dir is not None:
            print(f"durable run directory: {run_dir}")
        # SIGINT/SIGTERM stop the run *resumably*: every journal frame
        # is already fsync'd, so the handlers only need to get the
        # dead-letter report out and stamp the manifest before exiting
        # with EXIT_INTERRUPTED.
        previous_handlers = {
            signum: signal.signal(signum, _raise_interrupted)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        start = time.perf_counter()
        try:
            for recipe, est in zip(
                recipe_stream,
                engine.iter_corpus_estimates(args.path),
            ):
                n_recipes += 1
                lines += len(est.ingredients)
                if reason_tally is not None:
                    reason_tally.add_recipe(est)
                show(recipe, est)
        except _Interrupted as exc:
            name = signal.Signals(exc.signum).name
            report = engine.last_report
            if run_dir is not None:
                if report is not None:
                    write_report_jsonl(
                        run_dir / REPORT_NAME,
                        report.dead_letters,
                        report.run_id or run_dir.name,
                    )
                try:
                    mark_interrupted(run_dir)
                except RunError:
                    pass  # stopped before the manifest existed
                print(
                    f"\ninterrupted ({name}); the journal is on disk — "
                    f"resume with:\n  repro batch --resume {run_dir}"
                )
            else:
                print(f"\ninterrupted ({name})")
            return EXIT_INTERRUPTED
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
            # Release the persistent worker pool and its shared-memory
            # artifact segment before the process reports results.
            engine.close()
        elapsed = time.perf_counter() - start
        mode = f"{args.workers} worker(s), two-phase corpus protocol"
        report = engine.last_report
        if run_dir is not None and report is not None:
            # The report lands on every completion — an empty file is
            # still a statement ("this run quarantined nothing") and
            # keeps clean-vs-resumed runs byte-diffable.
            write_report_jsonl(
                run_dir / REPORT_NAME,
                report.dead_letters,
                report.run_id or run_dir.name,
            )
    else:
        # In-memory path: the same two-phase corpus protocol as the
        # engine (identical results at any --workers), timed without
        # the printing.  --passes 1 keeps the incremental single-pass
        # behaviour.
        recipes = load_recipes_jsonl(args.path)
        estimator = spec.build()
        start = time.perf_counter()
        estimates = estimator.estimate_corpus(recipes, passes=args.passes)
        elapsed = time.perf_counter() - start
        for recipe, est in zip(recipes, estimates):
            n_recipes += 1
            lines += len(est.ingredients)
            if reason_tally is not None:
                reason_tally.add_recipe(est)
            show(recipe, est)
        mode = (
            "1 pass(es)" if args.passes == 1
            else "in-process, two-phase corpus protocol"
        )

    if n_recipes == 0:
        print("empty corpus")
        return 1
    rate = lines / elapsed if elapsed > 0 else float("inf")
    print(
        f"\n{n_recipes} recipes / {lines} ingredient lines "
        f"in {elapsed:.2f}s ({rate:.0f} lines/s, {mode})"
    )
    if report is not None and report.total_lines:
        collapse = (
            f"duplicate collapse: {report.total_lines} occurrences -> "
            f"{report.distinct_lines} distinct lines "
            f"({report.dedup_ratio:.2f}x)"
        )
        if not report.dedup:
            collapse += "  [dedup off: per-occurrence oracle]"
        print(collapse)
    if reason_tally is not None:
        print("\nreason-code breakdown:")
        print(reason_tally.breakdown().render())
    if report is not None:
        supervision = {
            k: v for k, v in report.counters().items()
            if k != "dead_lettered" and v
        }
        if supervision:
            summary = ", ".join(
                f"{name.replace('_', ' ')}: {value}"
                for name, value in supervision.items()
            )
            print(f"\nsupervision: {summary}")
        if report.run_dir is not None:
            print(
                f"\ndurable run {report.run_id}: "
                f"{report.executed_chunks} chunk(s) executed, "
                f"{report.replayed_chunks} replayed from journal "
                f"({report.run_dir})"
            )
        if report.dead_letters:
            print("\ndead-letter report:")
            print(report.dead_letters.render())
    return 0


def _cmd_runs_list(args: argparse.Namespace) -> int:
    """One line per run directory under the given root."""
    run_dirs = iter_run_dirs(args.root)
    if not run_dirs:
        print(f"no run directories under {args.root}")
        return 1
    for path in run_dirs:
        info = run_summary(path)
        journal = info["journal"]
        planned = journal["planned_chunks"]
        frames = journal["records"]
        progress = f"collect {frames['collect']}"
        if planned is not None:
            progress += f"/{planned}"
        progress += f", fallback {frames['fallback']}"
        torn = ", torn tail" if journal["torn_bytes"] else ""
        print(f"{info['run_id']:44} {info['status']:12} {progress}{torn}")
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    """Full manifest + journal summary of one run, as JSON."""
    print(json.dumps(run_summary(args.run_dir), indent=2, sort_keys=True))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = RecipeGenerator(config=GeneratorConfig(seed=args.seed))
    recipes = generator.generate(args.recipes)
    if args.out:
        save_recipes_jsonl(recipes, args.out)
        print(f"wrote {len(recipes)} recipes to {args.out}")
    else:
        for recipe in recipes:
            print(f"# {recipe.title} (serves {recipe.servings})")
            for item in recipe.ingredients:
                print(f"  {item.text}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived HTTP service (blocking; Ctrl-C to stop)."""
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_cap=args.cache_cap,
            fragment_cache_cap=args.fragment_cache_cap,
            spec=_spec_from_args(args),
            max_body_bytes=args.max_body_bytes,
            request_timeout_s=(
                args.request_timeout if args.request_timeout > 0 else None
            ),
            max_concurrent=args.max_concurrent,
            max_queue=args.max_queue,
            procs=args.procs,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    return serve(config, ready_file=args.ready_file or None)


def _cmd_build_artifact(args: argparse.Namespace) -> int:
    """Capture a ready estimator into a build-once artifact file."""
    from repro.artifacts import load_artifact, save_artifact

    tagger = None
    if args.tagger == "perceptron":
        if args.train_phrases < 1:
            print(f"error: --train-phrases must be >= 1, "
                  f"got {args.train_phrases}")
            return 2
        if args.epochs < 1:
            print(f"error: --epochs must be >= 1, got {args.epochs}")
            return 2
        from repro.ner.perceptron import AveragedPerceptronTagger
        from repro.recipedb.generator import RecipeGenerator as _Gen

        print(
            f"training averaged perceptron "
            f"({args.train_phrases} phrases, {args.epochs} epochs, "
            f"seed {args.seed}) ...",
            flush=True,
        )
        start = time.perf_counter()
        generator = _Gen(config=GeneratorConfig(seed=args.seed))
        phrases = [
            item.tagged
            for item in generator.generate_phrases(args.train_phrases)
        ]
        tagger = AveragedPerceptronTagger(seed=args.seed)
        tagger.train(phrases, epochs=args.epochs)
        print(f"trained in {time.perf_counter() - start:.1f}s")

    start = time.perf_counter()
    estimator = NutritionEstimator(tagger=tagger)
    built_s = time.perf_counter() - start
    n_bytes = save_artifact(args.out, estimator)
    meta = load_artifact(args.out).meta
    print(
        f"wrote {args.out}: {n_bytes} bytes, format v{meta['format']}, "
        f"{meta['foods']} foods, {meta['vocabulary_words']} vocabulary "
        f"words, tagger={meta['tagger']} "
        f"(estimator built in {built_s * 1000:.0f} ms)"
    )
    print(f"serve from it:  repro serve --artifact {args.out}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    for title, render in (
        ("Table I — NER tag extraction", render_table_i),
        ("Table II — USDA-SR description examples", render_table_ii),
        ("Table III — modified vs vanilla Jaccard", render_table_iii),
        ("Table IV — ingredient and unit relations", render_table_iv),
    ):
        print(f"== {title} ==")
        print(render())
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nutritional profile estimation in cooking recipes "
                    "(Kalra et al., ICDE 2020 reproduction)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            '  repro estimate --servings 4 "2 cups flour" "1 tsp salt"\n'
            '  repro explain "1 garlic" --context "2 cloves garlic , minced"\n'
            "  repro generate --recipes 200 --out corpus.jsonl\n"
            "  repro batch corpus.jsonl --workers 4 --jsonl --reasons\n"
            "  repro batch corpus.jsonl --workers 4 --run-dir runs/\n"
            "  repro batch --resume runs/run-20260807-120000-00042-abc123\n"
            "  repro runs list runs/\n"
            "  repro build-artifact pipeline.artifact\n"
            "  repro serve --port 8080 --workers 2 --artifact pipeline.artifact\n"
            "\n"
            "see README.md for a tour and docs/api.md for the HTTP API"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    estimate = sub.add_parser("estimate", help="estimate a recipe's profile")
    estimate.add_argument("phrases", nargs="+", help="ingredient phrases")
    estimate.add_argument("--servings", type=int, default=1)
    estimate.set_defaults(func=_cmd_estimate)

    parse = sub.add_parser("parse", help="show NER extraction for phrases")
    parse.add_argument("phrases", nargs="+")
    parse.set_defaults(func=_cmd_parse)

    match = sub.add_parser("match", help="match a name to a description")
    match.add_argument("name")
    match.add_argument("--state", default="")
    match.add_argument("--explain", action="store_true")
    match.add_argument("--top", type=int, default=5)
    match.set_defaults(func=_cmd_match)

    explain = sub.add_parser(
        "explain",
        help="show one line's full pipeline provenance (tags, match "
             "candidates, every resolution strategy, reason code)")
    explain.add_argument("phrase", help="ingredient phrase to explain")
    explain.add_argument(
        "--context", action="append", default=[], metavar="LINE",
        help="corpus line feeding the most-frequent-unit statistics "
             "(repeatable; default: no corpus statistics)")
    explain.add_argument("--top", type=int, default=5,
                         help="description candidates to show (default 5)")
    explain.set_defaults(func=_cmd_explain)

    batch = sub.add_parser(
        "batch", help="estimate a JSONL corpus via the batch pipeline")
    batch.add_argument("path", nargs="?", default=None,
                       help="corpus written by `generate --out` "
                            "(optional with --resume: defaults to the "
                            "manifest's corpus path)")
    batch.add_argument("--passes", type=int, default=2,
                       help=">=2 runs the two-phase corpus protocol "
                            "(default); 1 runs the incremental single "
                            "pass (in-process path only)")
    batch.add_argument("--workers", type=int, default=None,
                       help="worker processes for the sharded corpus "
                            "engine (>1 enables it; default 1, or the "
                            "manifest's count with --resume)")
    batch.add_argument("--chunk-size", type=int, default=None, metavar="N",
                       help="distinct ingredient lines per pool chunk "
                            "(default 512, or the manifest's size with "
                            "--resume — resume requires a matching size)")
    durability = batch.add_mutually_exclusive_group()
    durability.add_argument("--run-dir", default="", metavar="ROOT",
                            help="make the run durable: create "
                                 "ROOT/<run-id>/ holding a manifest, a "
                                 "crash-safe chunk journal and the "
                                 "dead-letter report (implies the "
                                 "engine path)")
    durability.add_argument("--resume", default="", metavar="RUN_DIR",
                            help="resume the durable run in RUN_DIR: "
                                 "verify its manifest, replay journaled "
                                 "chunks, execute only missing ones — "
                                 "output is bit-identical to an "
                                 "uninterrupted run")
    batch.add_argument("--no-dedup", action="store_true",
                       help="disable coordinator-side duplicate collapse "
                            "(engine path): feed every line occurrence "
                            "through estimation individually — the slow "
                            "parity oracle; results are bit-identical")
    batch.add_argument("--jsonl", action="store_true",
                       help="stream the corpus (bounded memory) through "
                            "the corpus engine instead of loading it")
    batch.add_argument("--artifact", default="",
                       help="start coordinator and workers from a "
                            "build-artifact snapshot instead of "
                            "rebuilding the pipeline per process")
    batch.add_argument("--strict", action="store_true",
                       help="abort on malformed corpus lines or "
                            "estimator errors instead of quarantining "
                            "them to a dead-letter report (engine path "
                            "only; the default quarantines)")
    batch.add_argument("--chunk-deadline", type=float,
                       default=DEFAULT_CHUNK_DEADLINE_S, metavar="SECONDS",
                       help="per-chunk budget before a worker is "
                            "presumed hung and replaced (0 disables; "
                            f"default {DEFAULT_CHUNK_DEADLINE_S:.0f}s)")
    batch.add_argument("--max-chunk-retries", type=int,
                       default=DEFAULT_MAX_CHUNK_RETRIES, metavar="N",
                       help="re-dispatches allowed per chunk lost to a "
                            "crashed or hung worker (default "
                            f"{DEFAULT_MAX_CHUNK_RETRIES})")
    batch.add_argument("--reasons", action="store_true",
                       help="append the corpus reason-code breakdown "
                            "(Figure 2's name-vs-full gap by cause)")
    batch.set_defaults(func=_cmd_batch)

    serve_cmd = sub.add_parser(
        "serve", help="run the long-lived HTTP estimation service")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8080,
                           help="bind port; 0 picks a free one "
                                "(default 8080)")
    serve_cmd.add_argument("--workers", type=int, default=1,
                           help="worker processes for estimate_batch "
                                "fan-out through the sharded engine "
                                "(default 1: in-process)")
    serve_cmd.add_argument("--cache-cap", type=int,
                           default=DEFAULT_RESPONSE_CACHE_CAP,
                           help="response cache entry cap (default "
                                f"{DEFAULT_RESPONSE_CACHE_CAP})")
    serve_cmd.add_argument("--fragment-cache-cap", type=int,
                           default=DEFAULT_FRAGMENT_CACHE_CAP, metavar="N",
                           help="serialized-estimate fragment cache entry "
                                "cap (default "
                                f"{DEFAULT_FRAGMENT_CACHE_CAP})")
    serve_cmd.add_argument("--request-timeout", type=float, default=30.0,
                           metavar="SECONDS",
                           help="per-request estimation deadline; "
                                "exceeding it returns HTTP 504 "
                                "(0 disables; default 30)")
    serve_cmd.add_argument("--max-body-bytes", type=int, default=1 << 20,
                           metavar="BYTES",
                           help="reject request bodies larger than this "
                                "with HTTP 413 before reading them "
                                "(default 1 MiB)")
    serve_cmd.add_argument("--max-concurrent", type=int, default=8,
                           metavar="N",
                           help="estimation requests running at once; "
                                "more wait in the admission queue "
                                "(default 8)")
    serve_cmd.add_argument("--max-queue", type=int, default=32, metavar="N",
                           help="waiting requests beyond --max-concurrent "
                                "before new ones are shed with HTTP 503 "
                                "+ Retry-After (default 32)")
    serve_cmd.add_argument("--artifact", default="",
                           help="start the service (and any workers) "
                                "from a build-artifact snapshot for an "
                                "instant cold start")
    serve_cmd.add_argument("--procs", type=int, default=1, metavar="N",
                           help="pre-fork server processes sharing the "
                                "port via SO_REUSEPORT, each with its "
                                "own event loop and warm estimator "
                                "(default 1: single process)")
    serve_cmd.add_argument("--ready-file", default="", metavar="PATH",
                           help="write 'host port' to PATH once the "
                                "service is accepting (how scripts "
                                "discover a --port 0 bind)")
    serve_cmd.set_defaults(func=_cmd_serve)

    build_artifact = sub.add_parser(
        "build-artifact",
        help="capture the pipeline into a build-once artifact file")
    build_artifact.add_argument(
        "out", help="output path (convention: *.artifact)")
    build_artifact.add_argument(
        "--tagger", choices=("rule", "perceptron"), default="rule",
        help="NER tagger to capture: the deterministic rule tagger "
             "(default) or an averaged perceptron trained on a "
             "generated corpus")
    build_artifact.add_argument(
        "--train-phrases", type=int, default=3000,
        help="training phrases for --tagger perceptron (default 3000)")
    build_artifact.add_argument(
        "--epochs", type=int, default=5,
        help="training epochs for --tagger perceptron (default 5)")
    build_artifact.add_argument(
        "--seed", type=int, default=13,
        help="corpus + shuffle seed for --tagger perceptron "
             "(default 13)")
    build_artifact.set_defaults(func=_cmd_build_artifact)

    generate = sub.add_parser("generate", help="generate a synthetic corpus")
    generate.add_argument("--recipes", type=int, default=10)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--out", default="")
    generate.set_defaults(func=_cmd_generate)

    runs = sub.add_parser(
        "runs", help="inspect durable batch run directories")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="one status line per run directory under ROOT")
    runs_list.add_argument(
        "root", help="directory holding run directories (a run "
                     "directory itself also works)")
    runs_list.set_defaults(func=_cmd_runs_list)
    runs_show = runs_sub.add_parser(
        "show", help="full manifest + journal summary of one run (JSON)")
    runs_show.add_argument("run_dir", help="the run directory to inspect")
    runs_show.set_defaults(func=_cmd_runs_show)

    tables = sub.add_parser("tables", help="print the paper's tables")
    tables.set_defaults(func=_cmd_tables)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    from repro.artifacts import ArtifactError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ArtifactError, FileNotFoundError, RunError) as exc:
        print(f"error: {exc}")
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
