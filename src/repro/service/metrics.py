"""Per-endpoint request metrics for ``/metrics``.

Counters plus a bounded latency reservoir per endpoint, guarded by one
lock (observations are a few dict/deque operations, far cheaper than
the requests they describe).  ``snapshot()`` renders the JSON document
``/metrics`` returns; the field layout is documented in
``docs/api.md`` and asserted by the service tests, so treat it as a
public schema.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from collections.abc import Iterable

#: Latency samples kept per endpoint.  Percentiles describe the recent
#: window, not service lifetime, so a long-running instance reflects
#: current behaviour; 1024 samples bound memory regardless of uptime.
RESERVOIR_SIZE = 1024


def percentile(sorted_samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1,
                      round(fraction * (len(sorted_samples) - 1))))
    return sorted_samples[rank]


class _EndpointMetrics:
    """Counters and latency reservoir for one endpoint."""

    __slots__ = ("requests", "errors", "cache_hits", "latencies")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.cache_hits = 0
        self.latencies: deque[float] = deque(maxlen=RESERVOIR_SIZE)

    def snapshot(self) -> dict:
        samples = sorted(self.latencies)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (
                self.cache_hits / self.requests if self.requests else 0.0
            ),
            "latency_ms": {
                "count": len(samples),
                "p50": round(percentile(samples, 0.50), 3),
                "p95": round(percentile(samples, 0.95), 3),
                "p99": round(percentile(samples, 0.99), 3),
                "max": round(samples[-1], 3) if samples else 0.0,
            },
        }


class ConnectionStats:
    """Connection-level counters for the event-loop server.

    Incremented by the loop thread; bare ``int`` increments are atomic
    under the GIL, so reads from other threads (``metrics_snapshot``
    in tests) see consistent-enough values without a lock.  The
    protocol test suite asserts on these to prove adversarial clients
    (slowloris, mid-body disconnects, malformed requests) are closed
    and accounted for rather than leaking.
    """

    __slots__ = (
        "opened",
        "closed",
        "io_timeouts",
        "idle_closed",
        "protocol_errors",
        "aborted",
        "pipelined",
    )

    def __init__(self) -> None:
        self.opened = 0  # connections accepted
        self.closed = 0  # connections fully torn down
        self.io_timeouts = 0  # closed mid-request (slowloris et al.)
        self.idle_closed = 0  # keep-alive connections reaped idle
        self.protocol_errors = 0  # closed after a malformed request
        self.aborted = 0  # client vanished mid-request/mid-response
        self.pipelined = 0  # requests served beyond a batch's first

    def snapshot(self) -> dict:
        return {
            "opened": self.opened,
            "active": self.opened - self.closed,
            "io_timeouts": self.io_timeouts,
            "idle_closed": self.idle_closed,
            "protocol_errors": self.protocol_errors,
            "aborted": self.aborted,
            "pipelined_requests": self.pipelined,
        }


class ServiceMetrics:
    """Thread-safe metrics registry for the whole service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._endpoints: dict[str, _EndpointMetrics] = {}
        # Per-reason-code line counters (resolution provenance).  The
        # vocabulary is the bounded reason-code set of
        # repro.core.resolution, so the registry cannot grow with
        # traffic.
        self._reasons: Counter[str] = Counter()
        self._reason_lines = 0

    def observe(
        self,
        endpoint: str,
        latency_s: float,
        *,
        error: bool = False,
        cache_hit: bool = False,
    ) -> None:
        """Record one handled request for *endpoint*."""
        with self._lock:
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                metrics = self._endpoints[endpoint] = _EndpointMetrics()
            metrics.requests += 1
            if error:
                metrics.errors += 1
            if cache_hit:
                metrics.cache_hits += 1
            metrics.latencies.append(latency_s * 1000.0)

    def observe_reasons(self, reasons: Iterable[str]) -> None:
        """Record the reason code of every estimated ingredient line.

        Called by the estimation endpoints with one reason per line of
        the request (cache hits skip the pipeline and therefore do not
        re-count).  ``/metrics`` exposes the tallies under ``reasons``.
        The iterable is tallied *before* taking the lock — a batch
        request can carry a million lines, and only the merge of the
        (bounded-vocabulary) local counter needs mutual exclusion.
        """
        tallied = Counter(reasons)
        if not tallied:
            return
        with self._lock:
            self._reasons.update(tallied)
            self._reason_lines += sum(tallied.values())

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    def total_requests(self) -> int:
        with self._lock:
            return sum(m.requests for m in self._endpoints.values())

    def snapshot(self) -> dict:
        """The ``/metrics`` response body (see docs/api.md)."""
        with self._lock:
            endpoints = {
                name: metrics.snapshot()
                for name, metrics in sorted(self._endpoints.items())
            }
            reasons = {
                "lines_total": self._reason_lines,
                "by_reason": dict(sorted(self._reasons.items())),
            }
        return {
            "uptime_s": round(self.uptime_s, 3),
            "requests_total": sum(e["requests"] for e in endpoints.values()),
            "errors_total": sum(e["errors"] for e in endpoints.values()),
            "cache_hits_total": sum(
                e["cache_hits"] for e in endpoints.values()
            ),
            "endpoints": endpoints,
            "reasons": reasons,
        }
