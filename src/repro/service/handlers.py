"""Endpoint routing and the request dispatch path.

One table (:data:`ENDPOINTS`) declares everything per endpoint —
method, validator, state method, cacheability, admission — and
:func:`dispatch` wraps it with everything common to every request:
method checking, payload validation, response caching, admission
control, per-request deadlines, metrics, and the typed-error contract
(any :class:`ServiceError` becomes its JSON envelope plus any headers
it carries, e.g. ``Retry-After`` on 503; anything else becomes a
generic 500 so tracebacks never leak to clients).

Cacheable endpoints (the five ``POST /v1/*`` ones — ``/v1/explain``
included, whose response is a pure function of its payload) are
looked up in / stored to the response cache as **serialized bytes**:
a hit skips validation-to-encoding entirely and the server writes the
bytes straight to the socket.  ``/healthz``, ``/readyz`` and
``/metrics`` are never cached.

The same five POST endpoints are the **admitted** ones: they do real
estimation work, so they pass through the
:class:`~repro.service.resilience.AdmissionController` (bounded
concurrency, bounded queue, 503 shed beyond that) and run under the
request :class:`~repro.service.resilience.Deadline`.  Introspection
endpoints bypass admission — health checks and metrics scrapes must
keep answering precisely when the service is saturated — and cache
hits bypass it too (a memcpy does not need a concurrency slot).
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.service import codec
from repro.service.errors import (
    DeadlineExceededError,
    InternalError,
    MethodNotAllowedError,
    NotFoundError,
    ServiceError,
)
from repro.service.resilience import Deadline
from repro.service.state import ServiceState

log = logging.getLogger("repro.service")


@dataclass(frozen=True, slots=True)
class Response:
    """What the HTTP layer writes back."""

    status: int
    body: bytes
    cache_hit: bool = False
    headers: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True, slots=True)
class Endpoint:
    """Declarative spec for one (method, path) route.

    ``validate`` turns the decoded JSON payload into a request object
    (``None`` for bodyless GET endpoints, whose ``invoke`` receives
    the raw payload); ``invoke`` calls the matching
    :class:`ServiceState` method with the request deadline.
    ``cacheable`` routes additionally get normalized-payload response
    caching and admission control in :func:`dispatch`.
    """

    validate: Callable | None
    invoke: Callable[[ServiceState, object, Deadline | None], dict]
    cacheable: bool = False


#: The single routing table: (method, path) -> endpoint spec.
ENDPOINTS: dict[tuple[str, str], Endpoint] = {
    ("GET", "/healthz"): Endpoint(
        validate=None, invoke=lambda state, _payload, _dl: state.healthz()
    ),
    ("GET", "/readyz"): Endpoint(
        validate=None, invoke=lambda state, _payload, _dl: state.readyz()
    ),
    ("GET", "/metrics"): Endpoint(
        validate=None,
        invoke=lambda state, _payload, _dl: state.metrics_snapshot(),
    ),
    ("POST", "/v1/estimate"): Endpoint(
        validate=codec.validate_estimate,
        invoke=lambda state, request, dl: state.estimate(request, dl),
        cacheable=True,
    ),
    ("POST", "/v1/estimate_batch"): Endpoint(
        validate=codec.validate_batch,
        invoke=lambda state, request, dl: state.estimate_batch(request, dl),
        cacheable=True,
    ),
    ("POST", "/v1/match"): Endpoint(
        validate=codec.validate_match,
        invoke=lambda state, request, _dl: state.match(request),
        cacheable=True,
    ),
    ("POST", "/v1/parse"): Endpoint(
        validate=codec.validate_parse,
        invoke=lambda state, request, _dl: state.parse(request),
        cacheable=True,
    ),
    ("POST", "/v1/explain"): Endpoint(
        validate=codec.validate_explain,
        invoke=lambda state, request, _dl: state.explain(request),
        cacheable=True,
    ),
}

_KNOWN_PATHS = frozenset(path for _, path in ENDPOINTS)


def _route(method: str, path: str) -> Endpoint:
    endpoint = ENDPOINTS.get((method, path))
    if endpoint is not None:
        return endpoint
    if path in _KNOWN_PATHS:
        allowed = tuple(sorted(m for m, p in ENDPOINTS if p == path))
        raise MethodNotAllowedError(
            f"{path} does not support {method}", allowed=allowed
        )
    raise NotFoundError(f"no such endpoint: {path}")


def dispatch_fast(
    state: ServiceState, method: str, path: str, payload
) -> Response | None:
    """Complete the request inline if it needs no estimation work.

    The event-loop server calls this on its loop thread.  Anything
    that finishes in microseconds is answered here — introspection
    endpoints, routing and validation errors, and response-cache hits
    — with metrics semantics identical to :func:`dispatch`.  A return
    of ``None`` means real estimation work is required: the caller
    must run the full :func:`dispatch` off the loop thread (the
    payload is re-validated there; validation is cheap next to the
    estimation it fronts), and **nothing** has been observed in the
    metrics registry yet.
    """
    metric_name = path if path in _KNOWN_PATHS else "(unknown)"
    started = time.perf_counter()
    try:
        endpoint = _route(method, path)
        if not endpoint.cacheable:
            body = codec.dumps_body(endpoint.invoke(state, payload, None))
            state.metrics.observe(metric_name, time.perf_counter() - started)
            return Response(200, body)
        request = endpoint.validate(payload)
        key = codec.cache_key(path, request)
        cached = state.cached_response(key)
        if cached is not None:
            state.metrics.observe(
                metric_name, time.perf_counter() - started, cache_hit=True
            )
            return Response(200, cached, cache_hit=True)
        return None
    except ServiceError as exc:
        state.metrics.observe(
            metric_name, time.perf_counter() - started, error=True
        )
        return Response(
            exc.status, codec.dumps_body(exc.to_body()), headers=exc.headers()
        )
    except Exception:
        log.exception("unhandled error in %s %s", method, path)
        state.metrics.observe(
            metric_name, time.perf_counter() - started, error=True
        )
        fallback = InternalError("internal server error")
        return Response(fallback.status, codec.dumps_body(fallback.to_body()))


def dispatch(state: ServiceState, method: str, path: str, payload) -> Response:
    """Handle one decoded request end to end.

    Never raises: every outcome — success, typed client error, shed,
    deadline, unexpected server fault — returns a :class:`Response`,
    and every outcome is recorded in the metrics registry under its
    endpoint path (unknown paths aggregate under ``(unknown)`` so a
    scanner cannot grow the registry without bound).
    """
    metric_name = path if path in _KNOWN_PATHS else "(unknown)"
    started = time.perf_counter()
    try:
        endpoint = _route(method, path)
        request = (
            payload if endpoint.validate is None else endpoint.validate(payload)
        )
        key: str | None = None
        if endpoint.cacheable:
            # The key is built from the *normalized* request, so
            # byte-different but equivalent payloads share one entry.
            key = codec.cache_key(path, request)
            cached = state.cached_response(key)
            if cached is not None:
                state.metrics.observe(
                    metric_name, time.perf_counter() - started, cache_hit=True
                )
                return Response(200, cached, cache_hit=True)
        timeout_s = state.config.request_timeout_s
        deadline = Deadline(timeout_s) if timeout_s is not None else None
        if endpoint.cacheable:
            with state.admission.admitted(deadline):
                body = codec.dumps_body(
                    endpoint.invoke(state, request, deadline)
                )
        else:
            body = codec.dumps_body(endpoint.invoke(state, request, deadline))
        if key is not None:
            state.store_response(key, body)
        state.metrics.observe(metric_name, time.perf_counter() - started)
        return Response(200, body)
    except ServiceError as exc:
        if isinstance(exc, DeadlineExceededError):
            state.note_deadline_exceeded()
        state.metrics.observe(
            metric_name, time.perf_counter() - started, error=True
        )
        return Response(
            exc.status, codec.dumps_body(exc.to_body()), headers=exc.headers()
        )
    except Exception:
        log.exception("unhandled error in %s %s", method, path)
        state.metrics.observe(
            metric_name, time.perf_counter() - started, error=True
        )
        fallback = InternalError("internal server error")
        return Response(fallback.status, codec.dumps_body(fallback.to_body()))
