"""Typed error responses for the HTTP service.

Every failure a client can cause maps to one :class:`ServiceError`
subclass carrying an HTTP status, a stable machine-readable ``code``
and a human-readable message.  The server serializes them uniformly::

    {"error": {"code": "invalid_request", "message": "...",
               "field": "recipes[3].servings"}}

so clients can branch on ``code`` (and ``field`` for validation
errors) without parsing prose.  Unexpected exceptions never leak
tracebacks: the server wraps them in a generic ``internal_error``.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for all typed service failures."""

    status: int = 500
    code: str = "internal_error"

    def __init__(self, message: str, *, field: str | None = None):
        super().__init__(message)
        self.message = message
        self.field = field

    def to_body(self) -> dict:
        """The JSON error envelope for this failure."""
        error: dict = {"code": self.code, "message": self.message}
        if self.field is not None:
            error["field"] = self.field
        return {"error": error}


class ValidationError(ServiceError):
    """Request payload failed schema validation (HTTP 400).

    ``field`` names the offending location in the payload using
    bracketed path syntax, e.g. ``recipes[3].ingredients[0]``.
    """

    status = 400
    code = "invalid_request"


class InvalidJSONError(ServiceError):
    """Request body is not valid JSON (HTTP 400)."""

    status = 400
    code = "invalid_json"


class NotFoundError(ServiceError):
    """No such endpoint path (HTTP 404)."""

    status = 404
    code = "not_found"


class MethodNotAllowedError(ServiceError):
    """Endpoint exists but not for this HTTP method (HTTP 405)."""

    status = 405
    code = "method_not_allowed"

    def __init__(self, message: str, *, allowed: tuple[str, ...] = ()):
        super().__init__(message)
        self.allowed = allowed

    def to_body(self) -> dict:
        body = super().to_body()
        if self.allowed:
            body["error"]["allowed"] = list(self.allowed)
        return body


class PayloadTooLargeError(ServiceError):
    """Request body exceeds the configured size cap (HTTP 413)."""

    status = 413
    code = "payload_too_large"


class InternalError(ServiceError):
    """Catch-all for unexpected server-side failures (HTTP 500)."""

    status = 500
    code = "internal_error"
