"""Typed error responses for the HTTP service.

Every failure a client can cause maps to one :class:`ServiceError`
subclass carrying an HTTP status, a stable machine-readable ``code``
and a human-readable message.  The server serializes them uniformly::

    {"error": {"code": "invalid_request", "message": "...",
               "field": "recipes[3].servings"}}

so clients can branch on ``code`` (and ``field`` for validation
errors) without parsing prose.  Unexpected exceptions never leak
tracebacks: the server wraps them in a generic ``internal_error``.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for all typed service failures."""

    status: int = 500
    code: str = "internal_error"

    def __init__(self, message: str, *, field: str | None = None):
        super().__init__(message)
        self.message = message
        self.field = field

    def to_body(self) -> dict:
        """The JSON error envelope for this failure."""
        error: dict = {"code": self.code, "message": self.message}
        if self.field is not None:
            error["field"] = self.field
        return {"error": error}

    def headers(self) -> tuple[tuple[str, str], ...]:
        """Extra response headers this failure carries (e.g.
        ``Retry-After``)."""
        return ()


class ValidationError(ServiceError):
    """Request payload failed schema validation (HTTP 400).

    ``field`` names the offending location in the payload using
    bracketed path syntax, e.g. ``recipes[3].ingredients[0]``.
    """

    status = 400
    code = "invalid_request"


class InvalidJSONError(ServiceError):
    """Request body is not valid JSON (HTTP 400)."""

    status = 400
    code = "invalid_json"


class NotFoundError(ServiceError):
    """No such endpoint path (HTTP 404)."""

    status = 404
    code = "not_found"


class MethodNotAllowedError(ServiceError):
    """Endpoint exists but not for this HTTP method (HTTP 405)."""

    status = 405
    code = "method_not_allowed"

    def __init__(self, message: str, *, allowed: tuple[str, ...] = ()):
        super().__init__(message)
        self.allowed = allowed

    def to_body(self) -> dict:
        body = super().to_body()
        if self.allowed:
            body["error"]["allowed"] = list(self.allowed)
        return body


class PayloadTooLargeError(ServiceError):
    """Request body exceeds the configured size cap (HTTP 413)."""

    status = 413
    code = "payload_too_large"


class HeadersTooLargeError(ServiceError):
    """Request line + headers exceed the protocol cap (HTTP 431).

    Raised by the event-loop server's incremental parser before the
    header terminator arrives, so a drip-feeding client cannot make
    the server buffer unbounded header bytes.
    """

    status = 431
    code = "headers_too_large"


class ServiceOverloadedError(ServiceError):
    """Request shed by admission control (HTTP 503).

    Carries a ``Retry-After`` header so well-behaved clients back off
    instead of hammering a saturated service.
    """

    status = 503
    code = "overloaded"

    def __init__(self, message: str, *, retry_after_s: int = 1):
        super().__init__(message)
        self.retry_after_s = retry_after_s

    def to_body(self) -> dict:
        body = super().to_body()
        body["error"]["retry_after_s"] = self.retry_after_s
        return body

    def headers(self) -> tuple[tuple[str, str], ...]:
        return (("Retry-After", str(self.retry_after_s)),)


class ServiceNotReadyError(ServiceError):
    """``/readyz`` answer while draining or saturated (HTTP 503)."""

    status = 503
    code = "not_ready"


class DeadlineExceededError(ServiceError):
    """Request exceeded its server-side time budget (HTTP 504)."""

    status = 504
    code = "deadline_exceeded"


class InternalError(ServiceError):
    """Catch-all for unexpected server-side failures (HTTP 500)."""

    status = 500
    code = "internal_error"
