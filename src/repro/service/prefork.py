"""Pre-fork multi-process serving: ``repro serve --procs N``.

One parent supervises ``N`` worker processes.  Each worker runs its
own event-loop :class:`~repro.service.server.NutritionService` bound
to the **same** port via ``SO_REUSEPORT`` — the kernel load-balances
incoming connections across the listening sockets, so there is no
userspace proxy hop and no shared accept lock.  Every worker restores
the same artifact (or builds the same spec), so responses are
byte-identical regardless of which worker answers; ``worker_id``/
``pid`` in ``/healthz`` and ``/metrics`` say which one did.

Port 0 needs coordination: the workers must agree on one kernel-chosen
port *before* any of them binds.  The parent resolves it by binding a
``SO_REUSEPORT`` placeholder socket that **never listens** — only
sockets in LISTEN state receive connections, so the placeholder just
reserves the number (and keeps it reserved across worker restarts).

Supervision: a worker that dies *before* becoming ready is a
deployment failure (bad artifact, port conflict) and tears the whole
service down; a ready worker that dies unexpectedly is respawned with
the same ``worker_id``.  Graceful shutdown forwards SIGTERM to every
worker, and each drains independently (readyz flips 503 → listener
closes → in-flight requests finish → exit); the parent joins them all
before exiting 0.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import os
import signal
import socket
import threading
import time

from repro.service.state import ServiceConfig

log = logging.getLogger("repro.service")

#: How long the parent waits for all workers to report ready.
READY_TIMEOUT_S = 60.0
#: Drain budget per worker on SIGTERM, plus parent-side join margin.
WORKER_JOIN_TIMEOUT_S = 8.0
#: Supervision poll cadence.
POLL_INTERVAL_S = 0.2


def _reserve_port(config: ServiceConfig) -> tuple[socket.socket, int]:
    """Bind (never listen) a placeholder to pin down the port."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((config.host, config.port))
    return sock, sock.getsockname()[1]


def _worker_main(config: ServiceConfig, ready_queue) -> None:
    """One worker process: serve until SIGTERM/SIGINT, then drain."""
    # Imported here so a spawn-context child pays it in the child.
    from repro.service.server import NutritionService

    stop = threading.Event()

    def _request_stop(signum, _frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    try:
        service = NutritionService(config)
        service.start()
    except Exception as exc:
        log.exception("worker %d failed to start", config.worker_id)
        ready_queue.put(("failed", config.worker_id, os.getpid(), str(exc)))
        raise SystemExit(1)
    ready_queue.put(("ready", config.worker_id, os.getpid(), ""))
    stop.wait()
    service.shutdown()
    raise SystemExit(0)


class _Supervisor:
    """Parent-side worker bookkeeping."""

    def __init__(self, config: ServiceConfig, port: int):
        self.config = config
        self.port = port
        self.ctx = multiprocessing.get_context()
        self.ready_queue = self.ctx.SimpleQueue()
        self.workers: dict[int, multiprocessing.process.BaseProcess] = {}
        self.respawns = 0

    def worker_config(self, worker_id: int) -> ServiceConfig:
        return dataclasses.replace(
            self.config,
            port=self.port,
            reuse_port=True,
            worker_id=worker_id,
        )

    def spawn(self, worker_id: int) -> None:
        process = self.ctx.Process(
            target=_worker_main,
            args=(self.worker_config(worker_id), self.ready_queue),
            name=f"repro-serve-worker-{worker_id}",
        )
        process.start()
        self.workers[worker_id] = process

    def wait_all_ready(self) -> None:
        """Block until every worker reports ready (or raise)."""
        deadline = time.monotonic() + READY_TIMEOUT_S
        ready: set[int] = set()
        while len(ready) < len(self.workers):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"workers not ready after {READY_TIMEOUT_S}s: "
                    f"missing {sorted(set(self.workers) - ready)}"
                )
            status, worker_id, pid, detail = self._poll_ready(remaining)
            if status == "ready":
                ready.add(worker_id)
                log.info("worker %d ready (pid %d)", worker_id, pid)
            else:
                raise RuntimeError(
                    f"worker {worker_id} (pid {pid}) failed to start: "
                    f"{detail}"
                )

    def _poll_ready(self, timeout_s: float):
        """One ready-queue message, polling for dead-before-ready."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if not self.ready_queue.empty():
                return self.ready_queue.get()
            for worker_id, process in self.workers.items():
                if not process.is_alive() and self.ready_queue.empty():
                    return (
                        "failed",
                        worker_id,
                        process.pid or -1,
                        f"exited with code {process.exitcode} before ready",
                    )
            time.sleep(POLL_INTERVAL_S)
        raise RuntimeError("timed out waiting for worker readiness")

    def drain_ready_queue(self) -> None:
        while not self.ready_queue.empty():
            self.ready_queue.get()

    def supervise_once(self) -> None:
        """Respawn any ready worker that died unexpectedly."""
        for worker_id, process in list(self.workers.items()):
            if process.is_alive():
                continue
            log.warning(
                "worker %d (pid %s) exited unexpectedly with code %s; "
                "respawning",
                worker_id,
                process.pid,
                process.exitcode,
            )
            self.respawns += 1
            self.spawn(worker_id)
        # Respawned workers report ready on the shared queue; nothing
        # waits on those messages, so keep it from growing unbounded.
        self.drain_ready_queue()

    def terminate_all(self) -> None:
        for process in self.workers.values():
            if process.is_alive() and process.pid is not None:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except ProcessLookupError:  # pragma: no cover
                    pass

    def join_all(self) -> None:
        deadline = time.monotonic() + WORKER_JOIN_TIMEOUT_S
        for process in self.workers.values():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for process in self.workers.values():
            if process.is_alive():  # pragma: no cover - drain overrun
                log.warning(
                    "worker %s did not drain in time; killing", process.name
                )
                process.kill()
                process.join(timeout=2.0)


def serve_prefork(
    config: ServiceConfig, *, ready_file: str | None = None
) -> int:
    """Blocking entry point for ``--procs N`` serving (N >= 2)."""
    placeholder, port = _reserve_port(config)
    supervisor = _Supervisor(config, port)
    stop = threading.Event()

    def _request_stop(signum, _frame) -> None:
        log.info("received signal %d, shutting down workers", signum)
        stop.set()

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        for worker_id in range(config.procs):
            supervisor.spawn(worker_id)
        supervisor.wait_all_ready()
        print(
            f"repro serve listening on http://{config.host}:{port} "
            f"(procs={config.procs}, workers={config.workers}, "
            f"cache_cap={config.cache_cap})",
            flush=True,
        )
        if ready_file is not None:
            from repro.service.server import _write_ready_file

            _write_ready_file(ready_file, config.host, port)
        while not stop.is_set():
            supervisor.supervise_once()
            stop.wait(POLL_INTERVAL_S)
    except RuntimeError as exc:
        log.error("pre-fork startup failed: %s", exc)
        print(f"repro serve failed: {exc}", flush=True)
        supervisor.terminate_all()
        supervisor.join_all()
        return 1
    finally:
        placeholder.close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    supervisor.terminate_all()
    supervisor.join_all()
    print("repro serve stopped", flush=True)
    return 0
