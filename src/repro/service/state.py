"""Long-lived service state: warm estimator, response cache, metrics.

One :class:`ServiceState` lives for the whole service process.  It
pays the pipeline's cold start exactly once — USDA database load,
description preprocessing, inverted-index build — by constructing a
single shared :class:`NutritionEstimator` from an
:class:`EstimatorSpec` at startup, then serves every request from
that warm instance.

Request semantics are the **two-phase corpus protocol** (see
``docs/architecture.md``): each request is treated as a self-contained
corpus, so responses depend only on the request payload — never on
request ordering or service history.  That determinism is what makes
response caching sound: a :class:`BoundedCache` maps normalized
request payloads to serialized response bytes, and a hit skips the
pipeline entirely.

Estimation runs under one lock.  The pipeline is pure Python and
CPU-bound, so the GIL serializes the work anyway; the lock just keeps
the estimator's internal memo caches and fallback table coherent
under ``ThreadingHTTPServer``'s thread-per-connection model.  Cache
hits and ``/healthz``/``/metrics`` never take it.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import threading
from collections import Counter
from dataclasses import dataclass, field

from repro import __version__, faults
from repro.core.estimator import NutritionEstimator
from repro.core.explain import explain_line
from repro.deadletter import DeadLetterLog
from repro.pipeline.engine import (
    RunReport,
    ShardedCorpusEstimator,
    _columnar_enabled,
    _dedup_enabled,
)
from repro.pipeline.errors import PipelineError
from repro.pipeline.spec import EstimatorSpec
from repro.service import codec
from repro.service.errors import ServiceNotReadyError
from repro.service.metrics import ConnectionStats, ServiceMetrics
from repro.service.resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
)
from repro.units.fallback import snapshot_digest
from repro.utils import BoundedCache

log = logging.getLogger("repro.service")

#: Default entry cap for the response cache.
DEFAULT_RESPONSE_CACHE_CAP = 4096

#: Default entry cap for the serialized-estimate fragment cache.  One
#: entry is one ingredient line's rendered JSON (typically a few
#: hundred bytes), keyed by (stats token, line text); real corpora
#: reuse a small distinct-line vocabulary heavily (Zipf), so a cap in
#: the tens of thousands covers the working set in a few MB.
DEFAULT_FRAGMENT_CACHE_CAP = 1 << 15

#: Bodies larger than this are never cached.  Single-recipe responses
#: are a few KB, but batch responses reach MBs (5000 recipes are
#: allowed per request) — an entry-count cap alone would let the cache
#: grow to gigabytes.  Together the two caps bound cache memory at
#: ``cache_cap * MAX_CACHEABLE_BODY_BYTES`` ≈ 1 GB worst case, and in
#: practice tens of MB (huge cacheable bodies are rare: a repeated
#: giant batch re-estimates instead, which is the cheap case anyway
#: once the estimator memos are warm).
MAX_CACHEABLE_BODY_BYTES = 256 * 1024

#: Below this many distinct ingredient lines a batch request runs on
#: the in-process estimator even when ``workers > 1`` — process-pool
#: start-up costs more than estimating a small table.
ENGINE_MIN_DISTINCT_LINES = 256


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to stand up a service.

    Attributes
    ----------
    host / port:
        Bind address.  ``port=0`` asks the OS for a free port (the
        integration tests and in-process examples use this).
    workers:
        Worker processes for ``/v1/estimate_batch`` fan-out through
        the sharded corpus engine.  ``1`` (default) runs every request
        on the in-process estimator.
    cache_cap:
        Entry cap for the response cache (FIFO eviction).
    fragment_cache_cap:
        Entry cap for the serialized-estimate fragment cache: rendered
        per-ingredient JSON bytes keyed by (stats token, line text),
        reused across requests to skip re-serialization (``repro serve
        --fragment-cache-cap``).
    spec:
        The estimator configuration the service builds once at
        startup; picklable, so the same spec also parameterizes the
        engine's worker processes.  With ``spec.artifact_path`` set
        (``repro serve --artifact``) that build is a snapshot load —
        the service and every worker cold-start in milliseconds.
    max_body_bytes:
        Request bodies above this size are rejected with HTTP 413
        before the body is read (``repro serve --max-body-bytes``).
    request_timeout_s:
        Per-request time budget for the estimation endpoints; a
        request that exceeds it gets HTTP 504 (``deadline_exceeded``)
        at the next cooperative checkpoint.  ``None`` disables
        deadlines.
    max_concurrent / max_queue:
        Admission control for the estimation endpoints:
        ``max_concurrent`` requests estimate at once, ``max_queue``
        more wait, the rest are shed with HTTP 503 + ``Retry-After``.
    breaker_threshold / breaker_cooldown_s:
        Circuit breaker around the sharded batch engine: after
        ``breaker_threshold`` consecutive engine failures, batch
        requests degrade to the in-process estimator (bit-identical
        results) for ``breaker_cooldown_s`` before a probe retries
        the engine.
    engine_min_lines:
        Distinct-line threshold below which a batch skips the engine
        even with ``workers > 1`` (pool fan-out costs more than small
        tables are worth).  Exposed mainly so resilience tests can
        force the engine path with small corpora.
    procs:
        Pre-fork server processes (``repro serve --procs``).  ``1``
        serves from the single event-loop process; above that the
        parent forks ``procs`` workers that share the port via
        ``SO_REUSEPORT``, each restoring the same artifact.
    worker_id:
        Which pre-fork worker this process is (0-based; ``0`` for a
        single-process service).  Surfaced in ``/healthz`` and
        ``/metrics`` so load harnesses can aggregate per-process
        counters instead of silently reading one worker's share.
    reuse_port:
        Bind the listening socket with ``SO_REUSEPORT`` so sibling
        worker processes can bind the same port (set by the pre-fork
        parent on worker configs; rarely useful directly).
    io_timeout_s:
        Receive budget for one request's bytes: a connection that has
        started a request (or has an unflushed response) but makes no
        progress for this long is closed — the slowloris bound.
    idle_timeout_s:
        How long a keep-alive connection may sit between requests
        before the server closes it.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 1
    cache_cap: int = DEFAULT_RESPONSE_CACHE_CAP
    fragment_cache_cap: int = DEFAULT_FRAGMENT_CACHE_CAP
    spec: EstimatorSpec = field(default_factory=EstimatorSpec)
    max_body_bytes: int = 1 << 20
    request_timeout_s: float | None = 30.0
    max_concurrent: int = 8
    max_queue: int = 32
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    engine_min_lines: int = ENGINE_MIN_DISTINCT_LINES
    procs: int = 1
    worker_id: int = 0
    reuse_port: bool = False
    io_timeout_s: float = 10.0
    idle_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.cache_cap < 1:
            raise ValueError(f"cache_cap must be >= 1: {self.cache_cap}")
        if self.fragment_cache_cap < 1:
            raise ValueError(
                f"fragment_cache_cap must be >= 1: {self.fragment_cache_cap}"
            )
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port out of range: {self.port}")
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1: {self.max_body_bytes}"
            )
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError(
                "request_timeout_s must be positive or None: "
                f"{self.request_timeout_s}"
            )
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1: {self.max_concurrent}"
            )
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0: {self.max_queue}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1: {self.breaker_threshold}"
            )
        if self.breaker_cooldown_s <= 0:
            raise ValueError(
                f"breaker_cooldown_s must be positive: "
                f"{self.breaker_cooldown_s}"
            )
        if self.engine_min_lines < 1:
            raise ValueError(
                f"engine_min_lines must be >= 1: {self.engine_min_lines}"
            )
        if self.procs < 1:
            raise ValueError(f"procs must be >= 1: {self.procs}")
        if self.worker_id < 0:
            raise ValueError(f"worker_id must be >= 0: {self.worker_id}")
        if self.io_timeout_s <= 0:
            raise ValueError(
                f"io_timeout_s must be positive: {self.io_timeout_s}"
            )
        if self.idle_timeout_s <= 0:
            raise ValueError(
                f"idle_timeout_s must be positive: {self.idle_timeout_s}"
            )


class ServiceState:
    """Shared state behind every endpoint handler."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.metrics = ServiceMetrics()
        # Connection-level counters, populated by the event-loop
        # server (stay zero under the legacy threading server).
        self.connections = ConnectionStats()
        # The warm shared estimator — the service's whole reason to
        # exist.  Built eagerly so the first request is already fast.
        self._estimator = config.spec.build()
        # Database half of the fragment-cache token, computed once at
        # startup.  A rendered ingredient fragment is a pure function
        # of (line text, frozen stats table, database); the token
        # binds the last two, so an artifact swap (new process, new
        # fingerprint) can never replay stale bytes.
        from repro.artifacts import database_fingerprint

        self._db_epoch = database_fingerprint(self._estimator.database)
        # For an artifact-backed spec, pin the engine (and through it
        # every pool worker) to the exact database the warm estimator
        # was built from: if the artifact file is replaced under a
        # running service, batch fan-out must fail with a typed
        # mismatch rather than let /v1/estimate and /v1/estimate_batch
        # silently answer from different databases.  The pin is the
        # fingerprint string, not the food list — one initargs string
        # per pool spawn, worker-side comparison is a string equality.
        engine_spec = config.spec
        if engine_spec.artifact_path is not None:
            engine_spec = dataclasses.replace(
                engine_spec, expected_fingerprint=self._db_epoch
            )
        self._engine: ShardedCorpusEstimator | None = (
            ShardedCorpusEstimator(
                engine_spec,
                workers=config.workers,
                quarantine=True,
                # Capture the pool's shared-memory bootstrap payload
                # from the estimator the service already built.
                estimator_supplier=lambda: self._estimator,
            )
            if config.workers > 1
            else None
        )
        if self._engine is not None:
            # The persistent warm pool: spawn the workers now (shared-
            # memory bootstrap included) so the first
            # /v1/estimate_batch request fans out to warm processes
            # instead of paying the pool start-up inline.  The pool
            # lives until close() and is reused by every batch.
            self._engine.ensure_pool()
        # Resilience machinery (see repro.service.resilience).
        self.admission = AdmissionController(
            config.max_concurrent, config.max_queue
        )
        self.breaker = CircuitBreaker(
            config.breaker_threshold, config.breaker_cooldown_s
        )
        #: Set by the server at the start of graceful shutdown;
        #: flips /readyz to 503 while in-flight requests drain.
        self.draining = False
        self._resilience_lock = threading.Lock()
        self._pipeline_counters: Counter[str] = Counter()
        self._degraded_batches = 0
        self._deadline_exceeded = 0
        self._estimator_lock = threading.Lock()
        # Separate lock for engine fan-out: the pool never touches the
        # shared estimator, so a large batch must not stall concurrent
        # estimate/match/parse traffic behind it.
        self._engine_lock = threading.Lock()
        self._cache_lock = threading.Lock()
        self._response_cache: BoundedCache[str, bytes] = BoundedCache(
            config.cache_cap
        )
        # Serialized-estimate byte cache: (stats token, line text) ->
        # rendered ingredient JSON.  Own lock — fragment probes happen
        # inside response assembly and must not contend with whole-
        # body response-cache traffic.
        self._fragment_lock = threading.Lock()
        self._fragment_cache: BoundedCache[tuple[str, str], bytes] = (
            BoundedCache(config.fragment_cache_cap)
        )

    @property
    def estimator(self) -> NutritionEstimator:
        """The warm shared estimator (tests and examples peek at it)."""
        return self._estimator

    def close(self) -> None:
        """Release the batch engine's persistent pool (idempotent).

        Called by the server at the end of graceful shutdown; also
        safe to call directly in tests that build a state by hand.
        The engine unlinks its shared-memory artifact segment here.
        """
        if self._engine is not None:
            self._engine.close()

    # ------------------------------------------------------------------
    # response cache

    def cached_response(self, key: str) -> bytes | None:
        with self._cache_lock:
            return self._response_cache.get(key)

    def store_response(self, key: str, body: bytes) -> None:
        if len(body) > MAX_CACHEABLE_BODY_BYTES:
            return
        with self._cache_lock:
            self._response_cache[key] = body

    def cache_info(self) -> dict:
        with self._cache_lock:
            return {
                "size": len(self._response_cache),
                "cap": self._response_cache.cap,
            }

    # ------------------------------------------------------------------
    # resilience accounting

    def absorb_report(self, report: RunReport | None) -> None:
        """Fold one engine :class:`RunReport` into /metrics counters."""
        if report is None:
            return
        with self._resilience_lock:
            self._pipeline_counters.update(report.counters())

    def note_dead_letters(self, count: int) -> None:
        if count:
            with self._resilience_lock:
                self._pipeline_counters["dead_lettered"] += count

    def note_degraded_batch(self) -> None:
        with self._resilience_lock:
            self._degraded_batches += 1

    def note_deadline_exceeded(self) -> None:
        with self._resilience_lock:
            self._deadline_exceeded += 1

    def resilience_snapshot(self) -> dict:
        with self._resilience_lock:
            pipeline = {
                "retries": self._pipeline_counters["retries"],
                "respawns": self._pipeline_counters["respawns"],
                "worker_crashes": self._pipeline_counters["worker_crashes"],
                "hung_workers": self._pipeline_counters["hung_workers"],
                "dead_lettered": self._pipeline_counters["dead_lettered"],
            }
            degraded = self._degraded_batches
            deadline_exceeded = self._deadline_exceeded
        return {
            "pipeline": pipeline,
            "admission": self.admission.snapshot(),
            "breaker": self.breaker.snapshot(),
            "degraded_batches": degraded,
            "deadline_exceeded_total": deadline_exceeded,
        }

    # ------------------------------------------------------------------
    # estimation endpoints

    def _checkpoint(self, deadline: Deadline | None, phase: str) -> None:
        """Fault-injection hook + cooperative deadline check."""
        plan = faults.active_plan()
        if plan is not None:
            plan.fire("service-estimate", 0)
        if deadline is not None:
            deadline.check(phase)

    def _local_table(
        self, counts: dict[str, int], deadline: Deadline | None
    ) -> tuple[dict, str]:
        """In-process table plus the run's frozen-stats digest.

        Honors ``REPRO_DEDUP=0`` by feeding the estimator one
        ``(text, 1)`` item per occurrence instead of the collapsed
        count table — the oracle the dedup parity tests compare
        service responses against, byte for byte.
        """
        self._checkpoint(deadline, "estimation")
        items: dict | list = counts
        if not _dedup_enabled():
            items = [
                (text, 1)
                for text, count in counts.items()
                for _ in range(count)
            ]
        quarantine = DeadLetterLog()
        with self._estimator_lock:
            table = self._estimator.corpus_estimate_table(
                items, quarantine=quarantine, columnar=_columnar_enabled()
            )
            digest = snapshot_digest(self._estimator.fallback.snapshot())
        self.note_dead_letters(len(quarantine))
        return table, digest

    def _estimate_table(
        self, counts: dict[str, int], deadline: Deadline | None = None
    ) -> tuple[dict, str]:
        """Distinct-line table -> final estimates, engine or in-process.

        Returns ``(table, stats_digest)`` — the digest of the run's
        frozen phase-boundary unit table, identical across the engine
        and in-process paths (exact-parity guarantee) and consumed as
        the statistics half of the fragment-cache token.

        Both paths run the identical two-phase corpus protocol, so the
        choice is invisible in the response (the engine's exact-parity
        guarantee).  The engine path fans out through the **persistent
        warm pool** spawned at startup (workers boot once from the
        shared-memory artifact segment and are reused by every batch);
        it only engages past ``config.engine_min_lines``, where fan-out
        beats the warm estimator, and runs under its own lock so a
        large batch never stalls single-recipe traffic.

        The engine path sits behind the circuit breaker: an engine
        failure (chunk retry budget exhausted, pool unusable, artifact
        mismatch on respawn) records a breaker failure and the request
        **degrades to the in-process estimator**, which returns the
        bit-identical table — the client sees a slower response, not
        an error.  With the breaker open, batches skip the failing
        fan-out entirely until the cooldown's half-open probe.
        """
        if (
            self._engine is not None
            and len(counts) >= self.config.engine_min_lines
        ):
            if self.breaker.allow():
                try:
                    self._checkpoint(deadline, "engine estimation")
                    with self._engine_lock:
                        table = self._engine.estimate_table(counts)
                        report = self._engine.last_report
                        digest = report.stats_digest or snapshot_digest({})
                except PipelineError:
                    # The fan-out *machinery* failed (chunk retry
                    # budget exhausted, pool unusable) — a transient
                    # capacity problem the in-process path does not
                    # share.  Degrade.  Anything else propagates:
                    # per-line estimation failures are quarantined
                    # inside the engine, so a non-PipelineError here is
                    # a deployment/config fault (e.g. a typed artifact
                    # mismatch on worker spawn) that degrading would
                    # only hide from the operator.
                    log.exception(
                        "sharded engine failed; degrading to in-process "
                        "estimation"
                    )
                    self.breaker.record_failure()
                    self.note_degraded_batch()
                else:
                    self.breaker.record_success()
                    self.absorb_report(report)
                    return table, digest
            else:
                self.note_degraded_batch()
        return self._local_table(counts, deadline)

    def _fragment_bytes(self, token: str, text: str, estimate) -> bytes:
        """Rendered JSON for one ingredient estimate, cached by token.

        The cache key binds the line text to the (database, frozen
        stats table) pair the estimate was computed under; under the
        same token a line's estimate — and therefore its bytes — is
        identical by the protocol's purity guarantee, so a hit skips
        ``json.dumps`` entirely.
        """
        key = (token, text)
        with self._fragment_lock:
            cached = self._fragment_cache.get(key)
        if cached is not None:
            return cached
        rendered = codec.dumps_ingredient_fragment(estimate)
        with self._fragment_lock:
            self._fragment_cache[key] = rendered
        return rendered

    def _render_recipe(
        self, texts: list[str], servings: float, table: dict, token: str
    ) -> bytes:
        """One recipe's response body, assembled from cached fragments.

        Byte-identical to serializing the monolithic dict (pinned by
        ``tests/test_fragment_cache.py``); the recipe head is always
        rendered fresh — aggregates vary per recipe — while the
        per-ingredient bodies come from the fragment cache.
        """
        recipe = NutritionEstimator.finish_recipe(
            [table[text] for text in texts], servings
        )
        return codec.assemble_recipe_estimate_bytes(
            recipe,
            [self._fragment_bytes(token, text, table[text]) for text in texts],
        )

    def estimate(
        self,
        request: codec.EstimateRequest,
        deadline: Deadline | None = None,
    ) -> bytes:
        """``/v1/estimate``: one recipe, always on the warm estimator.

        Returns the serialized response body, assembled from the
        fragment cache.
        """
        counts = dict(Counter(request.ingredients))
        table, digest = self._local_table(counts, deadline)
        self.metrics.observe_reasons(
            table[text].reason for text in request.ingredients
        )
        return self._render_recipe(
            request.ingredients,
            request.servings,
            table,
            f"{self._db_epoch}:{digest}",
        )

    def estimate_batch(
        self,
        request: codec.BatchRequest,
        deadline: Deadline | None = None,
    ) -> bytes:
        """``/v1/estimate_batch``: many recipes as one corpus.

        Corpus-level unit statistics (§II-C) are computed over the
        whole batch — exactly ``NutritionEstimator.estimate_corpus``
        over the same recipes.  With ``workers > 1`` and enough
        distinct lines the table fans out through the sharded engine
        (wire codec and all); results are bit-identical either way.
        Returns the serialized response body: per-ingredient JSON
        comes from the fragment cache (batches repeat lines heavily,
        so most of the body is assembled, not re-serialized).
        """
        counts = dict(
            Counter(
                text
                for recipe in request.recipes
                for text in recipe.ingredients
            )
        )
        table, digest = self._estimate_table(counts, deadline)
        if deadline is not None:
            deadline.check("response assembly")
        self.metrics.observe_reasons(
            table[text].reason
            for recipe in request.recipes
            for text in recipe.ingredients
        )
        token = f"{self._db_epoch}:{digest}"
        return codec.assemble_batch_bytes(
            [
                self._render_recipe(
                    recipe.ingredients, recipe.servings, table, token
                )
                for recipe in request.recipes
            ]
        )

    def match(self, request: codec.MatchRequest) -> dict:
        """``/v1/match``: closest USDA-SR description for a name."""
        with self._estimator_lock:
            matcher = self._estimator.matcher
            best = matcher.match(
                request.name,
                request.state,
                request.temperature,
                request.dry_fresh,
            )
            candidates = None
            if request.top > 0:
                candidates = matcher.top_matches(
                    request.name,
                    request.state,
                    request.temperature,
                    request.dry_fresh,
                    k=request.top,
                )
        body: dict = {
            "query": {
                "name": request.name,
                "state": request.state,
                "temperature": request.temperature,
                "dry_fresh": request.dry_fresh,
            },
            "match": None if best is None else codec.encode_match(best),
        }
        if candidates is not None:
            body["candidates"] = [codec.encode_match(c) for c in candidates]
        return body

    def parse(self, request: codec.ParseRequest) -> dict:
        """``/v1/parse``: NER entity extraction for one phrase."""
        with self._estimator_lock:
            parsed = self._estimator.parse(request.text)
        return codec.encode_parsed(parsed)

    def explain(self, request: codec.ExplainRequest) -> dict:
        """``/v1/explain``: full pipeline provenance for one phrase.

        Deterministic in the payload: the corpus-frequent-unit stage
        reads statistics collected from the request's ``context``
        lines only, never the warm estimator's live table (see
        :func:`repro.core.explain.explain_line`), which is what keeps
        the endpoint cacheable.
        """
        with self._estimator_lock:
            explanation = explain_line(
                self._estimator,
                request.text,
                context=request.context,
                k=request.top,
            )
        self.metrics.observe_reasons((explanation.estimate.reason,))
        return codec.encode_explanation(explanation)

    # ------------------------------------------------------------------
    # introspection endpoints

    def healthz(self) -> dict:
        """Liveness: cheap, always 200 while the process serves.

        Stays 200 even while draining or saturated — liveness answers
        "should the supervisor restart this process?", and the answer
        during a graceful drain is no.  Readiness (routability) is
        :meth:`readyz`.
        """
        return {
            "status": "ok",
            "version": __version__,
            "uptime_s": round(self.metrics.uptime_s, 3),
            "workers": self.config.workers,
            "procs": self.config.procs,
            "worker_id": self.config.worker_id,
            "pid": os.getpid(),
            "artifact": self.config.spec.artifact_path,
            "requests_total": self.metrics.total_requests(),
        }

    def readyz(self) -> dict:
        """Readiness: 200 only while new work should be routed here.

        503 (``not_ready``) while draining for shutdown, or while the
        admission queue is full — a load balancer honoring this stops
        sending traffic *before* requests start getting shed.
        """
        if self.draining:
            raise ServiceNotReadyError("service is draining for shutdown")
        admission = self.admission.snapshot()
        if admission["queued"] >= self.config.max_queue > 0:
            raise ServiceNotReadyError(
                "admission queue is full; new requests would be shed"
            )
        return {
            "status": "ready",
            "version": __version__,
            "admission": admission,
            "breaker": self.breaker.state,
        }

    def caches_snapshot(self) -> dict:
        """Hit/miss/eviction stats for every BoundedCache tier.

        The parse and matcher memos live inside the estimator; their
        counters are plain ints bumped under the estimator lock, and
        reading ints/lens is atomic, so the snapshot skips that lock —
        ``/metrics`` must answer even while a big batch holds it.
        """
        with self._cache_lock:
            response = self._response_cache.stats()
        with self._fragment_lock:
            fragment = self._fragment_cache.stats()
        return {
            "parse": self._estimator.parse_cache_stats(),
            "matcher": self._estimator.matcher.cache_stats(),
            "response": response,
            "fragment": fragment,
        }

    def metrics_snapshot(self) -> dict:
        body = self.metrics.snapshot()
        body["response_cache"] = self.cache_info()
        body["caches"] = self.caches_snapshot()
        body["workers"] = self.config.workers
        # Which process answered: with --procs N each worker serves
        # its own counters, so scrapers must aggregate by worker_id
        # (the load harness does; see docs/operations.md).
        body["server"] = {
            "worker_id": self.config.worker_id,
            "pid": os.getpid(),
            "procs": self.config.procs,
        }
        body["connections"] = self.connections.snapshot()
        body["resilience"] = self.resilience_snapshot()
        return body
