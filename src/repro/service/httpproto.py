"""Incremental HTTP/1.1 wire protocol for the event-loop server.

:class:`RequestParser` is a per-connection, allocation-light state
machine: bytes go in via :meth:`feed` as they arrive from the socket,
complete requests come out of :meth:`next_request` — ``None`` means
"need more bytes", which is what makes the server's loop non-blocking
end to end.  Because the parser owns a rolling buffer, **pipelined**
requests (several requests in one TCP segment) fall out naturally:
after one request is consumed, the next call to :meth:`next_request`
picks up at the following byte.

Protocol failures raise the service's *typed* errors so the server
answers them with the same JSON envelopes the rest of the stack uses:

* malformed request line / header, unsupported transfer coding,
  non-numeric or negative ``Content-Length`` →
  :class:`~repro.service.errors.ValidationError` (HTTP 400),
* headers growing past :data:`MAX_HEADER_BYTES` →
  :class:`~repro.service.errors.HeadersTooLargeError` (HTTP 431),
* declared body larger than the configured cap →
  :class:`~repro.service.errors.PayloadTooLargeError` (HTTP 413) —
  raised from the *headers* alone, before any body byte is read,
  so an attacker cannot make the server buffer the oversized body.

Error messages for the cases the seed threading server could hit
(``Content-Length`` and 413) are kept word-for-word identical to it:
the server-matrix parity suite compares envelopes byte-for-byte.

:func:`render_response` is the other half: status line, headers and
body concatenated into **one** bytes object so the server ships every
response in a single ``send`` (the seed server learned the hard way
that two segments cost ~40 ms to Nagle + delayed ACK).  Header names,
order and formatting mirror ``BaseHTTPRequestHandler`` (``Server``
then ``Date`` first) so responses are header-identical to the seed
threading server.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from email.utils import formatdate
from http import HTTPStatus

from repro import __version__
from repro.service.errors import (
    HeadersTooLargeError,
    PayloadTooLargeError,
    ValidationError,
)

#: Cap on the request line + headers of one request.  Generous for any
#: real client (http.client emits a few hundred bytes) while bounding
#: what a drip-feeding client can make the server buffer.
MAX_HEADER_BYTES = 32 * 1024

_CRLF = b"\r\n"
_HEADER_END = b"\r\n\r\n"


@dataclass(frozen=True, slots=True)
class ParsedRequest:
    """One complete request, ready for dispatch."""

    method: str
    path: str
    version: str
    headers: dict[str, str]  # keys lowercased; last duplicate wins
    body: bytes
    close: bool  # client asked for (or implied) connection close


_STATE_HEADERS = 0
_STATE_BODY = 1


class RequestParser:
    """Incremental parser for a stream of HTTP/1.1 requests.

    One instance per connection.  Raising leaves the parser unusable
    by design: every protocol error closes the connection (mirroring
    the seed server's ``close_connection`` behaviour), so there is
    nothing to resynchronize.
    """

    __slots__ = (
        "_buf",
        "_state",
        "_scanned",
        "_content_length",
        "_pending",
        "max_body_bytes",
    )

    def __init__(self, max_body_bytes: int):
        self.max_body_bytes = max_body_bytes
        self._buf = bytearray()
        self._state = _STATE_HEADERS
        #: How far the header-terminator scan has looked (avoid
        #: rescanning the whole buffer on every drip-fed byte).
        self._scanned = 0
        self._content_length = 0
        self._pending: ParsedRequest | None = None

    # ------------------------------------------------------------------
    # feeding

    def feed(self, data: bytes) -> None:
        self._buf += data

    @property
    def receiving(self) -> bool:
        """A request has started arriving but is not complete yet.

        Distinguishes a *slow* request (subject to the I/O timeout —
        the slowloris case) from an idle keep-alive connection
        (subject to the longer idle timeout).
        """
        return self._state == _STATE_BODY or len(self._buf) > 0

    def buffered_bytes(self) -> int:
        return len(self._buf)

    # ------------------------------------------------------------------
    # parsing

    def next_request(self) -> ParsedRequest | None:
        """The next complete request, or ``None`` until more bytes land."""
        if self._state == _STATE_HEADERS:
            if not self._parse_head():
                return None
        # _STATE_BODY: wait for the declared Content-Length.
        assert self._pending is not None
        if len(self._buf) < self._content_length:
            return None
        body = bytes(self._buf[: self._content_length])
        del self._buf[: self._content_length]
        request = self._pending
        self._pending = None
        self._state = _STATE_HEADERS
        self._scanned = 0
        return ParsedRequest(
            method=request.method,
            path=request.path,
            version=request.version,
            headers=request.headers,
            body=body,
            close=request.close,
        )

    def _parse_head(self) -> bool:
        """Parse request line + headers once the terminator is in."""
        end = self._buf.find(_HEADER_END, max(0, self._scanned - 3))
        if end < 0:
            self._scanned = len(self._buf)
            if self._scanned > MAX_HEADER_BYTES:
                raise HeadersTooLargeError(
                    f"request head exceeds {MAX_HEADER_BYTES} bytes "
                    "before the header terminator"
                )
            return False
        if end > MAX_HEADER_BYTES:
            raise HeadersTooLargeError(
                f"request head of {end} bytes exceeds the "
                f"{MAX_HEADER_BYTES} byte limit"
            )
        head = bytes(self._buf[:end])
        del self._buf[: end + 4]

        try:
            text = head.decode("iso-8859-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise ValidationError("request head is not decodable")
        lines = text.split("\r\n")
        method, path, version = self._parse_request_line(lines[0])
        headers = self._parse_headers(lines[1:])

        if "chunked" in headers.get("transfer-encoding", "").lower():
            # The seed server would silently treat a chunked body as
            # empty and desynchronize the connection; reject instead.
            raise ValidationError(
                "chunked transfer encoding is not supported",
                field="Transfer-Encoding",
            )

        # Content-Length semantics mirror the seed server byte for
        # byte: missing/empty -> "0", non-numeric or negative -> the
        # exact 400 envelope it produced.
        raw_length = headers.get("content-length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            length = -1
        if length < 0:
            raise ValidationError(
                f"invalid Content-Length header: {raw_length!r}",
                field="Content-Length",
            )
        if length > self.max_body_bytes:
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes} byte limit"
            )

        connection = headers.get("connection", "").lower()
        close = connection == "close" or (
            version == "HTTP/1.0" and connection != "keep-alive"
        )

        self._content_length = length
        self._pending = ParsedRequest(
            method=method,
            path=path,
            version=version,
            headers=headers,
            body=b"",
            close=close,
        )
        self._state = _STATE_BODY
        return True

    @staticmethod
    def _parse_request_line(line: str) -> tuple[str, str, str]:
        parts = line.split()
        if len(parts) != 3:
            raise ValidationError(f"malformed request line: {line!r}")
        method, path, version = parts
        if not method.isalpha() or method != method.upper():
            raise ValidationError(f"malformed request method: {method!r}")
        if not path.startswith("/"):
            raise ValidationError(f"malformed request target: {path!r}")
        if not version.startswith("HTTP/1."):
            raise ValidationError(
                f"unsupported protocol version: {version!r}"
            )
        return method, path, version

    @staticmethod
    def _parse_headers(lines: list[str]) -> dict[str, str]:
        headers: dict[str, str] = {}
        for line in lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep or not name or name != name.strip():
                raise ValidationError(f"malformed header line: {line!r}")
            headers[name.lower()] = value.strip()
        return headers


# ----------------------------------------------------------------------
# response rendering


# Matches BaseHTTPRequestHandler.version_string() — the seed server
# appended the stdlib's "Python/x.y.z" suffix, and header parity with
# it is asserted byte-for-byte.
_SERVER_HEADER = (
    f"Server: repro-serve/{__version__} "
    f"Python/{sys.version.split()[0]}\r\n".encode()
)

#: Pre-rendered status lines for every status the service can emit.
_STATUS_LINES: dict[int, bytes] = {
    status.value: f"HTTP/1.1 {status.value} {status.phrase}\r\n".encode()
    for status in HTTPStatus
}

# The Date header changes once a second; render it at most that often.
_date_cache: tuple[int, bytes] = (0, b"")


def _date_header() -> bytes:
    global _date_cache
    now = int(time.time())
    if _date_cache[0] != now:
        _date_cache = (
            now,
            f"Date: {formatdate(now, usegmt=True)}\r\n".encode(),
        )
    return _date_cache[1]


def render_response(
    status: int,
    body: bytes,
    *,
    cache_hit: bool = False,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Status line + headers + body as one single-send bytes object.

    Header names and order mirror the seed threading server
    (``BaseHTTPRequestHandler``): Server, Date, Content-Type,
    Content-Length, then ``X-Cache`` and any error-carried extras —
    the parity suite compares full header lists (minus ``Date``).
    """
    status_line = _STATUS_LINES.get(status)
    if status_line is None:  # pragma: no cover - unknown status code
        status_line = f"HTTP/1.1 {status} Unknown\r\n".encode()
    parts = [
        status_line,
        _SERVER_HEADER,
        _date_header(),
        b"Content-Type: application/json\r\n",
        b"Content-Length: %d\r\n" % len(body),
    ]
    if cache_hit:
        parts.append(b"X-Cache: hit\r\n")
    for name, value in extra_headers:
        parts.append(f"{name}: {value}\r\n".encode())
    parts.append(_CRLF)
    parts.append(body)
    return b"".join(parts)
