"""The HTTP serving tier: a selectors event loop, zero dependencies.

:class:`NutritionService` serves every connection from **one loop
thread** over non-blocking sockets: non-blocking accept, incremental
HTTP/1.1 parsing (:mod:`repro.service.httpproto`) with keep-alive and
pipelining, and single-send buffered responses.  Requests that finish
in microseconds — introspection endpoints, validation errors, response
-cache hits — are answered inline on the loop
(:func:`~repro.service.handlers.dispatch_fast`); real estimation work
runs on a small pool of daemon worker threads and its response is
delivered back to the loop over a wakeup pipe.  The split is what
makes throughput scale with connection count: ten thousand idle
keep-alive connections cost ten thousand parser buffers, not ten
thousand OS threads, and a cache hit never waits behind a thread
scheduler.

The wire contract is pinned by the seed threading server
(:mod:`repro.service.threading_server`): every response — success and
error envelope alike, header order included — must be byte-identical,
and the server-matrix parity suite in ``tests/test_service_http.py``
enforces it.  The typed handlers, codec, :class:`ServiceState`,
admission/deadline/breaker resilience and ``/metrics`` are untouched;
only the socket layer changed.

Adversarial clients are bounded by two config knobs the threading
server never had: ``io_timeout_s`` closes connections that start a
request but stop making progress (slowloris), ``idle_timeout_s`` reaps
keep-alive connections parked between requests.  Connection-level
accounting lands in ``/metrics`` under ``connections``.

Lifecycle matches the seed server: blocking :meth:`serve_forever`,
background :meth:`start`, context manager, and a graceful
:meth:`shutdown` (readyz flips 503 → accept stops → in-flight requests
drain and their responses flush → loop joins).  ``serve()`` is the CLI
entry point; with ``config.procs > 1`` it hands off to the pre-fork
supervisor (:mod:`repro.service.prefork`).
"""

from __future__ import annotations

import json
import logging
import queue
import selectors
import signal
import socket
import threading
import time
from collections import deque

from repro.service.errors import InvalidJSONError, ServiceError
from repro.service.handlers import Response, dispatch, dispatch_fast
from repro.service.httpproto import RequestParser, render_response
from repro.service.state import ServiceConfig, ServiceState

log = logging.getLogger("repro.service")

#: Bytes pulled per recv; large enough for any realistic request burst.
_RECV_SIZE = 64 * 1024
#: Accepts drained per listener wakeup before yielding to other fds.
_MAX_ACCEPTS_PER_WAKE = 64
#: Pipelined requests served per connection per wakeup — a bound so one
#: firehosing client cannot starve every other connection.
_MAX_REQUESTS_PER_PUMP = 32
#: While a connection waits on estimation, stop reading once this much
#: is buffered — TCP backpressure does the rest.
_READ_BUFFER_CAP = 256 * 1024
#: Bodies up to this size are JSON-decoded inline on the loop thread;
#: larger ones decode on the worker pool to keep the loop responsive.
_INLINE_DECODE_MAX = 64 * 1024
#: How often the loop sweeps connections for io/idle timeouts.
_SCAN_INTERVAL_S = 0.2


def _predispatch_body(exc: ServiceError) -> bytes:
    """Envelope bytes for errors raised *before* dispatch.

    The seed threading server serialized these with default
    ``json.dumps`` separators (spaced) while dispatch-path errors use
    the compact codec — the parity suite pins both formats, so the
    distinction is load-bearing.
    """
    return json.dumps(exc.to_body()).encode()


class _Connection:
    """Per-socket state owned by the loop thread."""

    __slots__ = (
        "sock",
        "parser",
        "out",
        "out_off",
        "events",
        "busy",
        "close_after_write",
        "peer_closed",
        "paused",
        "last_activity",
        "recv_started",
    )

    def __init__(self, sock: socket.socket, parser: RequestParser, now: float):
        self.sock = sock
        self.parser = parser
        self.out = bytearray()
        self.out_off = 0
        self.events = 0  # current selector interest mask
        self.busy = False  # an estimation job is in flight
        self.close_after_write = False
        self.peer_closed = False  # EOF seen while a job was in flight
        self.paused = False  # reads stopped for backpressure
        self.last_activity = now
        self.recv_started = now  # first byte of the current request

    @property
    def out_pending(self) -> bool:
        return self.out_off < len(self.out)


class _WorkerPool:
    """Fixed pool of daemon threads for estimation work.

    Deliberately not ``ThreadPoolExecutor``: its threads are
    non-daemon, so one estimation stuck past the drain timeout would
    hold the whole process open at exit.  Daemon threads preserve the
    seed server's abandon-after-drain-timeout semantics.  The pool is
    sized past admission capacity (``max_concurrent + max_queue``) so
    shedding stays *immediate*: every overload request must reach the
    admission controller concurrently to be told 503 now, rather than
    queueing behind a smaller pool.
    """

    def __init__(self, size: int):
        self._size = size
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        for i in range(size):
            threading.Thread(
                target=self._run,
                name=f"repro-serve-pool-{i}",
                daemon=True,
            ).start()

    def submit(self, job) -> None:
        self._queue.put(job)

    def stop(self) -> None:
        """Let idle threads exit (busy ones exit after their job)."""
        for _ in range(self._size):
            self._queue.put(None)

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                job()
            except Exception:  # pragma: no cover - job() never raises
                log.exception("worker pool job failed")


class NutritionService:
    """A ready-to-serve nutrition estimation service (event loop)."""

    #: How long shutdown waits for in-flight estimation requests.
    DRAIN_TIMEOUT_S = 5.0

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.state = ServiceState(self.config)

        self._listener = self._create_listener(self.config)
        self._sel = selectors.DefaultSelector()
        # Cross-thread wakeup: pool threads (and shutdown) poke the
        # loop out of select() by writing one byte here.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)

        self._pool = _WorkerPool(
            self.config.max_concurrent + self.config.max_queue + 4
        )
        self._conns: dict[int, _Connection] = {}
        self._completions: deque = deque()
        self._completions_lock = threading.Lock()
        self._runnable: deque[_Connection] = deque()

        self._thread: threading.Thread | None = None
        self._stop_requested = False
        self._finished = threading.Event()
        self._loop_started = False
        self._closed = False
        self._lifecycle_lock = threading.Lock()

    @staticmethod
    def _create_listener(config: ServiceConfig) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if config.reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((config.host, config.port))
        sock.listen(128)
        sock.setblocking(False)
        return sock

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return self._listener.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # lifecycle

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._loop_started = True
        try:
            self._loop()
        finally:
            self._finished.set()

    def start(self) -> "NutritionService":
        """Serve on a daemon background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        # Marked before the thread runs so a shutdown() racing a slow
        # thread start waits on the loop instead of tearing down
        # sockets underneath it.
        self._loop_started = True
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Graceful stop: drain in-flight requests, close the socket.

        Ordering matters and is the same across every worker of a
        pre-fork deployment: ``/readyz`` flips to 503 first (a load
        balancer stops routing here), the listener closes (no new
        connections), in-flight estimation requests run to completion
        and their responses are flushed, then the loop exits and is
        joined.  Requests still running after :attr:`DRAIN_TIMEOUT_S`
        are abandoned (their pool threads are daemons, so they cannot
        hold the process open).
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            self.state.draining = True
            self._stop_requested = True
            self._wake()
            if self._loop_started:
                self._finished.wait(self.DRAIN_TIMEOUT_S + 2.0)
            else:
                # Constructed but never served: just release sockets.
                self._teardown()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None

    def __enter__(self) -> "NutritionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except OSError:  # pragma: no cover - loop already torn down
            pass

    def _teardown(self) -> None:
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        for sock in (self._listener, self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._sel.close()
        self._pool.stop()
        # Release the batch engine's persistent worker pool (and its
        # shared-memory artifact segment) with the rest of the
        # process's sockets — idempotent, covers both the loop exit
        # and the constructed-but-never-served path.
        self.state.close()

    # ------------------------------------------------------------------
    # the event loop

    def _loop(self) -> None:
        self._sel.register(self._listener, selectors.EVENT_READ, "listener")
        self._sel.register(self._wake_r, selectors.EVENT_READ, "wakeup")
        draining = False
        drain_deadline = 0.0
        last_scan = time.monotonic()
        while True:
            timeout = 0.0 if self._runnable else _SCAN_INTERVAL_S
            for key, mask in self._sel.select(timeout):
                if key.data == "listener":
                    self._accept()
                elif key.data == "wakeup":
                    try:
                        self._wake_r.recv(4096)
                    except OSError:
                        pass
                else:
                    conn = key.data
                    if mask & selectors.EVENT_WRITE:
                        self._flush(conn)
                    if (
                        mask & selectors.EVENT_READ
                        and conn.sock.fileno() >= 0
                    ):
                        self._handle_read(conn)
            self._drain_completions()
            for _ in range(len(self._runnable)):
                conn = self._runnable.popleft()
                if conn.sock.fileno() >= 0 and not conn.busy:
                    self._pump(conn, pipelined=True)
            now = time.monotonic()
            if now - last_scan >= _SCAN_INTERVAL_S:
                last_scan = now
                self._scan_timeouts(now)
            if self._stop_requested and not draining:
                draining = True
                drain_deadline = now + self.DRAIN_TIMEOUT_S
                self._sel.unregister(self._listener)
                self._listener.close()
                # Idle connections have nothing to wait for.
                for conn in list(self._conns.values()):
                    if not conn.busy and not conn.out_pending:
                        self._close_conn(conn)
            if draining:
                if not self._conns or now >= drain_deadline:
                    if self._conns:
                        log.warning(
                            "drain timeout: %d connection(s) abandoned at "
                            "shutdown",
                            len(self._conns),
                        )
                    break
        self._teardown()

    def _accept(self) -> None:
        for _ in range(_MAX_ACCEPTS_PER_WAKE):
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP test sockets
                pass
            conn = _Connection(
                sock,
                RequestParser(self.config.max_body_bytes),
                time.monotonic(),
            )
            self._set_events(conn, selectors.EVENT_READ)
            self._conns[sock.fileno()] = conn
            self.state.connections.opened += 1

    def _set_events(self, conn: _Connection, mask: int) -> None:
        if mask == conn.events:
            return
        if conn.events == 0:
            self._sel.register(conn.sock, mask, conn)
        elif mask == 0:
            self._sel.unregister(conn.sock)
        else:
            self._sel.modify(conn.sock, mask, conn)
        conn.events = mask

    def _close_conn(self, conn: _Connection, *, aborted: bool = False) -> None:
        fd = conn.sock.fileno()
        if fd < 0:
            return
        if conn.events:
            try:
                self._sel.unregister(conn.sock)
            except KeyError:  # pragma: no cover
                pass
            conn.events = 0
        del self._conns[fd]
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover
            pass
        self.state.connections.closed += 1
        if aborted:
            self.state.connections.aborted += 1

    # ------------------------------------------------------------------
    # reading and request pumping

    def _handle_read(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            self._close_conn(conn, aborted=True)
            return
        now = time.monotonic()
        if not data:
            # EOF.  With a job in flight, keep the connection so the
            # response can still be attempted (half-close is legal);
            # otherwise a partial request or unflushed response means
            # the client vanished mid-exchange.
            if conn.busy:
                conn.peer_closed = True
                self._set_events(conn, 0)
                return
            aborted = conn.parser.receiving or conn.out_pending
            self._close_conn(conn, aborted=aborted)
            return
        if not conn.parser.receiving:
            conn.recv_started = now
        conn.last_activity = now
        conn.parser.feed(data)
        if conn.busy:
            if conn.parser.buffered_bytes() > _READ_BUFFER_CAP:
                conn.paused = True
                self._set_events(conn, 0)
            return
        self._pump(conn)

    def _pump(self, conn: _Connection, *, pipelined: bool = False) -> None:
        """Serve buffered complete requests, in order, up to the bound."""
        served = 0
        while served < _MAX_REQUESTS_PER_PUMP:
            if self._stop_requested:
                return
            try:
                request = conn.parser.next_request()
            except ServiceError as exc:
                self.state.connections.protocol_errors += 1
                self._send_response(
                    conn,
                    Response(exc.status, _predispatch_body(exc),
                             headers=exc.headers()),
                    close=True,
                )
                return
            if request is None:
                break
            if served or pipelined:
                self.state.connections.pipelined += 1
            served += 1
            if request.close:
                conn.close_after_write = True
            if len(request.body) > _INLINE_DECODE_MAX:
                # Decode AND dispatch off-loop; a multi-MB json.loads
                # would stall every other connection.
                self._submit(conn, request.method, request.path,
                             raw_body=request.body)
                return
            payload = None
            if request.body:
                try:
                    payload = json.loads(request.body)
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    # Same envelope + keep-alive as the seed server.
                    err = InvalidJSONError(
                        f"request body is not valid JSON: {exc}"
                    )
                    self._send_response(
                        conn,
                        Response(err.status, _predispatch_body(err)),
                    )
                    if conn.sock.fileno() < 0 or conn.close_after_write:
                        return
                    continue
            fast = dispatch_fast(
                self.state, request.method, request.path, payload
            )
            if fast is not None:
                self._send_response(conn, fast)
                if conn.sock.fileno() < 0 or conn.close_after_write:
                    return
                continue
            self._submit(conn, request.method, request.path, payload=payload)
            return
        if served == _MAX_REQUESTS_PER_PUMP and not conn.busy:
            # More complete requests may be buffered; yield to other
            # connections first, come back next loop turn.
            self._runnable.append(conn)

    # ------------------------------------------------------------------
    # estimation jobs (worker pool)

    def _submit(
        self,
        conn: _Connection,
        method: str,
        path: str,
        *,
        payload=None,
        raw_body: bytes | None = None,
    ) -> None:
        conn.busy = True
        state = self.state

        def job() -> None:
            if raw_body is not None:
                try:
                    decoded = json.loads(raw_body)
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    err = InvalidJSONError(
                        f"request body is not valid JSON: {exc}"
                    )
                    self._complete(
                        conn, Response(err.status, _predispatch_body(err))
                    )
                    return
                response = dispatch(state, method, path, decoded)
            else:
                response = dispatch(state, method, path, payload)
            self._complete(conn, response)

        self._pool.submit(job)

    def _complete(self, conn: _Connection, response: Response) -> None:
        """Hand a finished response back to the loop (pool thread)."""
        with self._completions_lock:
            self._completions.append((conn, response))
        self._wake()

    def _drain_completions(self) -> None:
        while True:
            with self._completions_lock:
                if not self._completions:
                    return
                conn, response = self._completions.popleft()
            conn.busy = False
            if conn.sock.fileno() < 0:
                continue
            if conn.peer_closed:
                # EOF arrived while estimating: try to deliver anyway
                # (half-close), then close regardless.
                conn.close_after_write = True
            if self._stop_requested:
                conn.close_after_write = True
            self._send_response(conn, response)
            if conn.sock.fileno() < 0:
                continue
            if conn.paused:
                conn.paused = False
                if not conn.peer_closed:
                    self._set_events(
                        conn, conn.events | selectors.EVENT_READ
                    )
            if conn.parser.buffered_bytes() and not conn.close_after_write:
                self._runnable.append(conn)

    # ------------------------------------------------------------------
    # writing

    def _send_response(
        self, conn: _Connection, response: Response, *, close: bool = False
    ) -> None:
        if close:
            conn.close_after_write = True
        conn.out += render_response(
            response.status,
            response.body,
            cache_hit=response.cache_hit,
            extra_headers=response.headers,
        )
        self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        try:
            while conn.out_off < len(conn.out):
                sent = conn.sock.send(
                    memoryview(conn.out)[conn.out_off:]
                )
                conn.out_off += sent
        except BlockingIOError:
            conn.last_activity = time.monotonic()
            mask = selectors.EVENT_WRITE
            if not conn.paused and not conn.peer_closed:
                mask |= selectors.EVENT_READ
            self._set_events(conn, mask)
            return
        except OSError:
            self._close_conn(conn, aborted=True)
            return
        # Fully flushed.
        conn.out.clear()
        conn.out_off = 0
        conn.last_activity = time.monotonic()
        if conn.close_after_write:
            self._close_conn(conn)
        elif not conn.busy:
            mask = 0 if conn.paused or conn.peer_closed else selectors.EVENT_READ
            self._set_events(conn, mask)

    # ------------------------------------------------------------------
    # timeouts

    def _scan_timeouts(self, now: float) -> None:
        io_timeout = self.config.io_timeout_s
        idle_timeout = self.config.idle_timeout_s
        for conn in list(self._conns.values()):
            if conn.busy:
                continue
            if conn.out_pending:
                # Client not reading its response.
                if now - conn.last_activity > io_timeout:
                    self.state.connections.io_timeouts += 1
                    self._close_conn(conn, aborted=True)
            elif conn.parser.receiving:
                # Partial request dribbling in: the slowloris bound is
                # measured from the request's FIRST byte and is not
                # refreshed by later bytes.
                if now - conn.recv_started > io_timeout:
                    self.state.connections.io_timeouts += 1
                    self._close_conn(conn)
            elif now - conn.last_activity > idle_timeout:
                self.state.connections.idle_closed += 1
                self._close_conn(conn)


def _write_ready_file(path: str, host: str, port: int) -> None:
    """Publish the bound address for tests/harnesses (atomic write)."""
    from repro.utils import atomic_write_text

    atomic_write_text(path, f"{host} {port}\n")


def serve(
    config: ServiceConfig | None = None, *, ready_file: str | None = None
) -> int:
    """Blocking CLI entry point with graceful signal shutdown.

    With ``config.procs > 1`` delegates to the pre-fork supervisor.
    Otherwise runs the event loop on a background thread and parks the
    main thread on an event (Python delivers signals to the main
    thread).  ``ready_file``, when given, receives ``"host port"``
    once the server is accepting — how harnesses discover a ``port=0``
    bind.
    """
    config = config or ServiceConfig()
    if config.procs > 1:
        from repro.service.prefork import serve_prefork

        return serve_prefork(config, ready_file=ready_file)

    service = NutritionService(config)
    stop = threading.Event()

    def _request_stop(signum, _frame) -> None:
        log.info("received signal %d, shutting down", signum)
        stop.set()

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        service.start()
        print(
            f"repro serve listening on {service.url} "
            f"(procs={config.procs}, workers={config.workers}, "
            f"cache_cap={config.cache_cap})",
            flush=True,
        )
        if ready_file is not None:
            _write_ready_file(ready_file, service.host, service.port)
        stop.wait()
    finally:
        service.shutdown()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("repro serve stopped", flush=True)
    return 0
