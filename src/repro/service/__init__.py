"""Long-lived HTTP service over the estimation pipeline.

PRs 1–2 made estimation fast but batch-only: every invocation paid
full cold start (USDA load, index build, cache warm-up).  This
subpackage turns the pipeline into an always-on JSON API — the shape
downstream consumers (recipe recommenders, calorie-prediction
datasets) assume — with zero third-party dependencies.  The server is
a ``selectors`` **event loop**: one thread owns every socket
(non-blocking accept, incremental HTTP/1.1 parsing with keep-alive
and pipelining, single-send responses) while estimation runs on a
small worker pool, all fronted by a warm shared
:class:`~repro.core.estimator.NutritionEstimator`.  ``serve --procs
N`` pre-forks N such processes onto one port via ``SO_REUSEPORT``
with supervised respawn and coordinated graceful drain.  The seed
threaded ``http.server`` implementation survives as
:class:`~repro.service.threading_server.ThreadingNutritionService`,
the byte-parity oracle for the server matrix in
``tests/test_service_http.py``.

Endpoints (full schemas in ``docs/api.md``)::

    POST /v1/estimate        one recipe -> nutritional profile
    POST /v1/estimate_batch  many recipes as one corpus (sharded
                             engine fan-out with workers > 1)
    POST /v1/match           closest-description lookup
    POST /v1/parse           NER entity extraction
    GET  /healthz            liveness
    GET  /readyz             readiness (503 while draining/saturated)
    GET  /metrics            per-endpoint counters + latency percentiles
                             + resilience counters

Requests are governed by the resilience layer
(:mod:`repro.service.resilience`): per-request deadlines (504),
bounded admission with load shedding (503 + ``Retry-After``), and a
circuit breaker that degrades the sharded batch path to in-process
estimation (bit-identical results) when the pool misbehaves.

Modules:

* :mod:`repro.service.state`    — :class:`ServiceConfig`,
  :class:`ServiceState`: the warm estimator, response cache, locks,
* :mod:`repro.service.codec`    — request validation/normalization and
  response encoding,
* :mod:`repro.service.handlers` — route table + dispatch (caching,
  admission, deadlines, metrics, typed errors),
* :mod:`repro.service.resilience` — :class:`Deadline`,
  :class:`AdmissionController`, :class:`CircuitBreaker`,
* :mod:`repro.service.server`   — the event-loop
  :class:`NutritionService` and the blocking :func:`serve` entry
  point (graceful drain + shutdown),
* :mod:`repro.service.httpproto` — incremental HTTP/1.1 parsing and
  single-send response rendering,
* :mod:`repro.service.prefork`  — the ``--procs N`` supervisor
  (``SO_REUSEPORT`` workers, respawn, coordinated drain),
* :mod:`repro.service.threading_server` — the seed threaded server,
  kept as the byte-parity oracle,
* :mod:`repro.service.metrics`  — the ``/metrics`` registry,
* :mod:`repro.service.errors`   — the typed error hierarchy.

Quickstart::

    from repro.service import NutritionService, ServiceConfig

    with NutritionService(ServiceConfig(port=0)) as service:
        ...  # POST JSON to service.url + "/v1/estimate"

or from the command line: ``python -m repro serve --port 8080``.
"""

from repro.service.errors import ServiceError, ValidationError
from repro.service.server import NutritionService, serve
from repro.service.state import ServiceConfig, ServiceState
from repro.service.threading_server import ThreadingNutritionService

__all__ = [
    "NutritionService",
    "ThreadingNutritionService",
    "ServiceConfig",
    "ServiceState",
    "ServiceError",
    "ValidationError",
    "serve",
]
