"""Request validation, normalization and response encoding.

The service boundary in one module:

* **Validation** — each ``validate_*`` function turns an untrusted
  decoded-JSON payload into a frozen request dataclass or raises
  :class:`~repro.service.errors.ValidationError` naming the offending
  field (``recipes[3].servings``).  Limits bound what a single request
  can cost; they are module constants so tests and docs cite one
  source of truth.
* **Normalization** — ingredient phrases are whitespace-stripped and
  request dataclasses are canonical, so two payloads that differ only
  in JSON key order, float-vs-int servings spelling or surrounding
  whitespace produce the same :func:`cache_key` and hit the same
  cached response.
* **Encoding** — ``encode_*`` functions render the pipeline's result
  dataclasses (:class:`RecipeEstimate`, :class:`MatchResult`, ...) as
  JSON-ready dicts.  Profile floats are emitted untouched —
  ``json.dumps`` uses ``repr`` round-tripping, so a client reading
  ``per_serving`` recovers bit-identical values to the in-process
  estimator (the service parity guarantee).
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.estimator import IngredientEstimate, ParsedIngredient, RecipeEstimate
from repro.core.explain import LineExplanation
from repro.matching.types import MatchResult
from repro.service.errors import ValidationError

#: Hard caps on what one request may ask for.  Generous for real
#: recipes (RecipeDB's largest have < 100 lines) while bounding the
#: work a single malicious payload can demand.
MAX_INGREDIENTS_PER_RECIPE = 300
MAX_RECIPES_PER_BATCH = 5000
MAX_PHRASE_CHARS = 500
MAX_SERVINGS = 1000
MAX_TOP = 50
#: Context lines one ``/v1/explain`` request may feed the
#: most-frequent-unit statistics.
MAX_EXPLAIN_CONTEXT = 300
#: Default candidate-list depth for ``/v1/explain``.
DEFAULT_EXPLAIN_TOP = 5


@dataclass(frozen=True, slots=True)
class EstimateRequest:
    """Validated ``/v1/estimate`` payload (also one batch entry)."""

    ingredients: tuple[str, ...]
    servings: int


@dataclass(frozen=True, slots=True)
class BatchRequest:
    """Validated ``/v1/estimate_batch`` payload."""

    recipes: tuple[EstimateRequest, ...]


@dataclass(frozen=True, slots=True)
class MatchRequest:
    """Validated ``/v1/match`` payload."""

    name: str
    state: str
    temperature: str
    dry_fresh: str
    top: int  # 0 = single best match; >0 = ranked candidate list


@dataclass(frozen=True, slots=True)
class ParseRequest:
    """Validated ``/v1/parse`` payload."""

    text: str


@dataclass(frozen=True, slots=True)
class ExplainRequest:
    """Validated ``/v1/explain`` payload."""

    text: str
    context: tuple[str, ...]
    top: int


# ----------------------------------------------------------------------
# validation


def _require_object(payload, where: str) -> dict:
    if not isinstance(payload, dict):
        raise ValidationError(
            f"expected a JSON object, got {type(payload).__name__}",
            field=where,
        )
    return payload


def _reject_unknown_keys(payload: dict, known: frozenset[str], where: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ValidationError(
            f"unknown key(s): {', '.join(unknown)}", field=where
        )


def _string(value, where: str, *, max_chars: int = MAX_PHRASE_CHARS) -> str:
    if not isinstance(value, str):
        raise ValidationError(
            f"expected a string, got {type(value).__name__}", field=where
        )
    if len(value) > max_chars:
        raise ValidationError(
            f"string too long ({len(value)} > {max_chars} chars)", field=where
        )
    return value


def _int(value, where: str, *, lo: int, hi: int) -> int:
    # bool is an int subclass; JSON true/false must not pass as 1/0.
    if isinstance(value, bool) or not isinstance(value, int):
        if isinstance(value, float) and value.is_integer():
            value = int(value)  # tolerate "servings": 4.0
        else:
            raise ValidationError(
                f"expected an integer, got {value!r}", field=where
            )
    if not lo <= value <= hi:
        raise ValidationError(
            f"must be between {lo} and {hi}, got {value}", field=where
        )
    return value


def validate_estimate(payload, where: str = "") -> EstimateRequest:
    """``{"ingredients": [str, ...], "servings": int?}`` -> request."""
    prefix = f"{where}." if where else ""
    payload = _require_object(payload, where or "(body)")
    _reject_unknown_keys(
        payload, frozenset({"ingredients", "servings"}), where or "(body)"
    )
    if "ingredients" not in payload:
        raise ValidationError(
            "missing required key 'ingredients'", field=where or "(body)"
        )
    raw = payload["ingredients"]
    if not isinstance(raw, list):
        raise ValidationError(
            f"expected a list, got {type(raw).__name__}",
            field=f"{prefix}ingredients",
        )
    if not raw:
        raise ValidationError(
            "must contain at least one ingredient phrase",
            field=f"{prefix}ingredients",
        )
    if len(raw) > MAX_INGREDIENTS_PER_RECIPE:
        raise ValidationError(
            f"too many ingredients ({len(raw)} > "
            f"{MAX_INGREDIENTS_PER_RECIPE})",
            field=f"{prefix}ingredients",
        )
    ingredients = tuple(
        _string(text, f"{prefix}ingredients[{i}]").strip()
        for i, text in enumerate(raw)
    )
    servings = _int(
        payload.get("servings", 1),
        f"{prefix}servings",
        lo=1,
        hi=MAX_SERVINGS,
    )
    return EstimateRequest(ingredients=ingredients, servings=servings)


def validate_batch(payload) -> BatchRequest:
    """``{"recipes": [estimate payload, ...]}`` -> request."""
    payload = _require_object(payload, "(body)")
    _reject_unknown_keys(payload, frozenset({"recipes"}), "(body)")
    if "recipes" not in payload:
        raise ValidationError("missing required key 'recipes'", field="(body)")
    raw = payload["recipes"]
    if not isinstance(raw, list):
        raise ValidationError(
            f"expected a list, got {type(raw).__name__}", field="recipes"
        )
    if not raw:
        raise ValidationError(
            "must contain at least one recipe", field="recipes"
        )
    if len(raw) > MAX_RECIPES_PER_BATCH:
        raise ValidationError(
            f"too many recipes ({len(raw)} > {MAX_RECIPES_PER_BATCH})",
            field="recipes",
        )
    return BatchRequest(
        recipes=tuple(
            validate_estimate(entry, f"recipes[{i}]")
            for i, entry in enumerate(raw)
        )
    )


def validate_match(payload) -> MatchRequest:
    """``{"name": str, "state"?, "temperature"?, "dry_fresh"?, "top"?}``."""
    payload = _require_object(payload, "(body)")
    _reject_unknown_keys(
        payload,
        frozenset({"name", "state", "temperature", "dry_fresh", "top"}),
        "(body)",
    )
    if "name" not in payload:
        raise ValidationError("missing required key 'name'", field="(body)")
    name = _string(payload["name"], "name").strip()
    if not name:
        raise ValidationError("must be a non-empty string", field="name")
    return MatchRequest(
        name=name,
        state=_string(payload.get("state", ""), "state").strip(),
        temperature=_string(
            payload.get("temperature", ""), "temperature"
        ).strip(),
        dry_fresh=_string(payload.get("dry_fresh", ""), "dry_fresh").strip(),
        top=_int(payload.get("top", 0), "top", lo=0, hi=MAX_TOP),
    )


def validate_parse(payload) -> ParseRequest:
    """``{"text": str}`` -> request."""
    payload = _require_object(payload, "(body)")
    _reject_unknown_keys(payload, frozenset({"text"}), "(body)")
    if "text" not in payload:
        raise ValidationError("missing required key 'text'", field="(body)")
    text = _string(payload["text"], "text").strip()
    if not text:
        raise ValidationError("must be a non-empty string", field="text")
    return ParseRequest(text=text)


def validate_explain(payload) -> ExplainRequest:
    """``{"text": str, "context"?: [str, ...], "top"?: int}`` -> request."""
    payload = _require_object(payload, "(body)")
    _reject_unknown_keys(
        payload, frozenset({"text", "context", "top"}), "(body)"
    )
    if "text" not in payload:
        raise ValidationError("missing required key 'text'", field="(body)")
    text = _string(payload["text"], "text").strip()
    if not text:
        raise ValidationError("must be a non-empty string", field="text")
    raw_context = payload.get("context", [])
    if not isinstance(raw_context, list):
        raise ValidationError(
            f"expected a list, got {type(raw_context).__name__}",
            field="context",
        )
    if len(raw_context) > MAX_EXPLAIN_CONTEXT:
        raise ValidationError(
            f"too many context lines ({len(raw_context)} > "
            f"{MAX_EXPLAIN_CONTEXT})",
            field="context",
        )
    context = tuple(
        _string(line, f"context[{i}]").strip()
        for i, line in enumerate(raw_context)
    )
    top = _int(
        payload.get("top", DEFAULT_EXPLAIN_TOP), "top", lo=0, hi=MAX_TOP
    )
    return ExplainRequest(text=text, context=context, top=top)


# ----------------------------------------------------------------------
# cache keys


def cache_key(endpoint: str, request) -> str:
    """Canonical string key for a validated, normalized request.

    Built from the frozen request dataclass (already normalized), not
    the raw payload, so JSON spelling differences cannot split cache
    entries.
    """

    def plain(obj):
        if isinstance(obj, tuple):
            return [plain(item) for item in obj]
        if hasattr(obj, "__dataclass_fields__"):
            return {
                name: plain(getattr(obj, name))
                for name in obj.__dataclass_fields__
            }
        return obj

    return endpoint + "\x00" + json.dumps(
        plain(request), sort_keys=True, separators=(",", ":")
    )


# ----------------------------------------------------------------------
# response encoding


def encode_parsed(parsed: ParsedIngredient) -> dict:
    """Entity view of one tagged phrase."""
    return {
        "text": parsed.text,
        "tokens": list(parsed.tokens),
        "tags": list(parsed.tags),
        "name": parsed.name,
        "state": parsed.state,
        "unit": parsed.unit,
        "quantity": parsed.quantity,
        "temperature": parsed.temperature,
        "dry_fresh": parsed.dry_fresh,
        "size": parsed.size,
    }


def encode_match(match: MatchResult) -> dict:
    """A description match, without the bulky food record."""
    return {
        "ndb_no": match.food.ndb_no,
        "description": match.food.description,
        "score": match.score,
        "priority": match.priority,
        "db_index": match.db_index,
        "matched_words": sorted(match.matched_words),
        "raw_added": match.raw_added,
    }


def encode_ingredient_estimate(estimate: IngredientEstimate) -> dict:
    """One line's estimation outcome with provenance."""
    resolution = None
    if estimate.resolution is not None:
        resolution = {
            "unit": estimate.resolution.unit,
            "grams_per_unit": estimate.resolution.grams_per_unit,
            "method": estimate.resolution.method,
        }
    return {
        "text": estimate.parsed.text,
        "status": estimate.status,
        "match": None if estimate.match is None else encode_match(estimate.match),
        "resolution": resolution,
        "quantity": estimate.quantity,
        "grams": estimate.grams,
        "calories": estimate.calories,
        "used_fallback_unit": estimate.used_fallback_unit,
        "reason": estimate.reason,
        "trace": list(estimate.trace),
        "profile": dict(estimate.profile.values),
        "parsed": encode_parsed(estimate.parsed),
    }


def _recipe_head(estimate: RecipeEstimate) -> dict:
    """Recipe-level fields, in response key order, sans ingredients.

    Shared by :func:`encode_recipe_estimate` and the fragment
    assembler so the two render paths cannot drift.
    """
    return {
        "servings": estimate.servings,
        "total": dict(estimate.total.values),
        "per_serving": dict(estimate.per_serving.values),
        "fraction_fully_mapped": estimate.fraction_fully_mapped,
        "fraction_name_mapped": estimate.fraction_name_mapped,
    }


def encode_recipe_estimate(estimate: RecipeEstimate) -> dict:
    """A recipe-level aggregate (the ``/v1/estimate`` response body)."""
    body = _recipe_head(estimate)
    body["ingredients"] = [
        encode_ingredient_estimate(item) for item in estimate.ingredients
    ]
    return body


# ----------------------------------------------------------------------
# fragment assembly (serialized-estimate byte cache)


def dumps_ingredient_fragment(estimate: IngredientEstimate) -> bytes:
    """One ingredient estimate as compact JSON bytes.

    The unit the service's fragment cache stores: an estimate is a
    pure function of (line text, frozen stats table, database), so the
    rendered bytes can be reused across requests under the same stats
    token without re-running ``json.dumps``.
    """
    return json.dumps(
        encode_ingredient_estimate(estimate), separators=(",", ":")
    ).encode("utf-8")


def assemble_recipe_estimate_bytes(
    estimate: RecipeEstimate, fragments: Sequence[bytes]
) -> bytes:
    """Splice pre-serialized ingredient fragments into a recipe body.

    Byte-identical to ``dumps_body(encode_recipe_estimate(estimate))``
    by construction: with ``separators=(",", ":")`` the dump of a
    composite object is exactly the concatenation of the dumps of its
    parts, so dropping the head's closing brace and appending the
    ``ingredients`` array from the cached fragments reproduces the
    monolithic serialization (``tests/test_fragment_cache.py`` pins
    the equality).  *fragments* must be the recipe's ingredients in
    order.
    """
    head = json.dumps(
        _recipe_head(estimate), separators=(",", ":")
    ).encode("utf-8")
    return b"".join(
        (head[:-1], b',"ingredients":[', b",".join(fragments), b"]}")
    )


def assemble_batch_bytes(recipes: Sequence[bytes]) -> bytes:
    """Splice per-recipe bodies into an ``/v1/estimate_batch`` body.

    Byte-identical to ``dumps_body`` over the dict the endpoint used
    to build (``{"count": N, "recipes": [...]}``), for the same
    concatenation argument as
    :func:`assemble_recipe_estimate_bytes`.
    """
    return b"".join(
        (
            b'{"count":',
            str(len(recipes)).encode("ascii"),
            b',"recipes":[',
            b",".join(recipes),
            b"]}",
        )
    )


def encode_explanation(explanation: LineExplanation) -> dict:
    """A full line explanation (the ``/v1/explain`` response body)."""
    match_explanation = explanation.match_explanation
    candidates = []
    query_words: list[str] = []
    if match_explanation is not None:
        candidates = [encode_match(c) for c in match_explanation.candidates]
        query_words = sorted(match_explanation.query_words)
    return {
        "text": explanation.text,
        "status": explanation.estimate.status,
        "reason": explanation.estimate.reason,
        "trace": list(explanation.estimate.trace),
        "estimate": encode_ingredient_estimate(explanation.estimate),
        "match_query_words": query_words,
        "candidates": candidates,
        "stages": [
            {
                "stage": report.stage,
                "outcome": report.outcome,
                "detail": report.detail,
                "unit": report.unit,
                "grams_per_unit": report.grams_per_unit,
            }
            for report in explanation.stages
        ],
        "context_lines": explanation.context_lines,
    }


def dumps_body(body: dict | bytes) -> bytes:
    """Serialize a response body exactly as the server ships it.

    Bodies that were already assembled from cached fragments (the
    estimation endpoints return bytes) pass through untouched, so the
    dispatch path is agnostic to which render path produced them.
    """
    if isinstance(body, bytes):
        return body
    return json.dumps(body, separators=(",", ":")).encode("utf-8")
