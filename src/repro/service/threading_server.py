"""The seed thread-per-connection HTTP server, kept as the parity oracle.

This is the original ``ThreadingHTTPServer``-based serving tier the
event-loop server (:mod:`repro.service.server`) replaced.  It stays in
the tree for one reason: the server-matrix parity suite
(``tests/test_service_http.py``) runs every endpoint and every
error-envelope case against **both** implementations and asserts the
responses are byte-identical — the threading server defines the wire
contract, the event loop must reproduce it exactly.

It is fully functional (same :class:`ServiceState`, same handlers,
same resilience), just slower under concurrency: one OS thread per
connection, all of them serialized by the GIL, with stdlib
``http.server`` parsing overhead per request.  ``repro serve`` no
longer uses it.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import __version__
from repro.service.errors import (
    InvalidJSONError,
    PayloadTooLargeError,
    ServiceError,
    ValidationError,
)
from repro.service.handlers import dispatch
from repro.service.state import ServiceConfig, ServiceState

log = logging.getLogger("repro.service")


class _RequestHandler(BaseHTTPRequestHandler):
    """Per-connection handler; all logic lives in ``handlers.dispatch``."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"
    # Buffer the response stream so status line, headers and body
    # leave in ONE socket send (handle_one_request flushes after each
    # request).  Unbuffered (the stdlib default) the body goes out as
    # a second TCP segment, and Nagle + delayed ACK stall every
    # keep-alive response ~40 ms.  Nagle is disabled as well so a
    # response larger than the buffer cannot reintroduce the stall.
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    # Set by ThreadingNutritionService on the handler subclass.
    state: ServiceState

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def _handle(self, method: str) -> None:
        try:
            payload = self._read_payload()
        except ServiceError as exc:
            self._write(
                exc.status,
                json.dumps(exc.to_body()).encode(),
                headers=exc.headers(),
            )
            return
        response = dispatch(self.state, method, self.path, payload)
        self._write(
            response.status,
            response.body,
            response.cache_hit,
            headers=response.headers,
        )

    def _read_payload(self):
        """Decode the request body (``None`` for bodyless requests)."""
        raw_length = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            length = -1
        if length < 0:
            # Non-numeric or negative: reject before touching rfile —
            # int() must not escape as a 500, and rfile.read(-1) would
            # block the handler thread until client EOF.
            self.close_connection = True
            raise ValidationError(
                f"invalid Content-Length header: {raw_length!r}",
                field="Content-Length",
            )
        if length > self.state.config.max_body_bytes:
            # Read nothing; close after responding so the unread body
            # cannot desynchronize the connection.
            self.close_connection = True
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{self.state.config.max_body_bytes} byte limit"
            )
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidJSONError(f"request body is not valid JSON: {exc}")

    def _write(
        self,
        status: int,
        body: bytes,
        cache_hit: bool = False,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if cache_hit:
            self.send_header("X-Cache", "hit")
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Route access logs through logging instead of bare stderr so
        # embedding applications (and the tests) control verbosity.
        log.debug("%s - %s", self.address_string(), format % args)


class ThreadingNutritionService:
    """The seed serving tier: thread per connection, one process.

    API-compatible with :class:`repro.service.server.NutritionService`
    (``start``/``shutdown``/context manager/``url``) so the parity
    suite can drive both through one code path.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.state = ServiceState(self.config)

        # Subclass per service instance so concurrent services (tests)
        # each bind their own state.
        handler = type(
            "_BoundRequestHandler", (_RequestHandler,), {"state": self.state}
        )
        self._server = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # lifecycle

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "ThreadingNutritionService":
        """Serve on a daemon background thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    #: How long shutdown waits for in-flight estimation requests.
    DRAIN_TIMEOUT_S = 5.0

    def shutdown(self) -> None:
        """Graceful stop: drain in-flight requests, close the socket.

        Ordering matters.  ``/readyz`` flips to 503 first (a load
        balancer stops routing here), then the accept loop stops, then
        we *wait for the admission controller to drain*: handler
        threads are daemons — ``ThreadingHTTPServer`` never joins them
        — so without this wait, process exit right after ``shutdown()``
        would kill responses mid-write.  Requests still running after
        :attr:`DRAIN_TIMEOUT_S` are abandoned (they hold the process
        open only if it waits; a drain deadline keeps shutdown
        bounded).
        """
        self.state.draining = True
        self._server.shutdown()
        drain_until = time.monotonic() + self.DRAIN_TIMEOUT_S
        while not self.state.admission.drained():
            if time.monotonic() >= drain_until:
                log.warning(
                    "drain timeout: %d request(s) still in flight at "
                    "shutdown",
                    self.state.admission.active,
                )
                break
            time.sleep(0.02)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "ThreadingNutritionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
