"""Request-level resilience primitives for the HTTP service.

Three small, independently testable mechanisms keep an overloaded or
partially failing service *predictable* instead of slow-then-dead:

* :class:`Deadline` — a cooperative per-request time budget.  The
  estimation path checks it at phase boundaries and raises
  :class:`~repro.service.errors.DeadlineExceededError` (HTTP 504)
  rather than holding a handler thread indefinitely.
* :class:`AdmissionController` — bounded concurrency with a bounded
  wait queue.  Work beyond ``max_concurrent`` waits; work beyond
  ``max_queue`` is **shed immediately** with
  :class:`~repro.service.errors.ServiceOverloadedError` (HTTP 503 +
  ``Retry-After``).  Shedding at the door is what keeps saturation
  from becoming unbounded memory growth and multi-minute latencies —
  the service degrades to "some requests get a fast 503" instead of
  "every request times out".
* :class:`CircuitBreaker` — classic closed/open/half-open gate around
  the sharded batch engine.  After ``threshold`` consecutive engine
  failures the breaker opens and batch requests degrade to the
  in-process estimator (bit-identical results, just slower) without
  paying the failing fan-out; after ``cooldown_s`` one probe request
  is allowed through to test recovery.

All three are plain ``threading`` constructions — no event loop, same
zero-dependency posture as the rest of the service.
"""

from __future__ import annotations

import threading
import time

from repro.service.errors import DeadlineExceededError, ServiceOverloadedError

#: Longest a request will wait in the admission queue when it carries
#: no deadline of its own.
MAX_QUEUE_WAIT_S = 5.0

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class Deadline:
    """A monotonic-clock time budget, checked cooperatively.

    Created once per request from ``ServiceConfig.request_timeout_s``
    and threaded through the estimation path, which calls
    :meth:`check` at phase boundaries (estimation is pure CPU work in
    one process — there is nothing to interrupt preemptively, so the
    granularity is the phase, not the instruction).
    """

    __slots__ = ("_expires_at", "budget_s")

    def __init__(self, budget_s: float):
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be positive: {budget_s}")
        self.budget_s = budget_s
        self._expires_at = time.monotonic() + budget_s

    def remaining_s(self) -> float:
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining_s() <= 0

    def check(self, phase: str) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is gone."""
        if self.expired():
            raise DeadlineExceededError(
                f"request exceeded its {self.budget_s:.1f}s deadline "
                f"(at: {phase})"
            )


class AdmissionController:
    """Bounded concurrency + bounded queue + immediate shedding.

    ``max_concurrent`` requests run; up to ``max_queue`` more wait on
    a condition variable (FIFO-ish under CPython's lock fairness);
    everything beyond that is shed *without waiting*.  Use as::

        with admission.admitted(deadline):
            ... do the work ...

    :attr:`active` and :attr:`queued` feed ``/metrics`` and
    ``/readyz``; :attr:`shed_total` counts 503s issued.  The server's
    graceful shutdown polls :meth:`drained` so in-flight work finishes
    before the process exits.
    """

    def __init__(self, max_concurrent: int, max_queue: int):
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1: {max_concurrent}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0: {max_queue}")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self._cond = threading.Condition()
        self._active = 0
        self._queued = 0
        self._shed = 0

    # -- introspection (all lock-guarded: plain int reads are atomic
    # in CPython, but reading under the lock keeps the triple coherent
    # for /metrics)

    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    @property
    def queued(self) -> int:
        with self._cond:
            return self._queued

    @property
    def shed_total(self) -> int:
        with self._cond:
            return self._shed

    def saturated(self) -> bool:
        """Would a request arriving now be queued or shed?"""
        with self._cond:
            return self._active >= self.max_concurrent

    def drained(self) -> bool:
        with self._cond:
            return self._active == 0 and self._queued == 0

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "active": self._active,
                "queued": self._queued,
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "shed_total": self._shed,
            }

    # -- admission

    def admitted(self, deadline: Deadline | None = None):
        """Context manager: enter (or shed) on ``__enter__``."""
        return _Admission(self, deadline)

    def _enter(self, deadline: Deadline | None) -> None:
        with self._cond:
            if self._active < self.max_concurrent:
                self._active += 1
                return
            if self._queued >= self.max_queue:
                self._shed += 1
                raise ServiceOverloadedError(
                    f"service at capacity ({self.max_concurrent} active, "
                    f"{self._queued} queued); request shed",
                    retry_after_s=self._retry_after(deadline),
                )
            self._queued += 1
            try:
                wait_until = time.monotonic() + (
                    min(deadline.remaining_s(), MAX_QUEUE_WAIT_S)
                    if deadline is not None
                    else MAX_QUEUE_WAIT_S
                )
                while self._active >= self.max_concurrent:
                    remaining = wait_until - time.monotonic()
                    if remaining <= 0:
                        self._shed += 1
                        raise ServiceOverloadedError(
                            "service at capacity; gave up waiting for an "
                            "execution slot",
                            retry_after_s=self._retry_after(deadline),
                        )
                    self._cond.wait(remaining)
                self._active += 1
            finally:
                self._queued -= 1

    def _leave(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify()

    @staticmethod
    def _retry_after(deadline: Deadline | None) -> int:
        # A slot frees within one request's runtime; suggest roughly
        # that, floored at 1 s (Retry-After is integer seconds).
        if deadline is None:
            return 1
        return max(1, round(min(deadline.budget_s, 30.0)))


class _Admission:
    __slots__ = ("_controller", "_deadline", "_entered")

    def __init__(self, controller: AdmissionController, deadline):
        self._controller = controller
        self._deadline = deadline
        self._entered = False

    def __enter__(self) -> "_Admission":
        self._controller._enter(self._deadline)
        self._entered = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._entered:
            self._controller._leave()


class CircuitBreaker:
    """Closed / open / half-open gate around a failure-prone path.

    ``threshold`` **consecutive** failures open the breaker; while
    open, :meth:`allow` answers ``False`` (caller takes the degraded
    path) until ``cooldown_s`` has passed, then exactly one caller is
    admitted as a half-open probe.  The probe's outcome closes the
    breaker (success) or re-opens it for another cooldown (failure).
    """

    def __init__(self, threshold: int, cooldown_s: float):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1: {threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive: {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._opens_total = 0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._refresh_locked()

    def allow(self) -> bool:
        """May the protected path be attempted right now?"""
        with self._lock:
            state = self._refresh_locked()
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = BREAKER_CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if (
                self._state == BREAKER_HALF_OPEN
                or self._consecutive_failures >= self.threshold
            ):
                if self._state != BREAKER_OPEN:
                    self._opens_total += 1
                self._state = BREAKER_OPEN
                self._opened_at = time.monotonic()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._refresh_locked(),
                "consecutive_failures": self._consecutive_failures,
                "opens_total": self._opens_total,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }

    def _refresh_locked(self) -> str:
        if (
            self._state == BREAKER_OPEN
            and time.monotonic() - self._opened_at >= self.cooldown_s
        ):
            self._state = BREAKER_HALF_OPEN
        return self._state
