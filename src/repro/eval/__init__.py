"""Evaluation harness: every §III number, every table, every figure.

Because the synthetic corpus carries exact ground truth, each of the
paper's manually-audited results has a precise analogue here:

* 94.49% unique-ingredient match rate -> :func:`unique_ingredient_match_rate`
* 71.6% manual match accuracy on the 5,000 most frequent
  ingredient+state pairs -> :func:`match_accuracy` (scored against
  generator truth instead of human audit)
* 227/1000 phrases matching differently under vanilla vs modified
  Jaccard -> :func:`metric_divergence`
* 36.42 kcal average per-serving error on fully-mapped recipes with
  clean servings -> :func:`calorie_error_report`
"""

from repro.eval.gold import select_evaluation_recipes
from repro.eval.metrics import (
    CalorieErrorReport,
    MatchAccuracyReport,
    calorie_error_report,
    match_accuracy,
    metric_divergence,
    unique_ingredient_match_rate,
)
from repro.eval.tables import (
    render_table_i,
    render_table_ii,
    render_table_iii,
    render_table_iv,
)
from repro.eval.figures import figure_2

__all__ = [
    "select_evaluation_recipes",
    "CalorieErrorReport",
    "MatchAccuracyReport",
    "calorie_error_report",
    "match_accuracy",
    "metric_divergence",
    "unique_ingredient_match_rate",
    "render_table_i",
    "render_table_ii",
    "render_table_iii",
    "render_table_iv",
    "figure_2",
]
