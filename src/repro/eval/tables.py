"""Regenerate the paper's Tables I–IV as formatted text."""

from __future__ import annotations

from repro.core.estimator import NutritionEstimator
from repro.matching.matcher import DescriptionMatcher, MatcherConfig
from repro.recipedb.phrases import PIROSZHKI_TABLE_I
from repro.units.gram_weights import UnitResolver
from repro.usda.database import NutrientDatabase, load_default_database

#: Table II's nineteen example descriptions, verbatim from the paper.
TABLE_II_DESCRIPTIONS: tuple[str, ...] = (
    "Butter, salted",
    "Butter, whipped, with salt",
    "Butter, without salt",
    "Cheese, blue",
    "Cheese, cottage, creamed, large or small curd",
    "Cheese, mozzarella, whole milk",
    "Milk, reduced fat, fluid, 2% milkfat, with added vitamin A and vitamin D",
    "Milk, reduced fat, fluid, 2% milkfat, with added nonfat milk solids "
    "and vitamin A and vitamin D",
    "Milk, reduced fat, fluid, 2% milkfat, protein fortified, "
    "with added vitamin A and vitamin D",
    "Milk, indian buffalo, fluid",
    "Milk shakes, thick chocolate",
    "Milk shakes, thick vanilla",
    "Yogurt, plain, whole milk, 8 grams protein per 8 ounce",
    "Yogurt, vanilla, low fat, 11 grams protein per 8 ounce",
    "Egg, whole, raw, fresh",
    "Egg, white, raw, fresh",
    "Egg, yolk, raw, fresh",
    "Apples, raw, with skin",
    "Apples, raw, without skin",
)

#: Table III's ten (phrase, name, state) probes and the paper's matches.
TABLE_III_ROWS: tuple[tuple[str, str, str, str, str], ...] = (
    # (ingredient phrase, extracted name, state,
    #  paper's modified-JI match, paper's vanilla-JI match)
    ("1 cup red lentil", "red lentils", "",
     "Lentils, pink or red, raw", "Cherries, sour, red, raw"),
    ("1 roma tomato , quartered", "roma tomato", "quartered",
     "Soup, tomato beef with noodle, canned, condensed",
     "Soup, tomato, canned, condensed"),
    ("1/4 teaspoon ground coriander", "coriander", "ground",
     "Coriander (cilantro) leaves, raw", "Spices, coriander leaf, dried"),
    ("2 tablespoons tomato paste", "tomato paste", "",
     "Tomato products, canned, paste, without salt added",
     "Soup, tomato, canned, condensed"),
    ("1 1/4 cups vegetable broth", "vegetable broth", "",
     "Soup, vegetable with beef broth, canned, condensed",
     "Soup, vegetable broth, ready to serve"),
    ("1 can fava beans", "fava beans", "",
     "Broadbeans (fava beans), mature seeds, raw",
     "Beans, fava, in pod, raw"),
    ("1 teaspoon ground cayenne pepper", "cayenne pepper", "ground",
     "Spices, pepper, red or cayenne", "Spices, pepper, black"),
    ("1 whole chicken with giblets patted dry and quartered",
     "chicken with giblets", "patted dry and quartered",
     "Chicken, broilers or fryers, meat and skin and giblets and neck, raw",
     "Fast foods, quesadilla, with chicken"),
    ("2 tablespoons sesame seeds", "sesame seeds", "",
     "Salad dressing, sesame seed dressing, regular",
     "Seeds, sesame seeds, whole, dried"),
    ("1/4 teaspoon ground coriander", "coriander", "ground",
     "Coriander (cilantro) leaves, raw", "Spices, coriander leaf, dried"),
)


def _grid(headers: list[str], rows: list[list[str]]) -> str:
    """Minimal fixed-width table renderer."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in rows)
    return "\n".join(lines)


def render_table_i(estimator: NutritionEstimator | None = None) -> str:
    """Table I: NER tag extraction on the 12 Piroszhki phrases."""
    est = estimator or NutritionEstimator()
    headers = ["Ingredient Phrase", "Name", "State", "Quantity", "Unit",
               "Temperature", "Dry/Fresh", "Size"]
    rows = []
    for phrase, _gold, _expected in PIROSZHKI_TABLE_I:
        parsed = est.parse(phrase)
        rows.append([
            phrase, parsed.name, parsed.state, parsed.quantity,
            parsed.unit, parsed.temperature, parsed.dry_fresh, parsed.size,
        ])
    return _grid(headers, rows)


def render_table_ii(database: NutrientDatabase | None = None) -> str:
    """Table II: example USDA-SR food descriptions (presence-checked)."""
    db = database or load_default_database()
    present = {f.description for f in db}
    rows = [
        [str(i + 1), desc, "yes" if desc in present else "MISSING"]
        for i, desc in enumerate(TABLE_II_DESCRIPTIONS)
    ]
    return _grid(["S.No", "Description", "In curated DB"], rows)


def render_table_iii(database: NutrientDatabase | None = None) -> str:
    """Table III: modified vs vanilla Jaccard inferences, ours vs paper's."""
    db = database or load_default_database()
    modified = DescriptionMatcher(db, MatcherConfig(use_modified_jaccard=True))
    vanilla = DescriptionMatcher(db, MatcherConfig(use_modified_jaccard=False))
    rows = []
    for phrase, name, state, paper_mod, paper_van in TABLE_III_ROWS:
        ours_mod = modified.match(name, state)
        ours_van = vanilla.match(name, state)
        rows.append([
            phrase[:40],
            name,
            (ours_mod.description if ours_mod else "-")[:52],
            (ours_van.description if ours_van else "-")[:52],
            "=" if ours_mod and ours_mod.description == paper_mod else "≠",
        ])
    return _grid(
        ["Ingredient Phrase", "Name", "Ours (modified JI)",
         "Ours (vanilla JI)", "vs paper"],
        rows,
    )


def render_table_iv(database: NutrientDatabase | None = None) -> str:
    """Table IV: ingredient-and-unit relations for Butter, salted."""
    db = database or load_default_database()
    butter = db.get("01001")
    rows = [
        [butter.description, str(p.seq), f"{p.amount:g}", p.unit,
         f"{p.grams:g}", f"{p.grams_per_amount:g}"]
        for p in butter.portions
    ]
    resolver = UnitResolver(butter)
    derived = resolver.resolve("teaspoon")
    if derived is not None:
        rows.append([
            butter.description, "+", "1", "teaspoon (derived by volume)",
            f"{derived.grams_per_unit:.2f}", f"{derived.grams_per_unit:.2f}",
        ])
    return _grid(
        ["ingredient", "seq", "amount", "unit", "grams", "gram per amount"],
        rows,
    )
