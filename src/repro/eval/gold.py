"""Gold-standard selection (paper §III).

"We selected data for which we had 100% mapping of ingredients with
their nutritional values, and had clean, well-defined servings.  This
resulted in 2482 recipes."  The same filter, over our corpus: keep
(recipe, estimate) pairs whose every ingredient line reached full
name+unit mapping and whose servings are well-defined (positive; all
generated recipes qualify, mirroring AllRecipes' structured serving
fields).
"""

from __future__ import annotations

from repro.core.estimator import RecipeEstimate
from repro.recipedb.model import Recipe


def select_evaluation_recipes(
    recipes: list[Recipe],
    estimates: list[RecipeEstimate],
) -> list[tuple[Recipe, RecipeEstimate]]:
    """(recipe, estimate) pairs passing the paper's evaluation filter."""
    if len(recipes) != len(estimates):
        raise ValueError(
            f"{len(recipes)} recipes vs {len(estimates)} estimates"
        )
    selected = []
    for recipe, estimate in zip(recipes, estimates):
        if estimate.fraction_fully_mapped == 1.0 and recipe.servings > 0:
            selected.append((recipe, estimate))
    return selected
