"""Figure 2: percentage mapping of recipes to their nutritional profile."""

from __future__ import annotations

from repro.core.coverage import CoverageHistogram, coverage_histogram
from repro.core.estimator import RecipeEstimate


def figure_2(
    estimates: list[RecipeEstimate],
) -> tuple[CoverageHistogram, CoverageHistogram, str]:
    """Both Figure-2 series plus a combined ASCII rendering.

    Returns (full-mapping histogram, name-mapping histogram, chart).
    The gap between the two series is the paper's point that "the main
    problem lies in matching the units of ingredients".
    """
    full = coverage_histogram(estimates, level="full")
    name = coverage_histogram(estimates, level="name")
    chart = "\n".join(
        [
            "Percentage mapping of recipes to their nutritional profile",
            "",
            "name + unit mapping (full):",
            full.ascii_chart(),
            "",
            "name-only mapping:",
            name.ascii_chart(),
        ]
    )
    return full, name, chart
