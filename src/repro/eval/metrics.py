"""Quantitative metrics mirroring the paper's §III results."""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass

from repro.core.estimator import RecipeEstimate, STATUS_UNMATCHED
from repro.matching.matcher import DescriptionMatcher
from repro.recipedb.model import Recipe


def unique_ingredient_match_rate(
    estimates: list[RecipeEstimate],
) -> tuple[int, int, float]:
    """(matched, total, rate) over unique extracted ingredient names.

    Paper: "we were able to match 94.49% of the unique ingredients
    from the recipes, with the rest remaining unmapped".
    """
    seen: dict[str, bool] = {}
    for estimate in estimates:
        for ingredient in estimate.ingredients:
            name = ingredient.parsed.name.lower()
            if not name:
                continue
            matched = ingredient.status != STATUS_UNMATCHED
            # A name counts as matched if any occurrence matched.
            seen[name] = seen.get(name, False) or matched
    matched = sum(seen.values())
    total = len(seen)
    return matched, total, (matched / total if total else 0.0)


@dataclass(frozen=True, slots=True)
class MatchAccuracyReport:
    """Match accuracy on the most frequent ingredient+state pairs.

    The paper manually audited the 5,000 most frequent pairs and found
    71.6% matched to the best available description.  Ground truth
    replaces the audit here: ``exact`` counts matches to the precise
    true food; ``suitable`` additionally accepts a food whose leading
    description term agrees with the true food's (the paper's "almost
    always gives one of the suitable matches").
    """

    n_pairs: int
    exact: int
    suitable: int

    @property
    def exact_accuracy(self) -> float:
        return self.exact / self.n_pairs if self.n_pairs else 0.0

    @property
    def suitable_accuracy(self) -> float:
        return self.suitable / self.n_pairs if self.n_pairs else 0.0


def match_accuracy(
    recipes: list[Recipe],
    estimates: list[RecipeEstimate],
    top_n: int = 5000,
) -> MatchAccuracyReport:
    """Score matches against generator truth on the most frequent pairs."""
    if len(recipes) != len(estimates):
        raise ValueError(f"{len(recipes)} recipes vs {len(estimates)} estimates")
    # frequency of (extracted name, extracted state) pairs, with one
    # exemplar (truth ndb, matched food) per pair
    freq: Counter[tuple[str, str]] = Counter()
    exemplar: dict[tuple[str, str], tuple[str | None, object | None]] = {}
    for recipe, estimate in zip(recipes, estimates):
        for ingredient, est in zip(recipe.ingredients, estimate.ingredients):
            key = (est.parsed.name.lower(), est.parsed.state.lower())
            if not key[0]:
                continue
            freq[key] += 1
            exemplar.setdefault(
                key, (ingredient.truth.ndb_no, est.match.food if est.match else None)
            )
    pairs = [key for key, _ in freq.most_common(top_n)]
    exact = suitable = scored = 0
    for key in pairs:
        true_ndb, matched_food = exemplar[key]
        if true_ndb is None:
            continue  # unmappable by design; not an accuracy case
        scored += 1
        if matched_food is None:
            continue
        if matched_food.ndb_no == true_ndb:
            exact += 1
            suitable += 1
        else:
            # "one of the suitable matches": same leading term family
            from repro.usda.database import load_default_database

            true_food = load_default_database().get(true_ndb)
            true_head = true_food.terms[0].split()[0].lower().rstrip("s")
            got_head = matched_food.terms[0].split()[0].lower().rstrip("s")
            if true_head == got_head:
                suitable += 1
    return MatchAccuracyReport(n_pairs=scored, exact=exact, suitable=suitable)


def metric_divergence(
    matcher_modified: DescriptionMatcher,
    matcher_vanilla: DescriptionMatcher,
    queries: list[tuple[str, str]],
) -> tuple[int, int]:
    """How many (name, state) queries match differently under J vs J*.

    Paper §II-B(e): "This bias was found to be highly significant with
    227 out of 1000 randomly sampled ingredient phrases from RecipeDB
    having a different match."  Returns (differing, total).
    """
    differing = 0
    total = 0
    for name, state in queries:
        a = matcher_modified.match(name, state)
        b = matcher_vanilla.match(name, state)
        total += 1
        ndb_a = a.food.ndb_no if a else None
        ndb_b = b.food.ndb_no if b else None
        if ndb_a != ndb_b:
            differing += 1
    return differing, total


@dataclass(frozen=True, slots=True)
class CalorieErrorReport:
    """Per-serving calorie error statistics (paper: 36.42 kcal mean)."""

    n_recipes: int
    mean_abs_error: float
    median_abs_error: float
    p90_abs_error: float
    mean_signed_error: float
    mean_gold_calories: float


def calorie_error_report(
    pairs: list[tuple[Recipe, RecipeEstimate]],
) -> tuple[CalorieErrorReport, list[float]]:
    """Error stats over evaluation pairs; also returns raw |errors|."""
    if not pairs:
        raise ValueError("no evaluation pairs")
    abs_errors = []
    signed = []
    golds = []
    for recipe, estimate in pairs:
        err = estimate.per_serving.calories - recipe.gold_calories_per_serving
        signed.append(err)
        abs_errors.append(abs(err))
        golds.append(recipe.gold_calories_per_serving)
    abs_sorted = sorted(abs_errors)
    p90 = abs_sorted[min(len(abs_sorted) - 1, int(0.9 * len(abs_sorted)))]
    report = CalorieErrorReport(
        n_recipes=len(pairs),
        mean_abs_error=statistics.mean(abs_errors),
        median_abs_error=statistics.median(abs_errors),
        p90_abs_error=p90,
        mean_signed_error=statistics.mean(signed),
        mean_gold_calories=statistics.mean(golds),
    )
    return report, abs_errors
