"""Small shared utilities.

Currently: :class:`BoundedCache`, the size-capped memo dict used by the
long-running batch paths (estimator parse cache, matcher token/lemma
and result memos) so corpus-scale processes cannot grow memory without
limit.
"""

from __future__ import annotations

from typing import TypeVar

K = TypeVar("K")
V = TypeVar("V")

#: Default entry cap for per-instance memo caches.  Generous enough
#: that realistic corpora never evict (RecipeDB has ~23k distinct
#: ingredient phrases), small enough to bound a service that sees
#: adversarially diverse input.
DEFAULT_CACHE_CAP = 1 << 17


class BoundedCache(dict[K, V]):
    """A dict memo with a hard size cap and FIFO eviction.

    Insertion past the cap evicts the oldest entry (dicts preserve
    insertion order).  FIFO rather than LRU on purpose: these caches
    memoize pure functions, so an eviction only costs a recompute, and
    FIFO needs no bookkeeping on the hit path — ``get`` stays a plain
    dict lookup.
    """

    def __init__(self, cap: int = DEFAULT_CACHE_CAP):
        if cap <= 0:
            raise ValueError(f"cache cap must be positive: {cap}")
        super().__init__()
        self._cap = cap

    @property
    def cap(self) -> int:
        return self._cap

    def __setitem__(self, key: K, value: V) -> None:
        if key not in self and len(self) >= self._cap:
            del self[next(iter(self))]
        super().__setitem__(key, value)
