"""Small shared utilities.

* :class:`BoundedCache` — the size-capped memo dict used by the
  long-running batch paths (estimator parse cache, matcher token/lemma
  and result memos) so corpus-scale processes cannot grow memory
  without limit.
* :func:`atomic_write_bytes` / :func:`atomic_write_text` — the one
  crash-safe file-replacement path shared by every durable writer in
  the repo (artifact store, run manifests, dead-letter reports,
  benchmark result files).  Write temp file in the target directory,
  fsync, rename: a reader — or a process resuming after a crash —
  observes either the complete old file or the complete new one,
  never a torn write (``tests/test_utils_atomic.py``).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import TypeVar

K = TypeVar("K")
V = TypeVar("V")

#: Internal sentinel distinguishing "absent" from a cached ``None``.
_MISSING = object()

#: Default entry cap for per-instance memo caches.  Generous enough
#: that realistic corpora never evict (RecipeDB has ~23k distinct
#: ingredient phrases), small enough to bound a service that sees
#: adversarially diverse input.
DEFAULT_CACHE_CAP = 1 << 17


class BoundedCache(dict[K, V]):
    """A dict memo with a hard size cap and FIFO eviction.

    Insertion past the cap evicts the oldest entry (dicts preserve
    insertion order).  FIFO rather than LRU on purpose: these caches
    memoize pure functions, so an eviction only costs a recompute, and
    FIFO needs no bookkeeping on the hit path — ``get`` stays a plain
    dict lookup plus one integer increment.

    Effectiveness counters (hits / misses / evictions) are maintained
    on the ``get`` path and surfaced by :meth:`stats`; the service tier
    exposes them per cache in the ``/metrics`` ``caches`` section.
    Callers that cache ``None`` values must probe through ``get`` with
    a private sentinel default rather than ``in`` + ``[]`` (which would
    bypass the counters).
    """

    def __init__(self, cap: int = DEFAULT_CACHE_CAP):
        if cap <= 0:
            raise ValueError(f"cache cap must be positive: {cap}")
        super().__init__()
        self._cap = cap
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def cap(self) -> int:
        return self._cap

    def get(self, key: K, default: V | None = None) -> V | None:  # type: ignore[override]
        value = dict.get(self, key, _MISSING)
        if value is _MISSING:
            self._misses += 1
            return default
        self._hits += 1
        return value  # type: ignore[return-value]

    def __setitem__(self, key: K, value: V) -> None:
        if not dict.__contains__(self, key) and len(self) >= self._cap:
            del self[next(iter(self))]
            self._evictions += 1
        super().__setitem__(key, value)

    def stats(self) -> dict[str, int | float]:
        """Effectiveness snapshot: size, cap, hits, misses, evictions,
        and the derived hit rate (0.0 when the cache was never probed)."""
        probes = self._hits + self._misses
        return {
            "size": len(self),
            "cap": self._cap,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "hit_rate": (self._hits / probes) if probes else 0.0,
        }


# ----------------------------------------------------------------------
# crash-safe file replacement


def atomic_write_bytes(
    path: str | Path, data: bytes, *, fsync: bool = True
) -> int:
    """Replace *path* with *data* atomically; returns the byte count.

    The bytes land in a temp file created in the target's directory
    (same filesystem, so the final ``os.replace`` is an atomic rename),
    are flushed and — with *fsync*, the default — fsync'd before the
    rename.  A crash at any point leaves the target either untouched
    or fully replaced; the temp file is unlinked on every failure
    path.

    mkstemp creates the temp file ``0600`` and ``os.replace`` keeps
    the temp file's mode — without correction, a file written by a
    deploy user would be unreadable by the service account.  The
    ordinary umask-respecting mode is granted instead.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            umask = os.umask(0)
            os.umask(umask)
            os.fchmod(handle.fileno(), 0o666 & ~umask)
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(data)


def atomic_write_text(
    path: str | Path,
    text: str,
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> int:
    """:func:`atomic_write_bytes` for text content."""
    return atomic_write_bytes(
        path, text.encode(encoding), fsync=fsync
    )
