"""Versioned build-once artifact store for instant cold starts.

Every process that serves the pipeline — ``repro serve``, each
sharded-engine worker, CLI ``batch`` runs — needs the same expensive
state: the USDA database, the matcher's preprocessed descriptions and
inverted index, per-food unit tables, and (for the paper's learned
configuration) trained perceptron weights.  This package builds that
state **once** into a single checksummed file and reconstructs a ready
:class:`~repro.core.estimator.NutritionEstimator` from it in
milliseconds, with bit-identical outputs.

Build an artifact (CLI: ``repro build-artifact``)::

    from repro.artifacts import save_artifact
    from repro import NutritionEstimator

    save_artifact("pipeline.artifact", NutritionEstimator())

Load one — directly, or through an
:class:`~repro.pipeline.spec.EstimatorSpec` so sharded workers and the
HTTP service pick it up (``repro serve --artifact``)::

    from repro.artifacts import load_artifact
    from repro import EstimatorSpec

    estimator = load_artifact("pipeline.artifact").build_estimator()
    spec = EstimatorSpec(artifact_path="pipeline.artifact")

File layout, version/checksum rules and the compatibility policy are
documented in ``docs/artifact-format.md``.
"""

from repro.artifacts.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMismatchError,
    ArtifactVersionError,
)
from repro.artifacts.format import FORMAT_VERSION, MAGIC
from repro.artifacts.store import (
    ArtifactSnapshot,
    capture_payload,
    database_fingerprint,
    load_artifact,
    save_artifact,
)

__all__ = [
    "ArtifactCorruptError",
    "ArtifactError",
    "ArtifactMismatchError",
    "ArtifactVersionError",
    "ArtifactSnapshot",
    "FORMAT_VERSION",
    "MAGIC",
    "capture_payload",
    "database_fingerprint",
    "load_artifact",
    "save_artifact",
]
