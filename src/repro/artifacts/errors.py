"""Typed failures for the artifact store.

Every way a snapshot can be unusable maps to one exception class, so
callers (the CLI, ``EstimatorSpec.build``, service startup) can tell
"this file is damaged" from "this file is from the future" from "this
file describes a different database" — and none of them can be
mistaken for a successful load.
"""

from __future__ import annotations


class ArtifactError(Exception):
    """Base class for every artifact-store failure."""


class ArtifactCorruptError(ArtifactError):
    """The file is not a readable artifact.

    Raised for a truncated file, a missing/garbled magic header, a
    payload whose checksum does not match the header, and payloads
    that fail to deserialize or carry non-builtin objects.
    """


class ArtifactVersionError(ArtifactError):
    """The artifact's format version is not supported by this code.

    Raised when the header declares a version newer than
    :data:`repro.artifacts.format.FORMAT_VERSION` (written by a newer
    repro) or an unknown older one.  Rebuild the artifact with
    ``repro build-artifact``.
    """


class ArtifactMismatchError(ArtifactError):
    """The artifact is valid but incompatible with the requesting spec.

    Raised when an :class:`~repro.pipeline.spec.EstimatorSpec` that
    pins a custom food database loads an artifact built against a
    different one — silently serving nutrition numbers from the wrong
    database is the failure mode this class exists to prevent.
    """
