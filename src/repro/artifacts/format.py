"""On-disk artifact container: header, checksum, strict payload codec.

One artifact is one file::

    offset  size  field
    ------  ----  -----------------------------------------------
         0     8  magic  b"REPROART"
         8     4  format version, big-endian uint32
        12     8  payload length in bytes, big-endian uint64
        20    32  SHA-256 digest of the payload bytes
        52     —  payload

The payload is a pickled tree of **plain builtins** (dicts, lists,
strings, numbers, booleans, ``None``).  Reading uses an unpickler
whose ``find_class`` always refuses, so a well-formed artifact cannot
smuggle class instances or code — anything beyond builtins fails as
:class:`~repro.artifacts.errors.ArtifactCorruptError` before any of
it is interpreted.  What goes *into* the payload is the business of
:mod:`repro.artifacts.store`; this module only moves validated bytes.

Writes are atomic: the bytes land in a same-directory temp file that
is fsynced and renamed over the target, so readers (e.g. workers of a
sharded pool starting mid-rebuild) never observe a half-written
artifact.  Validation order on read is magic → version → length →
checksum → deserialize; each failure names what was wrong.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import struct
from pathlib import Path

from repro.artifacts.errors import ArtifactCorruptError, ArtifactVersionError
from repro.utils import atomic_write_bytes

MAGIC = b"REPROART"
#: Current (and only) payload layout version.  Bump on any change to
#: the payload schema; loaders refuse every other version.
FORMAT_VERSION = 1

_HEADER = struct.Struct(">8sIQ32s")
HEADER_SIZE = _HEADER.size


class _BuiltinsOnlyUnpickler(pickle.Unpickler):
    """Unpickler that refuses every global lookup.

    Plain containers and scalars never call ``find_class``, so a
    payload written by :func:`pack_payload` loads fine; anything else
    (class instances, functions, ``__reduce__`` payloads) is rejected
    before construction.
    """

    def find_class(self, module: str, name: str):  # noqa: ARG002
        raise ArtifactCorruptError(
            f"artifact payload references non-builtin object "
            f"{module}.{name}; refusing to load"
        )


def pack_payload(payload: dict) -> bytes:
    """Serialize a builtins-only payload tree to bytes."""
    return pickle.dumps(payload, protocol=4)


def unpack_payload(blob: bytes) -> dict:
    """Deserialize payload bytes written by :func:`pack_payload`."""
    try:
        payload = _BuiltinsOnlyUnpickler(io.BytesIO(blob)).load()
    except ArtifactCorruptError:
        raise
    except Exception as exc:
        raise ArtifactCorruptError(
            f"artifact payload does not deserialize: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise ArtifactCorruptError(
            f"artifact payload root must be a dict, got "
            f"{type(payload).__name__}"
        )
    return payload


def pack_artifact_blob(payload: dict) -> bytes:
    """Serialize *payload* to a complete artifact image (header + body).

    The bytes are exactly what :func:`write_artifact_bytes` puts on
    disk, so one image can back both the artifact file and an
    in-memory handoff (e.g. a shared-memory segment a worker pool
    validates on attach).
    """
    body = pack_payload(payload)
    return (
        _HEADER.pack(
            MAGIC, FORMAT_VERSION, len(body), hashlib.sha256(body).digest()
        )
        + body
    )


def parse_artifact_blob(blob: bytes, source: str = "<memory>") -> dict:
    """Validate and deserialize a complete artifact image.

    Same validation order as :func:`read_artifact_bytes` (magic →
    version → length → checksum → deserialize), with *source* naming
    the blob's origin in error messages.
    """
    if len(blob) < HEADER_SIZE:
        raise ArtifactCorruptError(
            f"{source}: truncated artifact — {len(blob)} bytes is smaller "
            f"than the {HEADER_SIZE}-byte header"
        )
    magic, version, length, digest = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise ArtifactCorruptError(
            f"{source}: not a repro artifact (bad magic {magic!r})"
        )
    if version != FORMAT_VERSION:
        raise ArtifactVersionError(
            f"{source}: artifact format version {version} is not supported "
            f"(this repro reads version {FORMAT_VERSION}); rebuild with "
            f"`repro build-artifact`"
        )
    body = blob[HEADER_SIZE:]
    if len(body) != length:
        raise ArtifactCorruptError(
            f"{source}: truncated artifact — header declares a "
            f"{length}-byte payload but {len(body)} bytes follow"
        )
    if hashlib.sha256(body).digest() != digest:
        raise ArtifactCorruptError(
            f"{source}: payload checksum mismatch — the blob was modified "
            f"or damaged after it was written"
        )
    return unpack_payload(body)


def write_artifact_bytes(path: str | Path, payload: dict) -> int:
    """Write *payload* as a complete artifact file; returns its size.

    The file appears atomically (write temp + fsync + rename) and is
    byte-deterministic: the same payload tree always produces the
    same file, so rebuild-and-compare is a valid freshness check.
    """
    return atomic_write_bytes(path, pack_artifact_blob(payload))


def read_artifact_digest(path: str | Path) -> str:
    """Payload SHA-256 hex digest from an artifact's header alone.

    Reads only the fixed-size header — no payload validation — so a
    run manifest can bind itself to the exact artifact file it was
    started from without paying a full load.
    """
    with open(path, "rb") as handle:
        head = handle.read(HEADER_SIZE)
    if len(head) < HEADER_SIZE:
        raise ArtifactCorruptError(
            f"{path}: truncated artifact — {len(head)} bytes is smaller "
            f"than the {HEADER_SIZE}-byte header"
        )
    magic, _version, _length, digest = _HEADER.unpack(head)
    if magic != MAGIC:
        raise ArtifactCorruptError(
            f"{path}: not a repro artifact (bad magic {magic!r})"
        )
    return digest.hex()


def read_artifact_bytes(path: str | Path) -> dict:
    """Read, validate and deserialize an artifact file.

    Raises
    ------
    ArtifactCorruptError
        Truncated file, wrong magic, payload shorter/longer than the
        header claims, checksum mismatch, or undeserializable payload.
    ArtifactVersionError
        Any format version other than :data:`FORMAT_VERSION`.
    OSError
        The file cannot be opened/read at all (missing path, perms).
    """
    blob = Path(path).read_bytes()
    if len(blob) < HEADER_SIZE:
        raise ArtifactCorruptError(
            f"{path}: truncated artifact — {len(blob)} bytes is smaller "
            f"than the {HEADER_SIZE}-byte header"
        )
    magic, version, length, digest = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise ArtifactCorruptError(
            f"{path}: not a repro artifact (bad magic {magic!r})"
        )
    if version != FORMAT_VERSION:
        raise ArtifactVersionError(
            f"{path}: artifact format version {version} is not supported "
            f"(this repro reads version {FORMAT_VERSION}); rebuild with "
            f"`repro build-artifact`"
        )
    body = blob[HEADER_SIZE:]
    if len(body) != length:
        raise ArtifactCorruptError(
            f"{path}: truncated artifact — header declares a "
            f"{length}-byte payload but {len(body)} bytes follow"
        )
    if hashlib.sha256(body).digest() != digest:
        raise ArtifactCorruptError(
            f"{path}: payload checksum mismatch — the file was modified "
            f"or damaged after it was written"
        )
    return unpack_payload(body)
