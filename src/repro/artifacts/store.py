"""Capture and restore of ready-to-serve estimator state.

``save_artifact`` walks a live :class:`NutritionEstimator` and writes
everything expensive to construct into one checksummed file (layout:
:mod:`repro.artifacts.format`):

* the nutrient database rows and its matching vocabulary,
* the matcher's preprocessed description word sets and inverted index,
* per-food unit → gram-weight tables,
* the NER tagger — the rule tagger by kind, a trained perceptron as
  its interned feature ids plus ``(n_features, K)`` weight matrix.

``load_artifact`` validates and returns an :class:`ArtifactSnapshot`
whose :meth:`~ArtifactSnapshot.build_estimator` reconstructs a warm
estimator **without touching the build path** — no USDA data-module
import, no description lemmatization, no portion normalization, no
training.  Restored state is exactly what the builder captured, so a
loaded estimator's output is bit-identical to a freshly built one
(``tests/test_artifact_parity.py``).

Runtime memo caches and corpus fallback observations are deliberately
*not* captured: they are per-process performance state, rebuilt from
traffic, and the two-phase corpus protocol recomputes unit statistics
per corpus anyway.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
from collections.abc import Iterable
from pathlib import Path

from repro import __version__
from repro.artifacts.errors import (
    ArtifactCorruptError,
    ArtifactError,
)
from repro.artifacts.format import (
    FORMAT_VERSION,
    read_artifact_bytes,
    write_artifact_bytes,
)
from repro.core.estimator import NutritionEstimator
from repro.matching.index import DescriptionIndex
from repro.matching.matcher import DescriptionMatcher, MatcherConfig
from repro.matching.preprocess import PreprocessedDescription
from repro.ner.rule_tagger import RuleBasedTagger
from repro.units.fallback import DEFAULT_MAX_GRAMS, UnitFallback
from repro.units.gram_weights import UnitResolver
from repro.usda.database import NutrientDatabase
from repro.usda.schema import FoodItem, Portion
from repro.utils import DEFAULT_CACHE_CAP


def _food_rows(foods: Iterable[FoodItem]) -> list:
    """Plain-builtins projection of food records, in database order."""
    return [
        [
            food.ndb_no,
            food.description,
            food.food_group,
            dict(food.nutrients),
            [[p.seq, p.amount, p.unit, p.grams] for p in food.portions],
        ]
        for food in foods
    ]


def database_fingerprint(foods: Iterable[FoodItem]) -> str:
    """Stable SHA-256 hex digest identifying a food database's content.

    Computed over a canonical JSON serialization of the rows (sorted
    keys, ``repr``-exact floats), so the digest depends only on the
    records and their order — not on pickle details or Python version.
    """
    canonical = json.dumps(
        _food_rows(foods), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _capture_tagger(tagger) -> dict:
    if isinstance(tagger, RuleBasedTagger):
        return {"kind": "rule"}
    # Imported lazily so rule-tagger artifacts never pull numpy here.
    from repro.ner.perceptron import AveragedPerceptronTagger

    if isinstance(tagger, AveragedPerceptronTagger):
        return {"kind": "perceptron", "state": tagger.snapshot()}
    raise ArtifactError(
        f"cannot capture tagger of type {type(tagger).__name__}: only "
        "the rule tagger and trained AveragedPerceptronTagger are "
        "artifact-serializable"
    )


def capture_payload(estimator: NutritionEstimator) -> dict:
    """The full artifact payload tree for one estimator (builtins only)."""
    db = estimator.database
    foods = list(db)
    descriptions = estimator.matcher.descriptions
    postings, word_counts, has_raw = estimator.matcher.index.to_parts()
    payload = {
        "meta": {
            "format": FORMAT_VERSION,
            "repro_version": __version__,
            "foods": len(foods),
            "vocabulary_words": len(db.vocabulary()),
            "tagger": None,  # filled below
        },
        "database": {
            "fingerprint": database_fingerprint(foods),
            "rows": _food_rows(foods),
            "vocabulary": sorted(db.vocabulary()),
        },
        "matcher": {
            "descriptions": [
                [sorted(d.words), dict(d.term_priority), bool(d.has_raw)]
                for d in descriptions
            ],
            # Key order canonicalized: a live index's postings dict is
            # keyed in word-set iteration order, which varies with str
            # hash randomization across processes.  Postings are only
            # ever read by key, so sorting costs nothing semantically
            # and makes artifact bytes process-independent.
            "postings": {
                word: list(ids) for word, ids in sorted(postings.items())
            },
            "word_counts": list(word_counts),
            "has_raw": [bool(flag) for flag in has_raw],
        },
        "units": {
            food.ndb_no: UnitResolver(food).known_units() for food in foods
        },
        "tagger": _capture_tagger(estimator.tagger),
    }
    payload["meta"]["tagger"] = payload["tagger"]["kind"]
    return payload


def save_artifact(path: str | Path, estimator: NutritionEstimator) -> int:
    """Capture *estimator* into an artifact file; returns bytes written."""
    return write_artifact_bytes(path, capture_payload(estimator))


class ArtifactSnapshot:
    """A validated, loaded artifact, ready to hand out components."""

    def __init__(self, path: str | Path, payload: dict):
        self._path = str(path)
        self._payload = payload

    @property
    def path(self) -> str:
        return self._path

    @property
    def meta(self) -> dict:
        """Build-time metadata (repro version, counts, tagger kind)."""
        return dict(self._payload["meta"])

    @property
    def fingerprint(self) -> str:
        """The captured database's :func:`database_fingerprint`."""
        return self._payload["database"]["fingerprint"]

    @property
    def tagger_kind(self) -> str:
        return self._payload["tagger"]["kind"]

    def database(self) -> NutrientDatabase:
        """A fresh :class:`NutrientDatabase` from the captured rows.

        Skips the ``repro.usda.data`` module import entirely; the
        vocabulary is installed precomputed, so no description scan
        runs either.
        """
        try:
            db = NutrientDatabase(
                FoodItem(
                    ndb_no=ndb,
                    description=description,
                    food_group=group,
                    nutrients=dict(nutrients),
                    portions=tuple(
                        Portion(seq, amount, unit, grams)
                        for seq, amount, unit, grams in portions
                    ),
                )
                for ndb, description, group, nutrients, portions in (
                    self._payload["database"]["rows"]
                )
            )
            db.install_vocabulary(self._payload["database"]["vocabulary"])
        except ArtifactError:
            raise
        except Exception as exc:
            raise ArtifactCorruptError(
                f"{self._path}: database section does not restore: {exc}"
            ) from None
        return db

    def build_tagger(self):
        """The captured NER tagger (rule tagger or trained perceptron)."""
        section = self._payload["tagger"]
        kind = section.get("kind")
        if kind == "rule":
            return RuleBasedTagger()
        if kind == "perceptron":
            from repro.ner.perceptron import AveragedPerceptronTagger

            try:
                return AveragedPerceptronTagger.from_snapshot(
                    section["state"]
                )
            except Exception as exc:
                raise ArtifactCorruptError(
                    f"{self._path}: perceptron state does not restore: "
                    f"{exc}"
                ) from None
        raise ArtifactCorruptError(
            f"{self._path}: unknown tagger kind {kind!r}"
        )

    def build_estimator(
        self,
        matcher_config: MatcherConfig | None = None,
        tagger=None,
        max_grams: float = DEFAULT_MAX_GRAMS,
        cache_cap: int = DEFAULT_CACHE_CAP,
    ) -> NutritionEstimator:
        """A ready estimator assembled purely from captured state.

        *matcher_config*, *max_grams* and *cache_cap* are runtime
        configuration, not captured state — the description word sets
        and index are config-independent, so any :class:`MatcherConfig`
        can be applied to the same snapshot.  *tagger* overrides the
        captured tagger when given (an explicit choice, never silent).
        """
        db = self.database()
        section = self._payload["matcher"]
        try:
            descriptions = [
                PreprocessedDescription(
                    words=frozenset(words),
                    term_priority=dict(priority),
                    has_raw=bool(raw),
                )
                for words, priority, raw in section["descriptions"]
            ]
            index = DescriptionIndex.from_parts(
                section["postings"],
                section["word_counts"],
                section["has_raw"],
            )
            resolvers = {
                ndb: UnitResolver.from_parts(db.get(ndb), grams)
                for ndb, grams in self._payload["units"].items()
            }
        except ArtifactError:
            raise
        except Exception as exc:
            raise ArtifactCorruptError(
                f"{self._path}: matcher/unit sections do not restore: "
                f"{exc}"
            ) from None
        matcher = DescriptionMatcher.from_precomputed(
            db,
            descriptions,
            index,
            config=matcher_config,
            cache_cap=cache_cap,
        )
        return NutritionEstimator(
            database=db,
            tagger=tagger if tagger is not None else self.build_tagger(),
            fallback=UnitFallback(max_grams),
            cache_cap=cache_cap,
            matcher=matcher,
            resolvers=resolvers,
        )


def _validate_schema(path: str | Path, payload: dict) -> None:
    """Cheap structural check so load failures surface at load time."""
    required = {"meta", "database", "matcher", "units", "tagger"}
    missing = required - payload.keys()
    if missing:
        raise ArtifactCorruptError(
            f"{path}: payload is missing sections {sorted(missing)}"
        )
    for section in required:
        if not isinstance(payload[section], dict):
            raise ArtifactCorruptError(
                f"{path}: section {section!r} must be a dict, got "
                f"{type(payload[section]).__name__}"
            )
    db = payload["database"]
    matcher = payload["matcher"]
    if not isinstance(db.get("rows"), list) or not isinstance(
        db.get("fingerprint"), str
    ):
        raise ArtifactCorruptError(
            f"{path}: database section is malformed"
        )
    descriptions = matcher.get("descriptions")
    if not isinstance(descriptions, list):
        raise ArtifactCorruptError(
            f"{path}: matcher section is malformed"
        )
    if len(descriptions) != len(db["rows"]):
        raise ArtifactCorruptError(
            f"{path}: {len(descriptions)} preprocessed descriptions for "
            f"{len(db['rows'])} foods"
        )


def load_artifact(path: str | Path, cache: bool = True) -> ArtifactSnapshot:
    """Load and validate an artifact file.

    With ``cache=True`` (default) repeated loads of an unchanged file
    — e.g. ``EstimatorSpec.database()`` followed by ``build()``, or
    many service threads — reuse one parsed payload, keyed on
    ``(path, mtime, size)`` so an overwritten artifact is re-read.
    The cached payloads stay resident for the process lifetime, which
    is a deliberate trade: payloads are a few hundred KB of builtins
    (~2 MB worst case at ``maxsize=8``), cheap next to the estimators
    built from them, and a warm entry keeps repeated ``build()`` calls
    at memory-speed.  Pass ``cache=False`` for one-shot tooling that
    must not pin the payload.
    """
    resolved = Path(path).resolve()
    if not cache:
        return _load_uncached(str(resolved))
    stat = os.stat(resolved)
    return _load_cached(str(resolved), stat.st_mtime_ns, stat.st_size)


def _load_uncached(path: str) -> ArtifactSnapshot:
    payload = read_artifact_bytes(path)
    _validate_schema(path, payload)
    return ArtifactSnapshot(path, payload)


@functools.lru_cache(maxsize=8)
def _load_cached(path: str, mtime_ns: int, size: int) -> ArtifactSnapshot:
    return _load_uncached(path)
