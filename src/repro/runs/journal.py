"""Append-only, checksummed chunk journal for durable batch runs.

One journal is one file of self-delimiting frames::

    offset  size  field
    ------  ----  -----------------------------------------------
         0     4  magic  b"RJL1"
         4     1  record kind (PLAN/COLLECT/CHECKPOINT/FALLBACK/COMPLETE)
         5     8  payload length in bytes, big-endian uint64
        13    32  SHA-256 digest of the payload bytes
        45     —  payload (builtins-only pickle, dict root — the same
                  restricted codec as :mod:`repro.artifacts.format`)

Appends are crash-safe the cheap way: the whole frame is one
``write()`` call on an append-mode handle, flushed and **fsync'd**
before :meth:`append` returns.  No rename dance — an append either
reaches the disk completely or leaves a *torn tail*, and the reader
is built around exactly that failure shape.

**Torn-tail semantics:** :meth:`scan` walks frames front to back and
stops at the first one that is short, has bad magic, or fails its
checksum.  Everything before that point is the valid prefix;
everything from it on is the torn tail, which :meth:`open_for_append`
truncates away before resuming.  A chunk whose frame was torn is
simply re-executed — chunk results are pure functions of chunk
content, so the replacement frame is bit-identical to what the torn
one would have said (the engine's exact-parity property doing
double duty as a recovery guarantee).

The driver-kill fault sites live here: ``crash@journal-append:N``
hard-exits immediately before frame N is written (a clean
chunk-boundary kill) and ``corrupt@journal-append:N`` fsyncs *half*
of frame N and then hard-exits (a mid-append power cut), giving the
chaos suite both failure shapes deterministically.
"""

from __future__ import annotations

import hashlib
import os
import struct
from pathlib import Path
from typing import NamedTuple

from repro import faults
from repro.artifacts.format import pack_payload, unpack_payload

MAGIC = b"RJL1"

#: Record kinds, in the order a clean run appends them.
KIND_PLAN = 1  # chunk plan: distinct lines, chunk size, chunk counts
KIND_COLLECT = 2  # one phase-1 chunk result (wire + snapshot + letters)
KIND_CHECKPOINT = 3  # phase boundary: the merged unit tables
KIND_FALLBACK = 4  # one phase-3 chunk result
KIND_COMPLETE = 5  # the run finished; payload is the report summary

KIND_NAMES = {
    KIND_PLAN: "plan",
    KIND_COLLECT: "collect",
    KIND_CHECKPOINT: "checkpoint",
    KIND_FALLBACK: "fallback",
    KIND_COMPLETE: "complete",
}

_FRAME = struct.Struct(">4sBQ32s")
FRAME_HEADER_SIZE = _FRAME.size

#: Fault-injection site name for driver kills at journal appends.
FAULT_SITE = "journal-append"


class JournalRecord(NamedTuple):
    """One validated frame."""

    kind: int
    payload: dict
    offset: int  # byte offset of the frame's header in the file


class ScanResult(NamedTuple):
    """Everything one front-to-back journal walk learns."""

    records: list[JournalRecord]
    valid_bytes: int  # length of the valid prefix
    torn_bytes: int  # bytes after it (0 for a cleanly-closed journal)


class RunJournal:
    """The chunk journal of one run directory."""

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._handle = None
        self._frames = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def frames(self) -> int:
        """Frames currently in the file (valid prefix only)."""
        return self._frames

    # ------------------------------------------------------------------
    # reading

    def scan(self) -> ScanResult:
        """Validate the journal front to back (see torn-tail semantics)."""
        try:
            blob = self._path.read_bytes()
        except FileNotFoundError:
            return ScanResult([], 0, 0)
        records: list[JournalRecord] = []
        offset = 0
        size = len(blob)
        while offset + FRAME_HEADER_SIZE <= size:
            magic, kind, length, digest = _FRAME.unpack_from(blob, offset)
            if magic != MAGIC or kind not in KIND_NAMES:
                break
            start = offset + FRAME_HEADER_SIZE
            end = start + length
            if end > size:
                break
            payload_bytes = blob[start:end]
            if hashlib.sha256(payload_bytes).digest() != digest:
                break
            try:
                payload = unpack_payload(payload_bytes)
            except Exception:
                # Checksum-valid but undecodable: treat as torn anyway —
                # discarding the frame only costs re-executing its
                # chunk, and nothing downstream ever sees the bytes.
                break
            records.append(JournalRecord(kind, payload, offset))
            offset = end
        return ScanResult(records, offset, size - offset)

    # ------------------------------------------------------------------
    # writing

    def create(self) -> None:
        """Start an empty journal (the file must not hold frames yet)."""
        self._path.touch()
        self._handle = self._path.open("ab")
        self._frames = 0

    def open_for_append(self) -> ScanResult:
        """Validate, truncate any torn tail, and open for appending."""
        scanned = self.scan()
        if scanned.torn_bytes:
            with self._path.open("r+b") as handle:
                handle.truncate(scanned.valid_bytes)
        self._handle = self._path.open("ab")
        self._frames = len(scanned.records)
        return scanned

    def append(self, kind: int, payload: dict) -> None:
        """Durably append one frame (single write + flush + fsync)."""
        if self._handle is None:
            raise RuntimeError(
                "journal is not open for appending "
                "(call create() or open_for_append())"
            )
        frame_index = self._frames
        body = pack_payload(payload)
        frame = (
            _FRAME.pack(MAGIC, kind, len(body), hashlib.sha256(body).digest())
            + body
        )
        plan = faults.active_plan()
        if plan is not None:
            # crash@journal-append:N — die before any bytes of frame N.
            plan.fire(FAULT_SITE, frame_index)
            if plan.wants_torn_write(FAULT_SITE, frame_index):
                # corrupt@journal-append:N — fsync a *partial* frame,
                # then die: the on-disk torn tail is real.
                self._handle.write(frame[: max(1, len(frame) // 2)])
                self._handle.flush()
                os.fsync(self._handle.fileno())
                os._exit(faults.CRASH_EXIT_CODE)
        self._handle.write(frame)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._frames += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
