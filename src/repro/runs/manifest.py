"""Run manifests: what a durable run was, bindingly.

The manifest is the first file a run directory gets and the first
thing a resume reads.  It binds the run to

* the **corpus identity** — path (advisory), byte size, and a SHA-256
  over a sampled prefix (:data:`PREFIX_SAMPLE_BYTES`).  Size plus
  prefix hash catches the realistic drift cases (regenerated corpus,
  appended lines, different file) without re-hashing a multi-GB file
  on every resume; content drift *past* the sampled prefix is caught
  downstream by the journal's chunk-plan and checkpoint consistency
  checks (:class:`~repro.runs.errors.RunJournalError`).
* the **database identity** — the same fingerprint the artifact store
  enforces (:func:`repro.artifacts.store.database_fingerprint`), plus
  the artifact path and its header SHA-256 when the run was
  artifact-backed.  A resume against a different database refuses
  with a typed mismatch instead of producing silently different
  numbers.
* the **run config** that shapes chunking and quarantine —
  ``chunk_size``, ``quarantine``, ``max_grams``.  These must match on
  resume because journaled frames are addressed by chunk index.
  ``workers`` is recorded but *not* enforced: chunk results are pure
  functions of chunk content, so a run started with 4 workers resumes
  bit-identically on 2.

Manifests are JSON, written atomically via
:func:`repro.utils.atomic_write_text`; the status field moves
``running`` → ``completed`` (or ``interrupted``, when a signal
handler got to say goodbye — a SIGKILL leaves ``running`` behind,
which is exactly what ``repro runs list`` shows for it).
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.runs.errors import RunManifestError, RunMismatchError
from repro.utils import atomic_write_text

MANIFEST_NAME = "manifest.json"

#: How much of the corpus file the identity hash samples.
PREFIX_SAMPLE_BYTES = 1 << 20

STATUS_RUNNING = "running"
STATUS_COMPLETED = "completed"
STATUS_INTERRUPTED = "interrupted"


def new_run_id() -> str:
    """A unique, sortable run id (timestamp + pid + random suffix)."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"run-{stamp}-{os.getpid():05d}-{secrets.token_hex(3)}"


def corpus_identity(path: str | Path) -> dict:
    """The manifest's corpus-identity block for a JSONL file."""
    path = Path(path)
    size = path.stat().st_size
    digest = hashlib.sha256()
    sampled = 0
    with path.open("rb") as handle:
        while sampled < PREFIX_SAMPLE_BYTES:
            block = handle.read(min(65536, PREFIX_SAMPLE_BYTES - sampled))
            if not block:
                break
            digest.update(block)
            sampled += len(block)
    return {
        "path": str(path),
        "bytes": size,
        "prefix_bytes": sampled,
        "prefix_sha256": digest.hexdigest(),
    }


@dataclass
class RunManifest:
    """One run directory's manifest (see the module docstring)."""

    run_id: str
    created_at: str
    repro_version: str
    corpus: dict
    config: dict
    database: dict
    status: str = STATUS_RUNNING
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "created_at": self.created_at,
            "repro_version": self.repro_version,
            "corpus": self.corpus,
            "config": self.config,
            "database": self.database,
            "status": self.status,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        try:
            return cls(
                run_id=data["run_id"],
                created_at=data["created_at"],
                repro_version=data["repro_version"],
                corpus=dict(data["corpus"]),
                config=dict(data["config"]),
                database=dict(data["database"]),
                status=data.get("status", STATUS_RUNNING),
                extra=dict(data.get("extra", {})),
            )
        except (KeyError, TypeError) as exc:
            raise RunManifestError(
                f"run manifest is missing required fields: {exc!r}"
            ) from None

    # ------------------------------------------------------------------
    # persistence

    def save(self, run_dir: str | Path) -> Path:
        path = Path(run_dir) / MANIFEST_NAME
        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, run_dir: str | Path) -> "RunManifest":
        path = Path(run_dir) / MANIFEST_NAME
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise RunManifestError(
                f"{run_dir}: not a run directory (no {MANIFEST_NAME})"
            ) from None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RunManifestError(
                f"{path}: manifest does not parse as JSON: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise RunManifestError(f"{path}: manifest root must be an object")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # resume verification

    def verify_corpus(self, path: str | Path) -> None:
        """Refuse a resume whose corpus is not the one journaled.

        The path itself is advisory (runs move between hosts); size
        and prefix hash are binding.
        """
        actual = corpus_identity(path)
        for key in ("bytes", "prefix_bytes", "prefix_sha256"):
            if actual[key] != self.corpus[key]:
                raise RunMismatchError(
                    f"corpus {key}", self.corpus[key], actual[key]
                )

    def verify_config(
        self,
        *,
        chunk_size: int,
        quarantine: bool,
        max_grams: float,
        database_fingerprint: str,
        dedup: bool = True,
    ) -> None:
        """Refuse a resume whose chunking/config diverges."""
        checks = (
            ("chunk_size", self.config.get("chunk_size"), chunk_size),
            ("quarantine", self.config.get("quarantine"), quarantine),
            ("max_grams", self.config.get("max_grams"), max_grams),
            # Journaled frames address chunks of the line table, whose
            # very shape depends on duplicate collapse; manifests from
            # before the key exist only for dedup runs (the default).
            ("dedup", self.config.get("dedup", True), dedup),
            (
                "database fingerprint",
                self.database.get("fingerprint"),
                database_fingerprint,
            ),
        )
        for field_name, expected, actual in checks:
            if expected != actual:
                raise RunMismatchError(field_name, expected, actual)
