"""The run directory: manifest + journal + dead-letter report.

Layout of one run directory::

    RUN_DIR/
      manifest.json        # identity + config binding (atomic writes)
      journal.bin          # append-only checksummed chunk journal
      dead_letters.jsonl   # run-id-stamped quarantine report

:class:`DurableRun` is the engine-facing handle: it owns creating /
reopening the directory, turning journal frames into replayable chunk
results, and appending new frames as the run progresses.  The module
also provides the read-only summaries behind ``repro runs list`` and
``repro runs show``.
"""

from __future__ import annotations

from pathlib import Path

from repro.deadletter import REPORT_NAME, DeadLetter
from repro.runs.errors import RunDirectoryError, RunJournalError
from repro.runs.journal import (
    KIND_CHECKPOINT,
    KIND_COLLECT,
    KIND_COMPLETE,
    KIND_FALLBACK,
    KIND_NAMES,
    KIND_PLAN,
    JournalRecord,
    RunJournal,
)
from repro.runs.manifest import (
    MANIFEST_NAME,
    STATUS_COMPLETED,
    STATUS_INTERRUPTED,
    RunManifest,
)

JOURNAL_NAME = "journal.bin"


def _letters_to_payload(letters) -> list:
    return [letter.to_dict() for letter in letters]


def _letters_from_payload(raw) -> list[DeadLetter]:
    return [DeadLetter(**record) for record in raw]


class DurableRun:
    """One run directory, open for journaling or replay.

    Create for a fresh run, :meth:`open` to resume.  After open, the
    ``plan`` / ``collect`` / ``checkpoint`` / ``fallback`` /
    ``complete`` attributes hold everything the valid journal prefix
    knew; the engine replays those and journals only what is missing.
    """

    def __init__(
        self,
        path: Path,
        manifest: RunManifest,
        journal: RunJournal,
        *,
        resumed: bool,
        torn_bytes: int = 0,
    ):
        self.path = path
        self.manifest = manifest
        self.journal = journal
        self.resumed = resumed
        self.torn_bytes = torn_bytes
        self.plan: dict | None = None
        self.collect: dict[int, tuple] = {}
        self.checkpoint: dict | None = None
        self.fallback: dict[int, tuple] = {}
        self.complete: bool = False

    # ------------------------------------------------------------------
    # lifecycle

    @classmethod
    def create(cls, run_dir: str | Path, manifest: RunManifest) -> "DurableRun":
        path = Path(run_dir)
        path.mkdir(parents=True, exist_ok=True)
        if (path / MANIFEST_NAME).exists():
            raise RunDirectoryError(
                f"{path}: already contains a run "
                f"(resume it with --resume, or pick a fresh directory)"
            )
        manifest.save(path)
        journal = RunJournal(path / JOURNAL_NAME)
        journal.create()
        return cls(path, manifest, journal, resumed=False)

    @classmethod
    def open(cls, run_dir: str | Path) -> "DurableRun":
        path = Path(run_dir)
        manifest = RunManifest.load(path)
        journal = RunJournal(path / JOURNAL_NAME)
        scanned = journal.open_for_append()
        run = cls(
            path,
            manifest,
            journal,
            resumed=True,
            torn_bytes=scanned.torn_bytes,
        )
        for record in scanned.records:
            run._absorb(record)
        return run

    def close(self) -> None:
        self.journal.close()

    # ------------------------------------------------------------------
    # replay state

    def _absorb(self, record: JournalRecord) -> None:
        payload = record.payload
        if record.kind == KIND_PLAN:
            self.plan = payload
        elif record.kind == KIND_COLLECT:
            self.collect[payload["chunk"]] = (
                payload["wire"],
                payload["snapshot"],
                _letters_from_payload(payload["letters"]),
            )
        elif record.kind == KIND_CHECKPOINT:
            self.checkpoint = payload["snapshot"]
        elif record.kind == KIND_FALLBACK:
            self.fallback[payload["chunk"]] = (
                payload["present"],
                payload["wire"],
                _letters_from_payload(payload["letters"]),
            )
        elif record.kind == KIND_COMPLETE:
            self.complete = True

    def begin(self, *, n_chunks: int, distinct_lines: int,
              chunk_size: int) -> None:
        """Bind the recomputed chunk plan to the journaled one.

        Fresh run: journal the plan.  Resume: the recomputed plan must
        equal the journaled one — a divergence means the corpus
        changed past the manifest's sampled prefix, so every journaled
        chunk index would be pointing into a different chunking.
        """
        recomputed = {
            "n_chunks": n_chunks,
            "distinct_lines": distinct_lines,
            "chunk_size": chunk_size,
        }
        if self.plan is None:
            self.journal.append(KIND_PLAN, recomputed)
            self.plan = recomputed
            return
        if self.plan != recomputed:
            raise RunJournalError(
                f"journaled chunk plan {self.plan} does not match the "
                f"recomputed plan {recomputed} — the corpus content "
                f"changed since the run was started"
            )
        out_of_range = [i for i in self.collect if i >= n_chunks]
        if out_of_range:
            raise RunJournalError(
                f"journal holds collect chunks {sorted(out_of_range)} "
                f"past the {n_chunks}-chunk plan"
            )

    # ------------------------------------------------------------------
    # appends (each one durable before it returns)

    def record_collect(self, chunk: int, wire: bytes, snapshot: dict,
                       letters) -> None:
        self.journal.append(
            KIND_COLLECT,
            {
                "chunk": chunk,
                "wire": wire,
                "snapshot": snapshot,
                "letters": _letters_to_payload(letters),
            },
        )

    def record_checkpoint(self, snapshot: dict) -> None:
        self.journal.append(KIND_CHECKPOINT, {"snapshot": snapshot})
        self.checkpoint = snapshot

    def record_fallback(self, chunk: int, present, wire: bytes,
                        letters) -> None:
        self.journal.append(
            KIND_FALLBACK,
            {
                "chunk": chunk,
                "present": list(present),
                "wire": wire,
                "letters": _letters_to_payload(letters),
            },
        )

    def record_complete(self, report: dict) -> None:
        self.journal.append(KIND_COMPLETE, {"report": report})
        self.complete = True
        self.manifest.status = STATUS_COMPLETED
        self.manifest.save(self.path)


def mark_interrupted(run_dir: str | Path) -> None:
    """Stamp a run as cleanly interrupted (the SIGINT/SIGTERM path).

    A SIGKILL never gets here — its runs keep status ``running``,
    which is how ``repro runs list`` distinguishes "died hard" from
    "was asked to stop and flushed".
    """
    manifest = RunManifest.load(run_dir)
    if manifest.status != STATUS_COMPLETED:
        manifest.status = STATUS_INTERRUPTED
        manifest.save(run_dir)


# ----------------------------------------------------------------------
# inspection (``repro runs list`` / ``repro runs show``)


def is_run_dir(path: str | Path) -> bool:
    return (Path(path) / MANIFEST_NAME).is_file()


def iter_run_dirs(root: str | Path) -> list[Path]:
    """Run directories under *root* (or *root* itself), sorted by name."""
    root = Path(root)
    if is_run_dir(root):
        return [root]
    if not root.is_dir():
        raise RunDirectoryError(f"{root}: not a directory")
    return sorted(
        (child for child in root.iterdir() if is_run_dir(child)),
        key=lambda p: p.name,
    )


def run_summary(run_dir: str | Path) -> dict:
    """Everything ``runs show`` prints, as one plain dict."""
    path = Path(run_dir)
    manifest = RunManifest.load(path)
    journal = RunJournal(path / JOURNAL_NAME)
    scanned = journal.scan()
    kinds = {name: 0 for name in KIND_NAMES.values()}
    for record in scanned.records:
        kinds[KIND_NAMES[record.kind]] += 1
    plan = next(
        (r.payload for r in scanned.records if r.kind == KIND_PLAN), None
    )
    report_path = path / REPORT_NAME
    dead_letters = None
    if report_path.is_file():
        with report_path.open(encoding="utf-8") as handle:
            dead_letters = sum(1 for line in handle if line.strip())
    return {
        "run_dir": str(path),
        "run_id": manifest.run_id,
        "status": manifest.status,
        "created_at": manifest.created_at,
        "corpus": manifest.corpus,
        "config": manifest.config,
        "database": manifest.database,
        "journal": {
            "frames": len(scanned.records),
            "valid_bytes": scanned.valid_bytes,
            "torn_bytes": scanned.torn_bytes,
            "records": kinds,
            "complete": kinds["complete"] > 0,
            "planned_chunks": plan["n_chunks"] if plan else None,
        },
        "dead_letters": dead_letters,
    }
