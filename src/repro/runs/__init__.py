"""Durable batch runs: crash-safe checkpointing and journaled resume.

PR 6 made the batch pipeline survive *worker* death; this package
makes it survive **driver** death — OOM kills, host reboots, plain
``kill -9`` at line 900k of a Recipe1M+-scale corpus.  Every durable
``repro batch`` invocation gets a run directory holding

* a **manifest** (:mod:`repro.runs.manifest`) binding the run to the
  corpus identity, the database/artifact fingerprint, and the chunking
  config;
* an append-only, checksummed, fsync'd **chunk journal**
  (:mod:`repro.runs.journal`) recording every phase-1/phase-3 chunk
  result — through the existing wire codec — plus each chunk's unit
  -observation snapshot and a phase-boundary checkpoint of the merged
  unit tables;
* the run-id-stamped **dead-letter report**
  (:func:`repro.deadletter.write_report_jsonl`).

``repro batch --resume RUN_DIR`` verifies the manifest (typed
:class:`~repro.runs.errors.RunMismatchError` on drift), truncates any
torn journal tail, replays journaled chunks in shard order, and
re-executes only what is missing through the supervised pool.  Because
chunk results are pure functions of chunk content and the merge is in
chunk order, the resumed output is **bit-identical** to an
uninterrupted run — pinned by killing the driver at every chunk
boundary (and mid-append) in ``tests/test_durable_resume.py`` and the
CI chaos job.

See ``docs/operations.md`` ("Durable runs & resume") for the
operational story.
"""

from repro.runs.errors import (
    RunDirectoryError,
    RunError,
    RunJournalError,
    RunManifestError,
    RunMismatchError,
)
from repro.runs.journal import RunJournal, ScanResult
from repro.runs.manifest import (
    MANIFEST_NAME,
    STATUS_COMPLETED,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
    RunManifest,
    corpus_identity,
    new_run_id,
)
from repro.runs.store import (
    JOURNAL_NAME,
    DurableRun,
    is_run_dir,
    iter_run_dirs,
    mark_interrupted,
    run_summary,
)

__all__ = [
    "JOURNAL_NAME",
    "MANIFEST_NAME",
    "STATUS_COMPLETED",
    "STATUS_INTERRUPTED",
    "STATUS_RUNNING",
    "DurableRun",
    "RunDirectoryError",
    "RunError",
    "RunJournal",
    "RunJournalError",
    "RunManifest",
    "RunManifestError",
    "RunMismatchError",
    "ScanResult",
    "corpus_identity",
    "is_run_dir",
    "iter_run_dirs",
    "mark_interrupted",
    "new_run_id",
    "run_summary",
]
