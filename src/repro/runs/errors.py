"""Typed failures of the durable run store.

Every refusal a resume can hit is a distinct, catchable type with a
message naming exactly what diverged — the same philosophy as
:mod:`repro.artifacts.errors`, whose fingerprint machinery the
manifest checks reuse.  Callers (the CLI) catch :class:`RunError`
and exit 2 with the message; nothing here is ever silently ignored,
because resuming against the wrong corpus or config would produce
confidently wrong numbers instead of a crash.
"""

from __future__ import annotations


class RunError(RuntimeError):
    """Base class for durable-run failures."""


class RunDirectoryError(RunError):
    """The run directory is missing, already occupied, or unreadable."""


class RunManifestError(RunError):
    """The run manifest is missing or does not parse."""


class RunMismatchError(RunError):
    """A resume does not match the manifest it is resuming.

    Carries the mismatching *field* plus the expected (manifest) and
    actual (current invocation) values, so callers can render a
    precise refusal.
    """

    def __init__(self, field: str, expected, actual):
        super().__init__(
            f"cannot resume: {field} changed since the run was started "
            f"(run manifest has {expected!r}, this invocation has "
            f"{actual!r})"
        )
        self.field = field
        self.expected = expected
        self.actual = actual


class RunJournalError(RunError):
    """The chunk journal is inconsistent with the corpus being resumed.

    Distinct from a *torn tail* — a partial final frame is the
    expected signature of a crash and is silently truncated on
    resume.  This error means a frame that passed its checksum still
    contradicts the recomputed chunk plan (wrong chunk count, a chunk
    index past the plan, a checkpoint that diverges from the merged
    tables), which points at a corpus or config change the manifest
    checks could not see.
    """
