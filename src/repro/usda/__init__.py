"""USDA Standard Reference (SR) nutrient-database substrate.

The paper resolves ingredient names against the USDA-SR database.  This
subpackage provides:

* :mod:`repro.usda.schema` — ``FoodItem`` / ``Portion`` records shaped
  like SR's FOOD_DES + NUT_DATA + WEIGHT tables,
* :mod:`repro.usda.nutrients` — the nutrient panel tracked per food,
* :mod:`repro.usda.database` — an indexed in-memory ``NutrientDatabase``,
* :mod:`repro.usda.loader` — parsers for the SR ``^``-delimited ASCII
  release format and a JSON round-trip,
* :mod:`repro.usda.data` — an embedded curated SR subset containing all
  foods named in the paper's Tables II–IV plus the common-ingredient
  coverage needed by the recipe corpus.
"""

from repro.usda.database import NutrientDatabase, load_default_database
from repro.usda.nutrients import NUTRIENTS, NutrientDef
from repro.usda.schema import FoodItem, Portion

__all__ = [
    "NutrientDatabase",
    "load_default_database",
    "NUTRIENTS",
    "NutrientDef",
    "FoodItem",
    "Portion",
]
