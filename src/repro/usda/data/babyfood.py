"""Curated SR subset — food group 03: Baby Foods.

"Babyfood, apples, dices, toddler" appears in the paper's heuristic (h)
as the collision that sequential-priority resolution must lose against
"Apples, raw, with skin" (the word "apples" sits at term 2 here versus
term 1 there).
"""

from repro.usda.data._build import F, P

GROUP = "Baby Foods"

FOODS = [
    F("03243", "Babyfood, apples, dices, toddler", GROUP,
      (53, 0.21, 0.21, 12.7, 1.4, 10.7, 4, 0.16, 13, 25.7, 0, 0.034),
      P(1.0, "cup", 114.0)),
    F("03167", "Babyfood, carrots, toddler", GROUP,
      (30, 0.82, 0.15, 6.5, 2.1, 3.0, 26, 0.35, 57, 4.9, 0, 0.025),
      P(1.0, "cup", 122.0)),
]
