"""Curated SR subset — food group 13: Beef Products.

The 80% / 85% / 90% lean ground-beef triplet exercises the matcher's
handling of "lean ground beef" from the Piroszhki recipe (Table I row
1: name "beef", state "ground lean").
"""

from repro.usda.data._build import F, P

GROUP = "Beef Products"

FOODS = [
    F("13047",
      "Beef, ground, 80% lean meat / 20% fat, raw", GROUP,
      (254, 17.17, 20.0, 0.0, 0.0, 0.0, 18, 1.94, 67, 0.0, 71, 7.587),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35),
      P(1.0, "patty (4 oz, raw)", 113.0)),
    F("13048",
      "Beef, ground, 85% lean meat / 15% fat, raw", GROUP,
      (215, 18.59, 15.0, 0.0, 0.0, 0.0, 15, 2.09, 66, 0.0, 68, 5.875),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35),
      P(1.0, "patty (4 oz, raw)", 113.0)),
    F("13049",
      "Beef, ground, 90% lean meat / 10% fat, raw", GROUP,
      (176, 20.0, 10.0, 0.0, 0.0, 0.0, 12, 2.24, 66, 0.0, 65, 4.099),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35),
      P(1.0, "patty (4 oz, raw)", 113.0)),
    F("13050",
      "Beef, chuck, arm pot roast, separable lean and fat, "
      "trimmed to 1/8\" fat, raw", GROUP,
      (244, 18.5, 18.4, 0.0, 0.0, 0.0, 16, 1.97, 62, 0.0, 72, 7.4),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35)),
    F("13065",
      "Beef, flank, steak, separable lean and fat, trimmed to 0\" fat, raw",
      GROUP,
      (141, 21.2, 5.7, 0.0, 0.0, 0.0, 22, 1.6, 56, 0.0, 58, 2.37),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35),
      P(1.0, "steak", 386.0)),
    F("13336",
      "Beef, chuck for stew, separable lean and fat, raw", GROUP,
      (128, 20.5, 4.6, 0.0, 0.0, 0.0, 14, 2.18, 69, 0.0, 62, 1.8),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35)),
    F("13458",
      "Beef, tenderloin, separable lean and fat, trimmed to 1/8\" fat, raw",
      GROUP,
      (247, 17.9, 19.1, 0.0, 0.0, 0.0, 14, 1.9, 52, 0.0, 71, 7.6),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35),
      P(1.0, "steak", 163.0)),
    F("13364",
      "Beef, round, top round, separable lean and fat, "
      "trimmed to 1/8\" fat, raw", GROUP,
      (191, 21.3, 11.1, 0.0, 0.0, 0.0, 13, 1.9, 54, 0.0, 62, 4.3),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35),
      P(1.0, "steak", 368.0)),
]
