"""Curated SR subset — food group 07: Sausages and Luncheon Meats."""

from repro.usda.data._build import F, P

GROUP = "Sausages and Luncheon Meats"

FOODS = [
    F("07011", "Bologna, beef and pork", GROUP,
      (308, 15.2, 24.59, 5.49, 0.0, 1.83, 85, 1.0, 960, 0.0, 60, 9.05),
      P(1.0, "slice", 28.0)),
    F("07022", "Frankfurter, beef", GROUP,
      (322, 11.24, 29.57, 2.66, 0.0, 1.54, 12, 1.3, 1013, 0.0, 58, 11.7),
      P(1.0, "frankfurter", 45.0)),
    F("07029", "Ham, sliced, regular (approximately 11% fat)", GROUP,
      (163, 16.6, 8.6, 3.83, 1.3, 0.0, 24, 1.02, 1143, 4.0, 57, 2.95),
      P(1.0, "slice", 28.0),
      P(1.0, "oz", 28.35)),
    F("07036", "Sausage, Italian, pork, raw", GROUP,
      (346, 14.25, 31.33, 0.65, 0.0, 0.0, 18, 1.18, 731, 2.0, 76, 11.27),
      P(1.0, "link (4/lb)", 113.0),
      P(1.0, "oz", 28.35)),
    F("07057", "Pepperoni, beef and pork, sliced", GROUP,
      (504, 19.25, 44.21, 1.18, 0.0, 0.0, 19, 1.33, 1582, 0.0, 97, 15.29),
      P(1.0, "slice", 2.0),
      P(1.0, "oz", 28.35)),
    F("07069", "Salami, cooked, beef and pork", GROUP,
      (336, 21.85, 25.9, 2.4, 0.0, 0.96, 15, 1.56, 1740, 0.0, 89, 9.32),
      P(1.0, "slice", 26.0),
      P(1.0, "oz", 28.35)),
    F("07919", "Sausage, chorizo, pork and beef", GROUP,
      (455, 24.1, 38.27, 1.86, 0.0, 0.0, 8, 1.58, 1235, 0.0, 88, 14.38),
      P(1.0, "link", 60.0),
      P(1.0, "oz", 28.35)),
]
