"""Curated SR subset — food group 10: Pork Products."""

from repro.usda.data._build import F, P

GROUP = "Pork Products"

FOODS = [
    F("10020",
      "Pork, fresh, loin, whole, separable lean and fat, raw", GROUP,
      (198, 19.74, 12.58, 0.0, 0.0, 0.0, 18, 0.87, 50, 0.6, 63, 4.36),
      P(1.0, "chop, bone-in", 113.0),
      P(1.0, "oz", 28.35),
      P(1.0, "lb", 453.6)),
    F("10123", "Pork, cured, bacon, unprepared", GROUP,
      (458, 11.6, 45.04, 0.66, 0.0, 0.0, 5, 0.41, 751, 0.0, 66, 14.954),
      P(1.0, "slice, raw", 28.35),
      P(1.0, "lb", 453.6)),
    F("10219", "Pork, fresh, ground, raw", GROUP,
      (263, 16.88, 21.19, 0.0, 0.0, 0.0, 14, 0.88, 56, 0.7, 72, 7.87),
      P(4.0, "oz", 113.0),
      P(1.0, "lb", 453.6)),
    F("10151",
      "Pork, cured, ham, whole, separable lean and fat, unheated", GROUP,
      (246, 18.49, 18.52, 0.05, 0.0, 0.0, 6, 0.75, 1284, 0.0, 56, 6.58),
      P(1.0, "oz", 28.35),
      P(1.0, "lb", 453.6)),
    F("10060",
      "Pork, fresh, shoulder, whole, separable lean and fat, raw", GROUP,
      (236, 17.18, 18.16, 0.0, 0.0, 0.0, 16, 1.03, 66, 0.6, 72, 6.46),
      P(1.0, "oz", 28.35),
      P(1.0, "lb", 453.6)),
    F("10088", "Pork, fresh, spareribs, separable lean and fat, raw", GROUP,
      (277, 17.39, 22.55, 0.0, 0.0, 0.0, 16, 0.93, 81, 0.0, 80, 8.2),
      P(1.0, "oz", 28.35),
      P(1.0, "lb", 453.6)),
]
