"""Curated SR subset — food group 14: Beverages.

"Beverages, water, tap, drinking" resolves the Piroszhki "1 tablespoon
cold water" phrase (Table I row 12).
"""

from repro.usda.data._build import F, P

GROUP = "Beverages"

FOODS = [
    F("14003", "Alcoholic beverage, beer, regular, all", GROUP,
      (43, 0.46, 0.0, 3.55, 0.0, 0.0, 4, 0.02, 4, 0.0, 0, 0.0),
      P(1.0, "can or bottle (12 fl oz)", 356.0),
      P(1.0, "fl oz", 29.7),
      P(1.0, "cup", 237.0)),
    F("14096", "Alcoholic beverage, wine, table, red", GROUP,
      (85, 0.07, 0.0, 2.61, 0.0, 0.62, 8, 0.46, 4, 0.0, 0, 0.0),
      P(1.0, "serving (5 fl oz)", 147.0),
      P(1.0, "fl oz", 29.4),
      P(1.0, "cup", 235.0)),
    F("14106", "Alcoholic beverage, wine, table, white", GROUP,
      (82, 0.07, 0.0, 2.6, 0.0, 0.96, 9, 0.27, 5, 0.0, 0, 0.0),
      P(1.0, "serving (5 fl oz)", 147.0),
      P(1.0, "fl oz", 29.4),
      P(1.0, "cup", 235.0)),
    F("14209",
      "Beverages, coffee, brewed, prepared with tap water", GROUP,
      (1, 0.12, 0.02, 0.0, 0.0, 0.0, 2, 0.01, 2, 0.0, 0, 0.002),
      P(1.0, "cup (8 fl oz)", 237.0),
      P(1.0, "fl oz", 29.6)),
    F("14355", "Beverages, tea, black, brewed", GROUP,
      (1, 0.0, 0.0, 0.3, 0.0, 0.0, 0, 0.02, 3, 0.0, 0, 0.002),
      P(1.0, "cup (8 fl oz)", 237.0),
      P(1.0, "fl oz", 29.6)),
    F("14400", "Beverages, carbonated, cola", GROUP,
      (41, 0.07, 0.02, 10.58, 0.0, 8.97, 2, 0.11, 4, 0.0, 0, 0.0),
      P(1.0, "can (12 fl oz)", 368.0),
      P(1.0, "cup (8 fl oz)", 246.0),
      P(1.0, "fl oz", 30.7)),
    F("14429", "Beverages, water, tap, drinking", GROUP,
      (0, 0.0, 0.0, 0.0, 0.0, 0.0, 3, 0.0, 4, 0.0, 0, 0.0),
      P(1.0, "cup (8 fl oz)", 237.0),
      P(1.0, "fl oz", 29.6),
      P(1.0, "tbsp", 14.8),
      P(1.0, "liter", 1000.0)),
    F("14433",
      "Beverages, citrus fruit juice drink, frozen concentrate", GROUP,
      (160, 0.8, 0.2, 40.0, 0.2, 37.0, 15, 0.3, 5, 100.0, 0, 0.02),
      P(1.0, "can (12 fl oz)", 340.0),
      P(1.0, "fl oz", 28.3)),
]
