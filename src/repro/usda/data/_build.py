"""Helpers for the embedded curated SR data modules.

Each data module declares rows with the compact :func:`F` constructor:

    F("01001", "Butter, salted", GROUP,
      (717, 0.85, 81.11, 0.06, 0.0, 0.06, 24, 0.02, 643, 0.0, 215, 51.368),
      P(1.0, 'pat (1" sq, 1/3" high)', 5.0),
      P(1.0, "tbsp", 14.2))

The nutrient tuple follows :data:`repro.usda.nutrients.NUTRIENT_KEYS`
order — (energy kcal, protein g, fat g, carbohydrate g, fiber g,
sugar g, calcium mg, iron mg, sodium mg, vitamin C mg, cholesterol mg,
saturated fat g) per 100 g — with ``None`` for missing analyses.
Portion sequence numbers are assigned from declaration order, mirroring
SR's WEIGHT.Seq.
"""

from __future__ import annotations

from repro.usda.nutrients import NUTRIENT_KEYS
from repro.usda.schema import FoodItem, Portion


def P(amount: float, unit: str, grams: float) -> tuple[float, str, float]:
    """Declare one household portion: (amount, unit description, grams)."""
    if grams <= 0:
        raise ValueError(f"non-positive portion grams: {grams} for {unit!r}")
    return (amount, unit, grams)


def F(
    ndb_no: str,
    description: str,
    food_group: str,
    nutrient_values: tuple[float | None, ...],
    *portions: tuple[float, str, float],
) -> FoodItem:
    """Build a :class:`FoodItem` from a compact data row."""
    if len(nutrient_values) != len(NUTRIENT_KEYS):
        raise ValueError(
            f"{ndb_no} {description!r}: expected {len(NUTRIENT_KEYS)} nutrient "
            f"values, got {len(nutrient_values)}"
        )
    nutrients = {
        key: float(value)
        for key, value in zip(NUTRIENT_KEYS, nutrient_values)
        if value is not None
    }
    return FoodItem(
        ndb_no=ndb_no,
        description=description,
        food_group=food_group,
        nutrients=nutrients,
        portions=tuple(
            Portion(seq=i + 1, amount=amount, unit=unit, grams=grams)
            for i, (amount, unit, grams) in enumerate(portions)
        ),
    )
