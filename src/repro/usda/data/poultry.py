"""Curated SR subset — food group 05: Poultry Products.

"Chicken, broilers or fryers, meat and skin and giblets and neck, raw"
is the Table III modified-Jaccard match for "1 whole chicken with
giblets"; the plain meat-and-skin entry must also exist so the two
compete.
"""

from repro.usda.data._build import F, P

GROUP = "Poultry Products"

FOODS = [
    F("05006",
      "Chicken, broilers or fryers, meat and skin and giblets and neck, raw",
      GROUP,
      (213, 18.33, 15.06, 0.06, 0.0, 0.0, 11, 1.34, 70, 1.6, 90, 4.31),
      P(1.0, "chicken", 1046.0),
      P(1.0, "lb", 453.6)),
    F("05009", "Chicken, broilers or fryers, meat and skin, raw", GROUP,
      (215, 18.6, 15.06, 0.0, 0.0, 0.0, 11, 0.9, 70, 1.6, 75, 4.31),
      P(0.5, "chicken", 466.0),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35)),
    F("05027", "Chicken, liver, all classes, raw", GROUP,
      (119, 16.92, 4.83, 0.73, 0.0, 0.0, 8, 8.99, 71, 17.9, 345, 1.563),
      P(1.0, "liver", 44.0)),
    F("05062", "Chicken, broilers or fryers, breast, meat only, raw", GROUP,
      (114, 21.23, 2.59, 0.0, 0.0, 0.0, 11, 0.72, 63, 1.2, 58, 0.563),
      P(0.5, "breast, bone and skin removed", 118.0),
      P(1.0, "oz", 28.35),
      P(1.0, "lb", 453.6)),
    F("05076", "Chicken, broilers or fryers, drumstick, meat only, raw", GROUP,
      (119, 19.27, 4.22, 0.0, 0.0, 0.0, 11, 1.02, 86, 0.0, 77, 1.08),
      P(1.0, "drumstick, bone and skin removed", 72.0),
      P(1.0, "oz", 28.35)),
    F("05096", "Chicken, broilers or fryers, thigh, meat only, raw", GROUP,
      (119, 19.66, 3.91, 0.0, 0.0, 0.0, 10, 0.98, 86, 0.0, 83, 1.02),
      P(1.0, "thigh, bone and skin removed", 69.0),
      P(1.0, "oz", 28.35),
      P(1.0, "lb", 453.6)),
    F("05100", "Chicken, broilers or fryers, wing, meat and skin, raw", GROUP,
      (222, 18.33, 15.97, 0.0, 0.0, 0.0, 12, 0.95, 73, 0.7, 77, 4.45),
      P(1.0, "wing, bone removed", 49.0),
      P(1.0, "lb", 453.6)),
    F("05091",
      "Turkey, all classes, meat and skin, raw", GROUP,
      (160, 20.42, 8.33, 0.06, 0.0, 0.06, 13, 1.17, 63, 0.0, 65, 2.24),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35)),
    F("05662", "Turkey, ground, raw", GROUP,
      (148, 17.47, 8.34, 0.0, 0.0, 0.0, 21, 1.09, 69, 0.0, 69, 2.24),
      P(1.0, "patty (4 oz, raw)", 113.0),
      P(1.0, "lb", 453.6)),
    F("05165", "Chicken, ground, raw", GROUP,
      (143, 17.44, 8.1, 0.04, 0.0, 0.0, 6, 0.82, 60, 0.0, 86, 2.3),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35)),
]
