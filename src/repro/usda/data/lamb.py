"""Curated SR subset — food group 17: Lamb, Veal, and Game Products."""

from repro.usda.data._build import F, P

GROUP = "Lamb, Veal, and Game Products"

FOODS = [
    F("17224", "Lamb, ground, raw", GROUP,
      (282, 16.56, 23.41, 0.0, 0.0, 0.0, 16, 1.55, 59, 0.0, 73, 10.19),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35),
      P(4.0, "oz", 113.0)),
    F("17036",
      "Lamb, domestic, leg, whole (shank and sirloin), separable lean and "
      "fat, trimmed to 1/4\" fat, raw", GROUP,
      (230, 17.91, 17.07, 0.0, 0.0, 0.0, 9, 1.55, 56, 0.0, 71, 7.59),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35)),
    F("17013",
      "Lamb, domestic, shoulder, whole (arm and blade), separable lean and "
      "fat, trimmed to 1/4\" fat, raw", GROUP,
      (282, 16.03, 23.63, 0.0, 0.0, 0.0, 16, 1.43, 59, 0.0, 73, 10.69),
      P(1.0, "lb", 453.6),
      P(1.0, "oz", 28.35)),
]
