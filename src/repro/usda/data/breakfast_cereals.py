"""Curated SR subset — food group 08: Breakfast Cereals."""

from repro.usda.data._build import F, P

GROUP = "Breakfast Cereals"

FOODS = [
    F("08120",
      "Cereals, oats, regular and quick, not fortified, dry", GROUP,
      (379, 13.15, 6.52, 67.7, 10.1, 0.99, 52, 4.25, 6, 0.0, 0, 1.11),
      P(1.0, "cup", 81.0),
      P(0.5, "cup", 40.5),
      P(0.33, "cup", 27.0)),
    F("08020", "Cereals ready-to-eat, corn flakes", GROUP,
      (357, 7.5, 0.4, 84.1, 3.3, 9.5, 5, 28.9, 729, 21.0, 0, 0.1),
      P(1.0, "cup", 28.0)),
    F("08121", "Cereals, oats, instant, fortified, plain, dry", GROUP,
      (367, 12.66, 6.3, 68.18, 9.4, 1.1, 399, 29.25, 284, 0.0, 0, 1.09),
      P(1.0, "packet", 28.0),
      P(1.0, "cup", 81.0)),
    F("08029", "Cereals ready-to-eat, granola, homemade", GROUP,
      (489, 13.67, 24.31, 53.88, 8.9, 19.8, 76, 3.95, 27, 1.2, 0, 4.18),
      P(1.0, "cup", 122.0),
      P(0.5, "cup", 61.0)),
]
