"""Curated SR subset — food group 21: Fast Foods.

"Fast foods, quesadilla, with chicken" is the Table III vanilla-Jaccard
(mis)match for "1 whole chicken with giblets" — it must be present so
the vanilla metric can prefer its short description.
"""

from repro.usda.data._build import F, P

GROUP = "Fast Foods"

FOODS = [
    F("21386", "Fast foods, quesadilla, with chicken", GROUP,
      (234, 13.46, 11.44, 18.29, 1.3, 1.9, 258, 1.32, 571, 0.6, 42, 5.47),
      P(1.0, "quesadilla", 180.0)),
    F("21600",
      "Fast Foods, Pizza Chain, 14\" pizza, cheese topping, regular crust",
      GROUP,
      (266, 11.39, 9.69, 33.33, 2.3, 3.58, 188, 2.48, 598, 0.9, 17, 4.53),
      P(1.0, "slice", 107.0),
      P(1.0, "pizza", 853.0)),
    F("21138",
      "Fast foods, potato, french fried", GROUP,
      (319, 3.43, 15.47, 41.44, 3.8, 0.26, 18, 0.8, 246, 4.0, 0, 2.42),
      P(1.0, "small serving", 71.0),
      P(1.0, "medium serving", 117.0),
      P(1.0, "large serving", 154.0)),
]
