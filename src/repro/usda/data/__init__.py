"""Embedded curated USDA-SR subset.

Modules are concatenated in SR food-group-number order (01 dairy/egg …
21 fast foods) so that :meth:`NutrientDatabase.index_of` reproduces
SR's indexing — the tie-break resource of the paper's heuristic (i).
"""

from __future__ import annotations

from repro.usda.schema import FoodItem

from repro.usda.data import (
    babyfood,
    baked,
    beef,
    beverages,
    breakfast_cereals,
    dairy_eggs,
    fast_foods,
    fats_oils,
    fish,
    fruits,
    grains_pasta,
    lamb,
    legumes,
    nuts_seeds,
    pork,
    poultry,
    sausages_luncheon,
    soups_sauces,
    spices_herbs,
    sweets,
    vegetables,
)

#: Data modules in SR food-group-number order.
_MODULES = (
    dairy_eggs,          # 01
    spices_herbs,        # 02
    babyfood,            # 03
    fats_oils,           # 04
    poultry,             # 05
    soups_sauces,        # 06
    sausages_luncheon,   # 07
    breakfast_cereals,   # 08
    fruits,              # 09
    pork,                # 10
    vegetables,          # 11
    nuts_seeds,          # 12
    beef,                # 13
    beverages,           # 14
    fish,                # 15
    legumes,             # 16
    lamb,                # 17
    baked,               # 18
    sweets,              # 19
    grains_pasta,        # 20
    fast_foods,          # 21
)


def all_foods() -> list[FoodItem]:
    """Every curated food, in SR index order."""
    foods: list[FoodItem] = []
    for module in _MODULES:
        foods.extend(module.FOODS)
    return foods
