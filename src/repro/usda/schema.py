"""Record types mirroring the USDA-SR relational schema.

SR ships three tables that matter to the paper's protocol:

* ``FOOD_DES``  — NDB number, long description, food group
* ``NUT_DATA``  — nutrient values per 100 g
* ``WEIGHT``    — household portions: sequence, amount, unit
  description, gram weight (the paper's Table IV is a slice of this)

``FoodItem`` denormalizes one food across the three tables, which is
the natural unit for matching and nutrition arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.usda.nutrients import NUTRIENT_KEYS


@dataclass(frozen=True, slots=True)
class Portion:
    """One household-measure row from SR's WEIGHT table.

    Mirrors the paper's Table IV columns: ``seq``, ``amount``, ``unit``
    (the raw unit description, possibly messy — e.g. ``pat (1" sq, 1/3"
    high)``), and ``grams`` — the weight of ``amount`` × ``unit``.
    """

    seq: int
    amount: float
    unit: str
    grams: float

    @property
    def grams_per_amount(self) -> float:
        """Gram weight of ONE unit (Table IV's "gram per amount" column)."""
        if self.amount <= 0:
            raise ValueError(f"non-positive portion amount: {self.amount}")
        return self.grams / self.amount


@dataclass(frozen=True, slots=True)
class FoodItem:
    """One food: description, group, nutrients per 100 g, portions.

    Attributes
    ----------
    ndb_no:
        SR's 5-digit NDB number (a string — leading zeros matter).
    description:
        The long description, comma-separated terms in decreasing
        importance ("Butter, salted").
    food_group:
        SR food-group name ("Dairy and Egg Products").
    nutrients:
        Mapping of nutrient key -> value per 100 g.  Keys are exactly
        :data:`repro.usda.nutrients.NUTRIENT_KEYS`; missing analytical
        values are simply absent.
    portions:
        Household measures in SR sequence order.
    """

    ndb_no: str
    description: str
    food_group: str
    nutrients: dict[str, float] = field(default_factory=dict)
    portions: tuple[Portion, ...] = ()

    def __post_init__(self) -> None:
        unknown = set(self.nutrients) - set(NUTRIENT_KEYS)
        if unknown:
            raise ValueError(
                f"unknown nutrient keys for {self.ndb_no}: {sorted(unknown)}"
            )

    @property
    def terms(self) -> list[str]:
        """Comma-separated description terms, stripped, original case.

        The paper's heuristic (a): the first term carries the highest
        matching priority.
        """
        return [t.strip() for t in self.description.split(",") if t.strip()]

    @property
    def energy_kcal(self) -> float:
        """Energy per 100 g (0.0 when not analyzed)."""
        return self.nutrients.get("energy_kcal", 0.0)

    def nutrient_per_gram(self, key: str) -> float:
        """Value of nutrient *key* per gram of this food."""
        return self.nutrients.get(key, 0.0) / 100.0

    def portion_units(self) -> list[str]:
        """Raw unit descriptions of all portions, in sequence order."""
        return [p.unit for p in self.portions]
