"""In-memory indexed nutrient database.

``NutrientDatabase`` preserves the order foods were inserted in — the
paper's heuristic (i) resolves remaining match ties by taking the food
*indexed first* in SR ("Apple" matches "Apples, raw, with skin" rather
than "Apples, raw, without skin" because of index order), so insertion
order is semantically meaningful here, not incidental.
"""

from __future__ import annotations

import functools
from collections.abc import Iterable, Iterator

from repro.usda.schema import FoodItem


class DuplicateFoodError(ValueError):
    """Raised when two foods share an NDB number."""


class NutrientDatabase:
    """Ordered, indexed collection of :class:`FoodItem` records."""

    def __init__(self, foods: Iterable[FoodItem] = ()):
        self._foods: list[FoodItem] = []
        self._by_ndb: dict[str, FoodItem] = {}
        self._index_of: dict[str, int] = {}
        self._by_description: dict[str, FoodItem] = {}
        self._vocabulary: frozenset[str] | None = None
        for food in foods:
            self.add(food)

    def add(self, food: FoodItem) -> None:
        """Append *food*, enforcing NDB-number uniqueness."""
        if food.ndb_no in self._by_ndb:
            raise DuplicateFoodError(f"duplicate NDB number: {food.ndb_no}")
        self._index_of[food.ndb_no] = len(self._foods)
        self._foods.append(food)
        self._by_ndb[food.ndb_no] = food
        # First insertion wins on duplicate descriptions, matching the
        # SR-index-order semantics of the previous linear scan.
        self._by_description.setdefault(food.description, food)
        self._vocabulary = None

    def __len__(self) -> int:
        return len(self._foods)

    def __iter__(self) -> Iterator[FoodItem]:
        return iter(self._foods)

    def __contains__(self, ndb_no: str) -> bool:
        return ndb_no in self._by_ndb

    def get(self, ndb_no: str) -> FoodItem:
        """Food with NDB number *ndb_no* (KeyError if absent)."""
        return self._by_ndb[ndb_no]

    def index_of(self, ndb_no: str) -> int:
        """SR index (insertion position) of a food — the tie-break key."""
        return self._index_of[ndb_no]

    def by_description(self, description: str) -> FoodItem:
        """Exact-description lookup (KeyError if absent)."""
        try:
            return self._by_description[description]
        except KeyError:
            raise KeyError(
                f"no food with description {description!r}"
            ) from None

    def find(self, substring: str) -> list[FoodItem]:
        """All foods whose description contains *substring* (case-insensitive)."""
        needle = substring.lower()
        return [f for f in self._foods if needle in f.description.lower()]

    def descriptions(self) -> list[str]:
        """All long descriptions, in SR index order."""
        return [f.description for f in self._foods]

    def food_groups(self) -> list[str]:
        """Distinct food groups, in first-appearance order."""
        seen: dict[str, None] = {}
        for food in self._foods:
            seen.setdefault(food.food_group, None)
        return list(seen)

    def vocabulary(self) -> frozenset[str]:
        """Every lower-cased alphabetic word in descriptions and units.

        Fed to the lemmatizer so detachment rules can validate
        candidate lemmas against the actual matching vocabulary.  The
        result is cached and invalidated by :meth:`add`, so repeated
        matcher constructions over one database pay the scan once.
        """
        if self._vocabulary is not None:
            return self._vocabulary
        words: set[str] = set()
        for food in self._foods:
            for raw in food.description.replace(",", " ").replace("(", " ").replace(")", " ").replace("/", " ").split():
                word = raw.strip("'\"-%").lower()
                if word.isalpha():
                    words.add(word)
            for portion in food.portions:
                for raw in portion.unit.replace(",", " ").replace("(", " ").replace(")", " ").split():
                    word = raw.strip("'\"-%").lower()
                    if word.isalpha():
                        words.add(word)
        self._vocabulary = frozenset(words)
        return self._vocabulary

    def install_vocabulary(self, words: Iterable[str]) -> None:
        """Install a precomputed :meth:`vocabulary` result.

        The artifact loader (:mod:`repro.artifacts`) stores the
        vocabulary alongside the food rows so restoring a database
        skips the description scan.  A subsequent :meth:`add` still
        invalidates the cache, so a mutated database can never serve a
        stale word set.
        """
        self._vocabulary = frozenset(words)


@functools.lru_cache(maxsize=1)
def load_default_database() -> NutrientDatabase:
    """The embedded curated SR subset (cached; treat as read-only)."""
    from repro.usda.data import all_foods

    return NutrientDatabase(all_foods())
