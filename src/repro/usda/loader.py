"""Readers/writers for the USDA-SR ASCII release format and JSON.

The genuine SR releases ship caret-delimited ASCII tables with text
fields wrapped in tildes::

    ~01001~^~0100~^~Butter, salted~
    ~01001~^~208~^717
    ~01001~^1^1.0^~pat (1" sq,  1/3" high)~^5.0

Supporting this format means the real SR-Legacy files drop straight
into the pipeline in place of the embedded curated subset, which is the
substitution contract in DESIGN.md.  A JSON round-trip is provided for
tooling and tests.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.usda.database import NutrientDatabase
from repro.usda.nutrients import NUTRIENT_KEYS, SR_NUMBER_TO_KEY, NUTRIENTS
from repro.usda.schema import FoodItem, Portion


class SRFormatError(ValueError):
    """Raised when an SR ASCII line cannot be parsed."""


def parse_sr_fields(line: str) -> list[str | None]:
    """Split one SR ASCII line into fields.

    Text fields are wrapped in ``~``; numeric fields are bare; empty
    fields (``^^``) become ``None``.
    """
    fields: list[str | None] = []
    for raw in line.rstrip("\r\n").split("^"):
        if raw == "":
            fields.append(None)
        elif raw.startswith("~") and raw.endswith("~") and len(raw) >= 2:
            fields.append(raw[1:-1])
        else:
            fields.append(raw)
    return fields


def _text(field: str | None, line: str) -> str:
    if field is None:
        raise SRFormatError(f"missing required text field in line: {line!r}")
    return field


def _num(field: str | None, line: str) -> float:
    if field is None:
        raise SRFormatError(f"missing required numeric field in line: {line!r}")
    try:
        return float(field)
    except ValueError as exc:
        raise SRFormatError(f"bad numeric field {field!r} in line: {line!r}") from exc


def load_sr_directory(path: str | Path) -> NutrientDatabase:
    """Build a database from FOOD_DES.txt / NUT_DATA.txt / WEIGHT.txt.

    Only the columns the pipeline needs are read; extra SR columns are
    ignored so genuine releases (which carry ~14 FOOD_DES columns) load
    unchanged.
    """
    path = Path(path)
    food_des = path / "FOOD_DES.txt"
    nut_data = path / "NUT_DATA.txt"
    weight = path / "WEIGHT.txt"
    for required in (food_des, nut_data, weight):
        if not required.exists():
            raise FileNotFoundError(f"missing SR table: {required}")

    descriptions: list[tuple[str, str, str]] = []  # ndb, group, desc
    with food_des.open(encoding="latin-1") as fh:
        for line in fh:
            if not line.strip():
                continue
            fields = parse_sr_fields(line)
            if len(fields) < 3:
                raise SRFormatError(f"FOOD_DES line too short: {line!r}")
            descriptions.append(
                (_text(fields[0], line), _text(fields[1], line), _text(fields[2], line))
            )

    nutrients: dict[str, dict[str, float]] = {}
    with nut_data.open(encoding="latin-1") as fh:
        for line in fh:
            if not line.strip():
                continue
            fields = parse_sr_fields(line)
            if len(fields) < 3:
                raise SRFormatError(f"NUT_DATA line too short: {line!r}")
            ndb = _text(fields[0], line)
            nutr_no = _text(fields[1], line)
            key = SR_NUMBER_TO_KEY.get(nutr_no)
            if key is None:
                continue  # untracked nutrient
            nutrients.setdefault(ndb, {})[key] = _num(fields[2], line)

    portions: dict[str, list[Portion]] = {}
    with weight.open(encoding="latin-1") as fh:
        for line in fh:
            if not line.strip():
                continue
            fields = parse_sr_fields(line)
            if len(fields) < 5:
                raise SRFormatError(f"WEIGHT line too short: {line!r}")
            ndb = _text(fields[0], line)
            portions.setdefault(ndb, []).append(
                Portion(
                    seq=int(_num(fields[1], line)),
                    amount=_num(fields[2], line),
                    unit=_text(fields[3], line),
                    grams=_num(fields[4], line),
                )
            )

    foods = [
        FoodItem(
            ndb_no=ndb,
            description=desc,
            food_group=group,
            nutrients=nutrients.get(ndb, {}),
            portions=tuple(sorted(portions.get(ndb, []), key=lambda p: p.seq)),
        )
        for ndb, group, desc in descriptions
    ]
    return NutrientDatabase(foods)


def dump_sr_directory(db: NutrientDatabase, path: str | Path) -> None:
    """Write *db* in SR ASCII format (inverse of :func:`load_sr_directory`)."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    with (path / "FOOD_DES.txt").open("w", encoding="latin-1") as fh:
        for food in db:
            fh.write(f"~{food.ndb_no}~^~{food.food_group}~^~{food.description}~\n")
    with (path / "NUT_DATA.txt").open("w", encoding="latin-1") as fh:
        for food in db:
            for nutrient in NUTRIENTS:
                value = food.nutrients.get(nutrient.key)
                if value is not None:
                    fh.write(f"~{food.ndb_no}~^~{nutrient.sr_number}~^{value:g}\n")
    with (path / "WEIGHT.txt").open("w", encoding="latin-1") as fh:
        for food in db:
            for p in food.portions:
                fh.write(
                    f"~{food.ndb_no}~^{p.seq}^{p.amount:g}^~{p.unit}~^{p.grams:g}\n"
                )


def to_json(db: NutrientDatabase) -> str:
    """Serialize *db* to a JSON string (stable key order)."""
    payload = [
        {
            "ndb_no": food.ndb_no,
            "description": food.description,
            "food_group": food.food_group,
            "nutrients": {k: food.nutrients[k] for k in NUTRIENT_KEYS if k in food.nutrients},
            "portions": [
                {"seq": p.seq, "amount": p.amount, "unit": p.unit, "grams": p.grams}
                for p in food.portions
            ],
        }
        for food in db
    ]
    return json.dumps(payload, indent=1)


def from_json(text: str) -> NutrientDatabase:
    """Inverse of :func:`to_json`."""
    foods = []
    for entry in json.loads(text):
        foods.append(
            FoodItem(
                ndb_no=entry["ndb_no"],
                description=entry["description"],
                food_group=entry["food_group"],
                nutrients=dict(entry["nutrients"]),
                portions=tuple(
                    Portion(p["seq"], p["amount"], p["unit"], p["grams"])
                    for p in entry["portions"]
                ),
            )
        )
    return NutrientDatabase(foods)
