"""The nutrient panel tracked for every food.

USDA-SR reports up to 150 nutrients per food; recipe nutrition services
(and the paper's evaluation, which scores calories) use a small panel.
We track the twelve nutrients below — the SR "abbreviated" core — which
is enough to regenerate every number in the paper while keeping the
embedded database reviewable.

Values are stored **per 100 g of edible portion**, exactly as SR does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class NutrientDef:
    """Definition of one tracked nutrient.

    Attributes
    ----------
    key:
        Stable identifier used as the attribute/dict key everywhere.
    sr_number:
        USDA-SR nutrient number (Nutr_No in NUT_DATA).
    name:
        Human-readable name.
    unit:
        Reporting unit (per 100 g of food).
    """

    key: str
    sr_number: str
    name: str
    unit: str


#: Canonical nutrient order.  Embedded data files store per-food values
#: as a tuple in exactly this order.
NUTRIENTS: tuple[NutrientDef, ...] = (
    NutrientDef("energy_kcal", "208", "Energy", "kcal"),
    NutrientDef("protein_g", "203", "Protein", "g"),
    NutrientDef("fat_g", "204", "Total lipid (fat)", "g"),
    NutrientDef("carbohydrate_g", "205", "Carbohydrate, by difference", "g"),
    NutrientDef("fiber_g", "291", "Fiber, total dietary", "g"),
    NutrientDef("sugar_g", "269", "Sugars, total", "g"),
    NutrientDef("calcium_mg", "301", "Calcium, Ca", "mg"),
    NutrientDef("iron_mg", "303", "Iron, Fe", "mg"),
    NutrientDef("sodium_mg", "307", "Sodium, Na", "mg"),
    NutrientDef("vitamin_c_mg", "401", "Vitamin C, total ascorbic acid", "mg"),
    NutrientDef("cholesterol_mg", "601", "Cholesterol", "mg"),
    NutrientDef("saturated_fat_g", "606", "Fatty acids, total saturated", "g"),
)

#: Nutrient keys in canonical order.
NUTRIENT_KEYS: tuple[str, ...] = tuple(n.key for n in NUTRIENTS)

#: SR nutrient number -> key, for the ASCII loader.
SR_NUMBER_TO_KEY: dict[str, str] = {n.sr_number: n.key for n in NUTRIENTS}


def nutrient_index(key: str) -> int:
    """Position of *key* in the canonical order (raises KeyError if unknown)."""
    try:
        return NUTRIENT_KEYS.index(key)
    except ValueError:
        raise KeyError(f"unknown nutrient key: {key!r}") from None
