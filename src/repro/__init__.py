"""repro — Nutritional Profile Estimation in Cooking Recipes.

A from-scratch reproduction of Kalra, Batra, Diwan & Bagler,
"Nutritional Profile Estimation in Cooking Recipes" (ICDE 2020),
including every substrate the paper depends on: a USDA-SR nutrient
database, an NER subsystem (CRF + averaged perceptron), the modified-
Jaccard description matcher, the unit-matching machinery, and a
RecipeDB-style corpus generator with exact ground truth.

On top of the paper's pipeline sit three production layers:
:mod:`repro.pipeline` (the sharded multiprocess corpus engine with an
exact-parity guarantee), :mod:`repro.service` (a dependency-free HTTP
JSON API over a warm shared estimator — ``python -m repro serve``)
and :mod:`repro.artifacts` (a versioned build-once snapshot store —
``repro build-artifact`` / ``repro serve --artifact`` — that
cold-starts every one of those processes in milliseconds with
bit-identical outputs).

Quickstart::

    from repro import NutritionEstimator

    estimator = NutritionEstimator()
    recipe = estimator.estimate_recipe(
        ["2 cups all-purpose flour", "1 teaspoon salt",
         "3/4 cup butter , softened"],
        servings=6,
    )
    print(round(recipe.per_serving.calories), "kcal per serving")

See ``README.md`` for the full tour, ``docs/architecture.md`` for the
module map and data flow, and ``docs/api.md`` for the HTTP and Python
APIs.
"""

# Before the subpackage imports: submodules (e.g. the pipeline
# engine's run manifests) read it during their own import.
__version__ = "1.1.0"

from repro.core.estimator import (
    IngredientEstimate,
    NutritionEstimator,
    ParsedIngredient,
    RecipeEstimate,
)
from repro.core.profile import NutritionalProfile
from repro.matching.matcher import DescriptionMatcher, MatcherConfig
from repro.pipeline import EstimatorSpec, ShardedCorpusEstimator
from repro.recipedb.generator import GeneratorConfig, RecipeGenerator
from repro.usda.database import NutrientDatabase, load_default_database

__all__ = [
    "IngredientEstimate",
    "NutritionEstimator",
    "ParsedIngredient",
    "RecipeEstimate",
    "NutritionalProfile",
    "DescriptionMatcher",
    "MatcherConfig",
    "EstimatorSpec",
    "ShardedCorpusEstimator",
    "GeneratorConfig",
    "RecipeGenerator",
    "NutrientDatabase",
    "load_default_database",
    "__version__",
]
