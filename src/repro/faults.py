"""Deterministic fault injection for the estimation pipeline.

Fault tolerance that cannot be exercised is decoration: every
recovery path in :mod:`repro.pipeline` and :mod:`repro.service` —
worker respawn, chunk retry, poison-line quarantine, request
deadlines — is driven in tests and CI through this module, which
turns an environment variable into reproducible failures at named
injection *sites*.

The plan is read from ``REPRO_FAULTS`` (so it crosses process
boundaries to forked pool workers for free) as a semicolon-separated
rule list::

    REPRO_FAULTS="crash@collect-chunk:1;corrupt@ingest-line:7"

Each rule is ``action@site:selector[:arg]``:

``crash@collect-chunk:1``
    The worker handling collect chunk 1 hard-exits (``os._exit``) —
    a segfault stand-in.  Fires on the **first attempt only**, so the
    supervisor's retry lands on a healthy worker; append ``:always``
    to crash every attempt (exhausting the retry budget).
``sleep@collect-chunk:0:30``
    The worker handling collect chunk 0 sleeps 30 s before working —
    a hung worker, detected via the chunk deadline.  First attempt
    only.
``raise@estimate-line:caviar``
    Estimating any ingredient line whose text contains ``caviar``
    raises :class:`InjectedFault`.  Fires on **every** attempt: it
    models poison *data*, which stays poisonous on retry — exactly
    what quarantine (not retry) must absorb.
``corrupt@ingest-line:7``
    The 7th line (1-based) of any JSONL corpus read through
    :func:`repro.recipedb.corpus.iter_recipes_jsonl` is replaced with
    bytes that are not JSON.  Every read, both engine passes.
``sleep@service-estimate:*:0.5``
    Every service estimation call sleeps 0.5 s — drives the
    request-deadline and load-shedding tests.
``crash@journal-append:2``
    The batch **driver** hard-exits immediately before appending
    frame 2 of a durable run's chunk journal — a SIGKILL/OOM-kill
    stand-in at a chunk boundary.  ``batch --resume`` must replay the
    journaled prefix and re-execute the rest bit-identically.
``corrupt@journal-append:2``
    The driver writes only **half** of frame 2 (fsync'd, so the torn
    bytes really reach the file) and then hard-exits — the torn-tail
    case a power cut produces.  Resume must truncate the torn frame
    and re-execute its chunk.

Sites wired in: ``collect-chunk`` / ``fallback-chunk`` (pool worker,
selector = chunk task id), ``shm-attach`` (pool worker bootstrap,
fired immediately before the worker attaches to the shared artifact
segment, selector = worker id — ``crash@shm-attach:0`` kills worker 0
at the worst possible moment of its boot; the respawned replacement
gets a fresh id and boots clean), ``estimate-line`` (per-line
estimation, selector = substring of the line), ``ingest-line`` (JSONL
read, selector = 1-based line number), ``service-estimate`` (the HTTP
service's estimation path, selector ``*``), ``journal-append`` (the
durable-run chunk journal, selector = 0-based frame index — this one
kills the coordinating driver process itself, not a worker).

The parsed plan is cached per environment value, so the per-line hot
path costs one ``os.environ.get`` when no plan is set.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

ENV_VAR = "REPRO_FAULTS"

#: Exit status used by injected crashes (distinctive in ``waitpid``).
CRASH_EXIT_CODE = 70

_ACTIONS = frozenset({"crash", "sleep", "raise", "corrupt"})


class InjectedFault(RuntimeError):
    """Raised by ``raise@...`` rules; quarantine treats it like any
    estimator failure."""


class FaultSpecError(ValueError):
    """The ``REPRO_FAULTS`` value does not parse."""


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One parsed ``action@site:selector[:arg]`` rule."""

    action: str
    site: str
    selector: str
    arg: str = ""

    @property
    def every_attempt(self) -> bool:
        return self.action == "raise" or self.arg == "always"

    def matches_index(self, index: int) -> bool:
        return self.selector == "*" or self.selector == str(index)


class FaultPlan:
    """A parsed set of fault rules, queried at injection sites."""

    def __init__(self, rules: tuple[FaultRule, ...]):
        self.rules = rules

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        rules = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            action, sep, rest = raw.partition("@")
            parts = rest.split(":")
            if not sep or action not in _ACTIONS or len(parts) < 2:
                raise FaultSpecError(
                    f"bad fault rule {raw!r} (want action@site:selector"
                    f"[:arg] with action in {sorted(_ACTIONS)})"
                )
            site, selector = parts[0], parts[1]
            arg = ":".join(parts[2:])
            if action == "sleep":
                try:
                    float(arg)
                except ValueError:
                    raise FaultSpecError(
                        f"sleep rule {raw!r} needs numeric seconds as arg"
                    ) from None
            rules.append(FaultRule(action, site, selector, arg))
        return cls(tuple(rules))

    # ------------------------------------------------------------------
    # injection sites

    def fire(self, site: str, index: int, attempt: int = 0) -> None:
        """Crash or stall at a (site, index) occurrence.

        ``crash`` and ``sleep`` rules fire on the first attempt only
        (unless ``:always``): the failure they model is a flaky
        *process*, and the point of the retry machinery is that a
        second attempt on a respawned worker succeeds.
        """
        for rule in self.rules:
            if rule.site != site or not rule.matches_index(index):
                continue
            if attempt > 0 and not rule.every_attempt:
                continue
            if rule.action == "crash":
                os._exit(CRASH_EXIT_CODE)
            elif rule.action == "sleep":
                time.sleep(float(rule.arg))
            elif rule.action == "raise":
                raise InjectedFault(
                    f"injected fault at {site}:{index} (attempt {attempt})"
                )

    def poison(self, text: str) -> None:
        """Raise if an ``estimate-line`` rule's selector is in *text*."""
        for rule in self.rules:
            if (
                rule.action == "raise"
                and rule.site == "estimate-line"
                and rule.selector in text
            ):
                raise InjectedFault(
                    f"injected poison line (selector {rule.selector!r})"
                )

    def wants_torn_write(self, site: str, index: int) -> bool:
        """Whether a ``corrupt@`` rule matches this (site, index).

        Used by the run journal: a matching rule makes the append
        write a *partial* frame and then hard-exit, producing a real
        torn tail on disk (the caller owns the partial write — only
        it knows the frame bytes — and then calls
        :func:`os._exit` with :data:`CRASH_EXIT_CODE`).
        """
        return any(
            rule.action == "corrupt"
            and rule.site == site
            and rule.matches_index(index)
            for rule in self.rules
        )

    def corrupt_line(self, line_no: int, raw: str) -> str:
        """The raw JSONL line to actually parse (possibly corrupted)."""
        for rule in self.rules:
            if (
                rule.action == "corrupt"
                and rule.site == "ingest-line"
                and rule.matches_index(line_no)
            ):
                return '{"recipe_id": !corrupted-by-fault-injection!'
        return raw

    def __bool__(self) -> bool:
        return bool(self.rules)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.rules)} rules)"


_CACHED: tuple[str, FaultPlan | None] = ("", None)


def active_plan() -> FaultPlan | None:
    """The plan in ``REPRO_FAULTS``, or ``None`` (the hot-path case).

    Re-reads the environment on every call (a test toggling the
    variable between runs must take effect immediately) but re-parses
    only when the value changes.
    """
    global _CACHED
    spec = os.environ.get(ENV_VAR, "")
    if spec != _CACHED[0]:
        _CACHED = (spec, FaultPlan.parse(spec) if spec else None)
    return _CACHED[1]
