"""The paper's primary contribution: end-to-end nutrition estimation.

``NutritionEstimator`` wires the substrates together exactly as the
paper's Figure 1 architecture does: NER extraction -> closest
description annotation (modified Jaccard) -> unit matching (with
derivation and fallbacks) -> per-ingredient nutrient arithmetic ->
per-serving recipe profile.
"""

from repro.core.coverage import CoverageHistogram, coverage_histogram
from repro.core.estimator import (
    IngredientEstimate,
    NutritionEstimator,
    ParsedIngredient,
    RecipeEstimate,
)
from repro.core.profile import NutritionalProfile

__all__ = [
    "CoverageHistogram",
    "coverage_histogram",
    "IngredientEstimate",
    "NutritionEstimator",
    "ParsedIngredient",
    "RecipeEstimate",
    "NutritionalProfile",
]
