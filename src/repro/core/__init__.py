"""The paper's primary contribution: end-to-end nutrition estimation.

``NutritionEstimator`` wires the substrates together exactly as the
paper's Figure 1 architecture does: NER extraction -> closest
description annotation (modified Jaccard) -> unit matching (with
derivation and fallbacks) -> per-ingredient nutrient arithmetic ->
per-serving recipe profile.
"""

from repro.core.coverage import (
    CoverageHistogram,
    ReasonBreakdown,
    coverage_histogram,
    reason_breakdown,
    reason_breakdown_from_lines,
)
from repro.core.estimator import (
    IngredientEstimate,
    NutritionEstimator,
    ParsedIngredient,
    RecipeEstimate,
)
from repro.core.explain import LineExplanation, StageReport, explain_line
from repro.core.profile import NutritionalProfile
from repro.core.resolution import (
    MATCH_FAILURE_REASONS,
    RESOLUTION_REASONS,
    run_unit_chain,
)

__all__ = [
    "CoverageHistogram",
    "coverage_histogram",
    "ReasonBreakdown",
    "reason_breakdown",
    "reason_breakdown_from_lines",
    "IngredientEstimate",
    "NutritionEstimator",
    "ParsedIngredient",
    "RecipeEstimate",
    "NutritionalProfile",
    "LineExplanation",
    "StageReport",
    "explain_line",
    "MATCH_FAILURE_REASONS",
    "RESOLUTION_REASONS",
    "run_unit_chain",
]
