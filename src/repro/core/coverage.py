"""Percentage-mapping statistics (paper Figure 2).

Figure 2 plots, over all recipes, the distribution of the percentage
of a recipe's ingredients that could be mapped to a nutritional
profile.  Two series matter: name-level mapping (description found)
and full mapping (description + unit + quantity resolved) — the gap
between them is the paper's observation that "the main problem lies in
matching the units".
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.estimator import (
    STATUS_FULL,
    STATUS_NAME_ONLY,
    IngredientEstimate,
    RecipeEstimate,
)

#: Histogram bucket edges in percent; the last bucket is exactly 100%.
BUCKETS: tuple[tuple[int, int], ...] = (
    (0, 10), (10, 20), (20, 30), (30, 40), (40, 50),
    (50, 60), (60, 70), (70, 80), (80, 90), (90, 100), (100, 100),
)


@dataclass(frozen=True, slots=True)
class CoverageHistogram:
    """Recipe counts per coverage bucket."""

    counts: tuple[int, ...]
    total: int

    def __post_init__(self) -> None:
        if len(self.counts) != len(BUCKETS):
            raise ValueError(
                f"expected {len(BUCKETS)} buckets, got {len(self.counts)}"
            )

    def fractions(self) -> tuple[float, ...]:
        """Bucket shares of all recipes."""
        if self.total == 0:
            return tuple(0.0 for _ in self.counts)
        return tuple(c / self.total for c in self.counts)

    def labels(self) -> tuple[str, ...]:
        """Human-readable bucket labels."""
        out = []
        for lo, hi in BUCKETS:
            out.append("100%" if lo == hi else f"{lo}-{hi}%")
        return tuple(out)

    def ascii_chart(self, width: int = 50) -> str:
        """Render the histogram as an ASCII bar chart."""
        peak = max(self.counts) if self.counts else 0
        lines = []
        for label, count in zip(self.labels(), self.counts):
            bar = "#" * (round(width * count / peak) if peak else 0)
            share = count / self.total * 100 if self.total else 0.0
            lines.append(f"{label:>8} | {bar} {count} ({share:.1f}%)")
        return "\n".join(lines)


def _bucket_index(percent: float) -> int:
    """Bucket for a coverage percentage in [0, 100]."""
    if not 0.0 <= percent <= 100.0:
        raise ValueError(f"coverage percent out of range: {percent}")
    if percent >= 100.0:
        return len(BUCKETS) - 1
    return min(int(percent // 10), len(BUCKETS) - 2)


def coverage_histogram(
    estimates: list[RecipeEstimate], level: str = "full"
) -> CoverageHistogram:
    """Histogram of per-recipe mapping percentages.

    *level* is ``"full"`` (name and unit resolved) or ``"name"``
    (description found regardless of units).
    """
    if level not in ("full", "name"):
        raise ValueError(f"level must be 'full' or 'name': {level!r}")
    counts = [0] * len(BUCKETS)
    for est in estimates:
        fraction = (
            est.fraction_fully_mapped if level == "full" else est.fraction_name_mapped
        )
        counts[_bucket_index(fraction * 100.0)] += 1
    return CoverageHistogram(counts=tuple(counts), total=len(estimates))


# ----------------------------------------------------------------------
# reason breakdown: Figure 2's name-vs-full gap, quantified by cause


@dataclass(frozen=True, slots=True)
class ReasonBreakdown:
    """Per-reason line counts over a corpus.

    Quantifies the gap between Figure 2's two series by cause: every
    name-mapped-but-unit-unresolved line is attributed to the §II-C
    mechanism that was responsible for it.  ``resolved_by`` counts
    fully mapped lines by the strategy (reason code) that resolved
    the unit; ``failed_by`` counts name-only lines by their *primary*
    failure — the first ``"stage:outcome"`` event of the line's
    trace, i.e. the first strategy that ran and failed;
    ``unmatched_by`` counts lines that never reached unit resolution
    (``no-name`` / ``no-description-match``); ``events`` tallies every
    trace event over all lines (stage-level attempt frequencies).
    """

    total_lines: int
    name_mapped: int
    fully_mapped: int
    resolved_by: dict[str, int]
    failed_by: dict[str, int]
    unmatched_by: dict[str, int]
    events: dict[str, int]

    @property
    def unit_gap(self) -> int:
        """Lines that matched a description but lost their unit."""
        return self.name_mapped - self.fully_mapped

    def render(self) -> str:
        """Multi-section ASCII report."""

        def pct(n: int, total: int) -> str:
            return f"{100 * n / total:5.1f}%" if total else "    -"

        total = self.total_lines
        lines = [
            f"lines: {total}   "
            f"name-mapped: {self.name_mapped} ({pct(self.name_mapped, total).strip()})   "
            f"fully-mapped: {self.fully_mapped} ({pct(self.fully_mapped, total).strip()})",
            f"unit gap (Figure 2, name-vs-full): {self.unit_gap} line(s), "
            f"{pct(self.unit_gap, total).strip()} of all lines",
        ]

        def section(title: str, counts: dict[str, int], denom: int) -> None:
            if not counts:
                return
            lines.append("")
            lines.append(title)
            for key, count in sorted(
                counts.items(), key=lambda item: (-item[1], item[0])
            ):
                lines.append(f"  {key:40} {count:7}  {pct(count, denom)}")

        section("resolved by:", self.resolved_by, self.fully_mapped)
        section("unit lost at (primary failure):", self.failed_by, self.unit_gap)
        section("unmatched:", self.unmatched_by, total)
        return "\n".join(lines)


class ReasonTally:
    """Incremental :class:`ReasonBreakdown` accumulator.

    Memory is bounded by the reason-code vocabulary, never by corpus
    size — streaming consumers (``repro batch --reasons`` over the
    engine's lazy iterator) fold each estimate in as it arrives
    instead of retaining the estimates.
    """

    __slots__ = (
        "_total", "_name_mapped", "_fully_mapped",
        "_resolved_by", "_failed_by", "_unmatched_by", "_events",
    )

    def __init__(self) -> None:
        self._total = 0
        self._name_mapped = 0
        self._fully_mapped = 0
        self._resolved_by: Counter[str] = Counter()
        self._failed_by: Counter[str] = Counter()
        self._unmatched_by: Counter[str] = Counter()
        self._events: Counter[str] = Counter()

    def add(self, estimate: IngredientEstimate, count: int = 1) -> None:
        """Fold in one line, weighted by its occurrence *count*."""
        self._total += count
        for event in estimate.trace:
            self._events[event] += count
        if estimate.status == STATUS_FULL:
            self._name_mapped += count
            self._fully_mapped += count
            self._resolved_by[estimate.reason] += count
        elif estimate.status == STATUS_NAME_ONLY:
            self._name_mapped += count
            primary = estimate.trace[0] if estimate.trace else estimate.reason
            self._failed_by[primary] += count
        else:
            self._unmatched_by[estimate.reason] += count

    def add_recipe(self, estimate: RecipeEstimate) -> None:
        """Fold in every ingredient line of one recipe estimate."""
        for ingredient in estimate.ingredients:
            self.add(ingredient)

    def breakdown(self) -> ReasonBreakdown:
        """The accumulated breakdown (snapshot; the tally keeps going)."""
        return ReasonBreakdown(
            total_lines=self._total,
            name_mapped=self._name_mapped,
            fully_mapped=self._fully_mapped,
            resolved_by=dict(self._resolved_by),
            failed_by=dict(self._failed_by),
            unmatched_by=dict(self._unmatched_by),
            events=dict(self._events),
        )


def reason_breakdown_from_lines(
    pairs: Iterable[tuple[IngredientEstimate, int]]
) -> ReasonBreakdown:
    """Breakdown over ``(estimate, occurrence count)`` pairs.

    The weighted form serves distinct-line tables (the corpus
    protocol's working set): a line occurring N times contributes N to
    every tally, so the result equals the per-occurrence breakdown of
    the full corpus.
    """
    tally = ReasonTally()
    for estimate, count in pairs:
        tally.add(estimate, count)
    return tally.breakdown()


def reason_breakdown(estimates: Iterable[RecipeEstimate]) -> ReasonBreakdown:
    """Breakdown over recipe estimates, one count per ingredient line."""
    return reason_breakdown_from_lines(
        (ingredient, 1)
        for estimate in estimates
        for ingredient in estimate.ingredients
    )
