"""Percentage-mapping statistics (paper Figure 2).

Figure 2 plots, over all recipes, the distribution of the percentage
of a recipe's ingredients that could be mapped to a nutritional
profile.  Two series matter: name-level mapping (description found)
and full mapping (description + unit + quantity resolved) — the gap
between them is the paper's observation that "the main problem lies in
matching the units".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.estimator import RecipeEstimate

#: Histogram bucket edges in percent; the last bucket is exactly 100%.
BUCKETS: tuple[tuple[int, int], ...] = (
    (0, 10), (10, 20), (20, 30), (30, 40), (40, 50),
    (50, 60), (60, 70), (70, 80), (80, 90), (90, 100), (100, 100),
)


@dataclass(frozen=True, slots=True)
class CoverageHistogram:
    """Recipe counts per coverage bucket."""

    counts: tuple[int, ...]
    total: int

    def __post_init__(self) -> None:
        if len(self.counts) != len(BUCKETS):
            raise ValueError(
                f"expected {len(BUCKETS)} buckets, got {len(self.counts)}"
            )

    def fractions(self) -> tuple[float, ...]:
        """Bucket shares of all recipes."""
        if self.total == 0:
            return tuple(0.0 for _ in self.counts)
        return tuple(c / self.total for c in self.counts)

    def labels(self) -> tuple[str, ...]:
        """Human-readable bucket labels."""
        out = []
        for lo, hi in BUCKETS:
            out.append("100%" if lo == hi else f"{lo}-{hi}%")
        return tuple(out)

    def ascii_chart(self, width: int = 50) -> str:
        """Render the histogram as an ASCII bar chart."""
        peak = max(self.counts) if self.counts else 0
        lines = []
        for label, count in zip(self.labels(), self.counts):
            bar = "#" * (round(width * count / peak) if peak else 0)
            share = count / self.total * 100 if self.total else 0.0
            lines.append(f"{label:>8} | {bar} {count} ({share:.1f}%)")
        return "\n".join(lines)


def _bucket_index(percent: float) -> int:
    """Bucket for a coverage percentage in [0, 100]."""
    if not 0.0 <= percent <= 100.0:
        raise ValueError(f"coverage percent out of range: {percent}")
    if percent >= 100.0:
        return len(BUCKETS) - 1
    return min(int(percent // 10), len(BUCKETS) - 2)


def coverage_histogram(
    estimates: list[RecipeEstimate], level: str = "full"
) -> CoverageHistogram:
    """Histogram of per-recipe mapping percentages.

    *level* is ``"full"`` (name and unit resolved) or ``"name"``
    (description found regardless of units).
    """
    if level not in ("full", "name"):
        raise ValueError(f"level must be 'full' or 'name': {level!r}")
    counts = [0] * len(BUCKETS)
    for est in estimates:
        fraction = (
            est.fraction_fully_mapped if level == "full" else est.fraction_name_mapped
        )
        counts[_bucket_index(fraction * 100.0)] += 1
    return CoverageHistogram(counts=tuple(counts), total=len(estimates))
