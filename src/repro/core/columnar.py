"""Columnar per-chunk estimation: batch the stages, keep the bits.

The per-line reference path (:meth:`NutritionEstimator._estimate_line`)
walks every stage — tokenize, NER tag, entity grouping, description
match, unit chain — once per line.  This module reorganizes the same
work *chunk-at-a-time*:

1. **Parse stage** — distinct uncached lines are tokenized together
   (ASCII fast path), tagged with the tagger's ``predict_batch`` when
   it has one (the perceptron runs one chunk-wide emission gather, the
   rule tagger memoizes its pure per-token rules), and grouped through
   the same :func:`repro.core.estimator.group_entities`.
2. **Match stage** — the chunk's distinct ``(name, state, temperature,
   dry_fresh)`` queries go through
   :meth:`DescriptionMatcher.match_chunk`: one flattened-postings
   bincount pass over the whole chunk instead of a dict walk per query.
3. **Tail stage** — every line then runs the unmodified
   :meth:`NutritionEstimator._estimate_from_parsed` (quantity parse,
   unit chain, profile), hitting the caches the batch stages warmed.

**Parity contract.**  Stages 1-2 only *pre-compute into the same
memoization caches* (parse cache, matcher cache) in the same
first-occurrence insertion order the per-line loop would use, and
stage 3 is literally the per-line code — so estimates, reason codes,
traces, cache eviction behaviour and per-line exception surfacing are
bit-identical to the reference.  ``tests/test_columnar_parity.py``
sweeps this differentially across all matcher configs and chunk
sizes.

Failures stay per-line: any line whose stage raises (poisoned input,
fault injection, hostile text) is captured as a :class:`LineOutcome`
error and re-raised by the caller at that line's position, exactly
where the per-line loop would have raised it.
"""

from __future__ import annotations

from repro import faults
from repro.core.estimator import (
    IngredientEstimate,
    NutritionEstimator,
    ParsedIngredient,
    group_entities,
)
from repro.text.tokenize import tokenize_fast
from repro.utils import DEFAULT_CACHE_CAP, BoundedCache


class LineOutcome:
    """One line's result: an estimate, or the exception its stage raised."""

    __slots__ = ("estimate", "error")

    def __init__(
        self,
        estimate: IngredientEstimate | None = None,
        error: BaseException | None = None,
    ):
        self.estimate = estimate
        self.error = error

    def unwrap(self) -> IngredientEstimate:
        """The estimate, or re-raise the captured per-line exception."""
        if self.error is not None:
            raise self.error
        return self.estimate


class ColumnarPipeline:
    """Chunk-batched front end over one :class:`NutritionEstimator`."""

    def __init__(self, estimator: NutritionEstimator):
        self._estimator = estimator
        # quantity string -> parsed float (or None): pure function,
        # heavily repeated ("1", "1/2", "2") across any real chunk.
        self._quantity_memo: dict[str, float | None] = BoundedCache(
            DEFAULT_CACHE_CAP
        )

    def estimate_lines(
        self, texts: list[str], *, consult_fallback: bool = True
    ) -> list[LineOutcome]:
        """Estimate a chunk of lines; one :class:`LineOutcome` each.

        Drop-in chunk equivalent of calling ``_estimate_line(text,
        consult_fallback)`` per line (poison faults included): the
        caller loops the outcomes in order and ``unwrap()``s, getting
        identical estimates and identical exceptions at identical
        positions.
        """
        estimator = self._estimator
        outcomes: list[LineOutcome | None] = [None] * len(texts)

        plan = faults.active_plan()
        if plan is not None:
            for i, text in enumerate(texts):
                try:
                    plan.poison(text)
                except Exception as exc:
                    outcomes[i] = LineOutcome(error=exc)

        # Stage 1: batched parse of distinct lines the cache misses.
        parse_cache = estimator._parse_cache
        parsed: dict[str, ParsedIngredient | LineOutcome] = {}
        pending: list[str] = []
        for i, text in enumerate(texts):
            if outcomes[i] is not None or text in parsed:
                continue
            hit = parse_cache.get(text)
            if hit is not None:
                parsed[text] = hit
            else:
                parsed[text] = None  # placeholder keeps order/dedup
                pending.append(text)
        if pending:
            self._parse_batch(pending, parsed)

        # Stage 2: one columnar matching pass warms the matcher cache.
        self._warm_matches(texts, outcomes, parsed)

        # Stage 3: the per-line reference tail over warmed caches.
        memo = self._quantity_memo
        for i, text in enumerate(texts):
            if outcomes[i] is not None:
                continue
            item = parsed[text]
            if isinstance(item, LineOutcome):
                outcomes[i] = item
                continue
            try:
                outcomes[i] = LineOutcome(
                    estimate=estimator._estimate_from_parsed(
                        item, consult_fallback, quantity_memo=memo
                    )
                )
            except Exception as exc:
                outcomes[i] = LineOutcome(error=exc)
        return outcomes

    def _parse_batch(
        self,
        pending: list[str],
        parsed: dict[str, ParsedIngredient | LineOutcome],
    ) -> None:
        """Tokenize + tag + group *pending* texts, chunk-at-a-time.

        Results (or per-line failures) land in *parsed*; successful
        parses also enter the estimator's parse cache in pending
        order — the same first-occurrence insertion order the
        per-line loop produces.
        """
        estimator = self._estimator
        token_lists: list[list[str] | None] = []
        for text in pending:
            try:
                token_lists.append(tokenize_fast(text))
            except Exception as exc:
                parsed[text] = LineOutcome(error=exc)
                token_lists.append(None)
        ok = [
            (text, tokens)
            for text, tokens in zip(pending, token_lists)
            if tokens is not None
        ]
        if not ok:
            return

        tagger = estimator.tagger
        batch = getattr(tagger, "predict_batch", None)
        tags_lists: list[list[str] | LineOutcome] | None = None
        if batch is not None:
            try:
                tags_lists = batch([list(tokens) for _, tokens in ok])
            except Exception:
                tags_lists = None  # per-line fallback surfaces errors
        if tags_lists is None:
            tags_lists = []
            for _, tokens in ok:
                try:
                    tags_lists.append(tagger.predict(list(tokens)))
                except Exception as exc:
                    tags_lists.append(LineOutcome(error=exc))

        for (text, tokens), tags in zip(ok, tags_lists):
            if isinstance(tags, LineOutcome):
                parsed[text] = tags
                continue
            try:
                result = group_entities(text, tuple(tokens), tuple(tags))
            except Exception as exc:
                parsed[text] = LineOutcome(error=exc)
                continue
            parsed[text] = result
            estimator._parse_cache[text] = result

    def _warm_matches(
        self,
        texts: list[str],
        outcomes: list[LineOutcome | None],
        parsed: dict[str, ParsedIngredient | LineOutcome],
    ) -> None:
        """Run the chunk's distinct named queries through match_chunk.

        Purely a cache warm-up: the stage-3 tail re-asks ``match()``
        per line and hits the memo.  If the batch pass fails as a
        whole, it is abandoned and the tail's per-line calls surface
        any errors at the right lines.
        """
        estimator = self._estimator
        seen: set[tuple[str, str, str, str]] = set()
        queries: list[tuple[str, str, str, str]] = []
        for i, text in enumerate(texts):
            if outcomes[i] is not None:
                continue
            item = parsed[text]
            if isinstance(item, LineOutcome) or not item.name:
                continue
            key = (
                item.name.lower(), item.state.lower(),
                item.temperature.lower(), item.dry_fresh.lower(),
            )
            if key in seen:
                continue
            seen.add(key)
            queries.append(
                (item.name, item.state, item.temperature, item.dry_fresh)
            )
        if not queries:
            return
        try:
            estimator.matcher.match_chunk(queries)
        except Exception:
            pass  # tail falls back to per-line match()
