"""Cooking-yield and nutrient-retention adjustment (paper [4]).

The paper notes: "more accurate results would be obtained if
nutritional yield due to cooking is taken into account, but there is
no such consolidated resource for yield values" — and leaves yields as
future work.  This module implements that extension with a compact
yield/retention table in the style of Bognár & Piekarski (2000) and
the USDA retention-factor releases, so the hook exists and is tested
even though the main protocol (like the paper's) does not apply it.

Two distinct effects are modeled:

* **weight yield** — cooked weight / raw weight (moisture loss or
  uptake): roasting shrinks meat, boiling swells rice;
* **nutrient retention** — fraction of each nutrient surviving the
  process (vitamin C suffers in boiling; energy is conserved except
  for fat drip losses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.profile import NutritionalProfile
from repro.usda.nutrients import NUTRIENT_KEYS


@dataclass(frozen=True, slots=True)
class YieldFactor:
    """Yield/retention for one cooking method.

    Attributes
    ----------
    method:
        Cooking method name ("boiled", "roasted", ...).
    weight_yield:
        cooked grams per raw gram (informational; profiles track
        absolute nutrients so weight change does not alter them).
    retention:
        nutrient key -> retained fraction; unlisted nutrients retain
        fully.
    """

    method: str
    weight_yield: float
    retention: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.weight_yield <= 0:
            raise ValueError(f"non-positive weight yield: {self.weight_yield}")
        for key, value in self.retention.items():
            if key not in NUTRIENT_KEYS:
                raise ValueError(f"unknown nutrient key: {key}")
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"retention out of [0, 1]: {key}={value}")

    def apply(self, profile: NutritionalProfile) -> NutritionalProfile:
        """Profile after cooking losses (absolute nutrient amounts)."""
        return NutritionalProfile(
            {
                key: value * self.retention.get(key, 1.0)
                for key, value in profile.values.items()
            }
        )


#: Representative factors (Bognár & Piekarski-style magnitudes).
YIELD_FACTORS: dict[str, YieldFactor] = {
    factor.method: factor
    for factor in (
        YieldFactor("raw", 1.00, {}),
        YieldFactor("boiled", 0.95, {
            "vitamin_c_mg": 0.50, "sodium_mg": 0.85, "calcium_mg": 0.95,
            "iron_mg": 0.95, "sugar_g": 0.95,
        }),
        YieldFactor("steamed", 0.93, {
            "vitamin_c_mg": 0.75, "calcium_mg": 0.98, "iron_mg": 0.98,
        }),
        YieldFactor("roasted", 0.73, {
            "vitamin_c_mg": 0.70, "fat_g": 0.92, "energy_kcal": 0.96,
            "saturated_fat_g": 0.92,
        }),
        YieldFactor("grilled", 0.70, {
            "vitamin_c_mg": 0.70, "fat_g": 0.85, "energy_kcal": 0.93,
            "saturated_fat_g": 0.85,
        }),
        YieldFactor("fried", 0.82, {
            "vitamin_c_mg": 0.65,
        }),
        YieldFactor("baked", 0.88, {
            "vitamin_c_mg": 0.70,
        }),
        YieldFactor("microwaved", 0.90, {
            "vitamin_c_mg": 0.80,
        }),
    )
}

#: STATE words that imply a cooking method (extraction convenience).
STATE_TO_METHOD: dict[str, str] = {
    "boiled": "boiled",
    "hard-boiled": "boiled",
    "steamed": "steamed",
    "roasted": "roasted",
    "grilled": "grilled",
    "fried": "fried",
    "baked": "baked",
    "toasted": "baked",
    "cooked": "boiled",
}


def yield_factor(method: str) -> YieldFactor:
    """Factor for *method* (KeyError for unknown methods)."""
    return YIELD_FACTORS[method]


def infer_method(state: str) -> str | None:
    """Cooking method implied by a STATE string, if any.

    >>> infer_method("roasted and chopped")
    'roasted'
    >>> infer_method("finely chopped") is None
    True
    """
    for word in state.lower().split():
        if word in STATE_TO_METHOD:
            return STATE_TO_METHOD[word]
    return None


def apply_cooking_yield(
    profile: NutritionalProfile, state: str
) -> tuple[NutritionalProfile, str | None]:
    """Adjust a raw-ingredient profile for the cooking its state implies.

    Returns (adjusted profile, method or None).  With no method
    implied the profile is returned unchanged — exactly the paper's
    default behaviour.
    """
    method = infer_method(state)
    if method is None:
        return profile, None
    return YIELD_FACTORS[method].apply(profile), method
