"""Nutritional profile arithmetic.

A profile is a vector over the tracked nutrient panel.  The paper's
core assumption ([3], Schakel et al.): "the sum total of nutrition of
ingredients in a particular recipe can be approximated for the
nutritional profile of the recipe" — so profiles form a small linear
algebra: add ingredients, scale by grams, divide by servings.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.usda.nutrients import NUTRIENT_KEYS
from repro.usda.schema import FoodItem

_KNOWN_KEYS = frozenset(NUTRIENT_KEYS)


@dataclass(frozen=True, slots=True)
class NutritionalProfile:
    """Immutable nutrient vector (absolute amounts, not per-100 g)."""

    values: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # issuperset takes the no-allocation C path; profiles are
        # constructed once per ingredient line at corpus scale.
        if not _KNOWN_KEYS.issuperset(self.values):
            unknown = set(self.values) - _KNOWN_KEYS
            raise ValueError(f"unknown nutrient keys: {sorted(unknown)}")

    @classmethod
    def zero(cls) -> "NutritionalProfile":
        """The additive identity."""
        return cls({})

    @classmethod
    def from_food(cls, food: FoodItem, grams: float) -> "NutritionalProfile":
        """Profile of *grams* of *food* (SR values are per 100 g)."""
        if grams < 0:
            raise ValueError(f"negative grams: {grams}")
        return cls(
            {key: value * grams / 100.0 for key, value in food.nutrients.items()}
        )

    def get(self, key: str) -> float:
        """Amount of nutrient *key* (0.0 if absent)."""
        if key not in NUTRIENT_KEYS:
            raise KeyError(f"unknown nutrient key: {key}")
        return self.values.get(key, 0.0)

    @property
    def calories(self) -> float:
        """Energy in kcal."""
        return self.get("energy_kcal")

    def __add__(self, other: "NutritionalProfile") -> "NutritionalProfile":
        keys = set(self.values) | set(other.values)
        return NutritionalProfile(
            {k: self.values.get(k, 0.0) + other.values.get(k, 0.0) for k in keys}
        )

    @classmethod
    def sum(cls, profiles: Iterable["NutritionalProfile"]) -> "NutritionalProfile":
        """Left-to-right sum without per-step intermediate profiles.

        Equal to chained ``+`` bit for bit: each key accumulates its
        contributions in the same order, and the ``+ 0.0`` a chained
        add would apply for a key absent from one side is a float
        no-op for the non-negative amounts profiles hold.  Recipe
        aggregation constructs one profile instead of one per
        ingredient line.
        """
        values: dict[str, float] = {}
        for profile in profiles:
            for key, value in profile.values.items():
                values[key] = values.get(key, 0.0) + value
        return cls(values)

    def scaled(self, factor: float) -> "NutritionalProfile":
        """Profile multiplied by *factor*.

        Also the hook for cooking-yield adjustment ([4], Bognár &
        Piekarski), which the paper leaves as future work: apply a
        retention factor per cooked ingredient if one is known.
        """
        if factor < 0:
            raise ValueError(f"negative factor: {factor}")
        return NutritionalProfile({k: v * factor for k, v in self.values.items()})

    def per_serving(self, servings: int) -> "NutritionalProfile":
        """Divide by a positive serving count."""
        if servings <= 0:
            raise ValueError(f"servings must be positive: {servings}")
        return self.scaled(1.0 / servings)

    def rounded(self, ndigits: int = 2) -> dict[str, float]:
        """Plain dict with rounded values, canonical key order."""
        return {
            key: round(self.values.get(key, 0.0), ndigits)
            for key in NUTRIENT_KEYS
        }
