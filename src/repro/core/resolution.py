"""The §II-C unit-resolution strategy chain, with reason codes.

The paper's Figure 2 diagnostic — the gap between name-level and full
mapping, "the main problem lies in matching the units" — is only
actionable if one can ask *which* §II-C mechanism resolved or killed
each line.  This module makes the fallback chain explicit: an ordered
sequence of named strategies, each emitting a machine-readable reason
code, driven by :func:`run_unit_chain`.

Strategies, in the exact order the nested conditionals used to apply
them (order is behaviour — changing it changes estimates):

1. ``ner-unit`` — the NER-detected UNIT entity resolves against the
   matched food's portions.  **If a NER unit is present but fails to
   resolve, ``phrase-scan`` and ``bare-count`` never run** (the unit
   text names a measure we do not know for this food; re-scanning the
   phrase would just re-find it, and a bare count would contradict the
   explicit measure).  ``size-as-unit`` still runs.
2. ``phrase-scan`` — no NER unit: scan the raw phrase for a known
   unit token ("In certain cases NER did not detect units ...").
3. ``size-as-unit`` — the SIZE entity doubles as a unit
   ("1 small onion").
4. ``bare-count`` — no unit text at all: a bare quantity of the food
   ("2 eggs").
5. ``plausibility-rescue`` — a resolved candidate above the
   grams-per-line threshold ("500 cups") is re-resolved from the
   phrase scan; an implausible candidate without a plausible rescue
   dies here.
6. ``corpus-frequent-unit`` — the corpus-level most-frequent-unit
   statistic for the ingredient name (the paper's garlic → clove
   example), itself subject to the plausibility threshold.

Every run produces a :class:`ChainResult` carrying the final
``reason`` (the strategy that resolved the unit, or the last one that
failed) and a compact ``trace`` of ``"stage:outcome"`` events for the
stages that actually ran.  Event strings are interned in a module
table so the hot path allocates no new strings; the verbose per-stage
report behind ``repro explain`` / ``/v1/explain`` is produced by the
same driver through an optional recorder, so the two surfaces cannot
drift.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.units.fallback import UnitFallback, scan_for_unit
from repro.units.gram_weights import UnitResolution, UnitResolver

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core.estimator)
    from repro.core.estimator import ParsedIngredient

# ---------------------------------------------------------------------
# reason codes (machine-readable; the docs table mirrors these)

#: Unit resolved from the NER-detected UNIT entity.
REASON_NER_UNIT = "ner-unit"
#: Unit recovered by scanning the raw phrase for a known unit token.
REASON_PHRASE_SCAN = "phrase-scan"
#: The SIZE entity resolved as the unit ("1 small onion").
REASON_SIZE_AS_UNIT = "size-as-unit"
#: Bare quantity of the food ("2 eggs") via its first countable portion.
REASON_BARE_COUNT = "bare-count"
#: Initial candidate was implausible; the phrase-scanned unit rescued it.
REASON_PLAUSIBILITY_RESCUE = "plausibility-rescue"
#: Corpus-level most-frequent-unit statistic resolved the line.
REASON_CORPUS_UNIT = "corpus-frequent-unit"
#: Parse produced no NAME entity; the line never reached matching.
REASON_NO_NAME = "no-name"
#: No USDA-SR description shares a word with the parsed name.
REASON_NO_MATCH = "no-description-match"
#: Estimating the line raised; it was quarantined to a dead-letter
#: record (see :mod:`repro.deadletter`) instead of aborting the run.
#: Not part of the strategy chain — it marks a line the chain never
#: got to finish.
REASON_ESTIMATOR_ERROR = "estimator-error"

#: Reasons that mean "unit resolved" (status ``matched``), in chain order.
RESOLUTION_REASONS: tuple[str, ...] = (
    REASON_NER_UNIT,
    REASON_PHRASE_SCAN,
    REASON_SIZE_AS_UNIT,
    REASON_BARE_COUNT,
    REASON_PLAUSIBILITY_RESCUE,
    REASON_CORPUS_UNIT,
)

#: Reasons that kill a line before unit resolution (status ``unmatched``).
MATCH_FAILURE_REASONS: tuple[str, ...] = (REASON_NO_NAME, REASON_NO_MATCH)

# ---------------------------------------------------------------------
# stage outcomes

OUTCOME_RESOLVED = "resolved"
#: The strategy ran but produced no unit text to resolve.
OUTCOME_NO_UNIT = "no-unit"
#: The strategy produced a unit, but the food has no gram weight for it.
OUTCOME_UNRESOLVABLE = "unresolvable"
#: The resolved (quantity, unit) pair exceeds the plausibility threshold.
OUTCOME_IMPLAUSIBLE = "implausible"
#: The food has no countable portion for a bare quantity.
OUTCOME_NO_PORTION = "no-countable-portion"
#: The corpus statistics have never seen this ingredient name.
OUTCOME_NEVER_OBSERVED = "never-observed"
#: Recorder-only outcome for stages the chain never ran.
OUTCOME_SKIPPED = "skipped"

#: Interned ``"stage:outcome"`` event strings — the hot path emits a
#: bounded vocabulary, so every event is built exactly once.
_EVENTS: dict[tuple[str, str], str] = {}
#: Interned one-event trace tuples for the same vocabulary.  The
#: common lines (one strategy, one outcome) take their whole trace
#: from this table, so provenance costs zero allocations there.
_EVENT_TUPLES: dict[tuple[str, str], tuple[str, ...]] = {}


def trace_event(stage: str, outcome: str) -> str:
    """The interned compact event string for (*stage*, *outcome*)."""
    key = (stage, outcome)
    event = _EVENTS.get(key)
    if event is None:
        event = _EVENTS[key] = f"{stage}:{outcome}"
        _EVENT_TUPLES[key] = (event,)
    return event


def _event1(stage: str, outcome: str) -> tuple[str, ...]:
    """The interned single-event trace tuple for (*stage*, *outcome*)."""
    key = (stage, outcome)
    single = _EVENT_TUPLES.get(key)
    if single is None:
        trace_event(stage, outcome)
        single = _EVENT_TUPLES[key]
    return single


class ChainRecorder(Protocol):
    """Verbose per-stage observer for the explain surface.

    The driver calls :meth:`record` for **every** stage — including
    skipped ones, which the compact trace omits — with a human-readable
    detail string.  Recording must not affect the chain's outcome.
    """

    def record(
        self,
        stage: str,
        outcome: str,
        detail: str = "",
        resolution: UnitResolution | None = None,
    ) -> None:
        ...


class ResolutionContext:
    """Per-line state shared by the chain's strategies.

    Memoizes the raw-phrase unit scan: up to two stages
    (``phrase-scan`` and ``plausibility-rescue``) need it, and the
    tokenize-and-normalize walk must run at most once per line.
    """

    __slots__ = ("parsed", "resolver", "quantity", "_scanned", "_scan_done")

    def __init__(
        self,
        parsed: "ParsedIngredient",
        resolver: UnitResolver,
        quantity: float,
    ):
        self.parsed = parsed
        self.resolver = resolver
        self.quantity = quantity
        self._scanned: str | None = None
        self._scan_done = False

    def scan(self) -> str | None:
        if not self._scan_done:
            self._scanned = scan_for_unit(self.parsed.text)
            self._scan_done = True
        return self._scanned


class UnitStrategy:
    """One named candidate-producing step of the §II-C chain."""

    __slots__ = ("reason", "describe")

    def __init__(self, reason: str, describe: str):
        self.reason = reason
        self.describe = describe

    def applies(self, ctx: ResolutionContext) -> bool:
        raise NotImplementedError

    def skip_detail(self, ctx: ResolutionContext) -> str:
        raise NotImplementedError

    def attempt(self, ctx: ResolutionContext) -> UnitResolution | None:
        raise NotImplementedError

    def failure(self, ctx: ResolutionContext) -> tuple[str, str]:
        """(outcome, detail) after :meth:`attempt` returned ``None``."""
        raise NotImplementedError


class _NerUnit(UnitStrategy):
    def applies(self, ctx):
        return bool(ctx.parsed.unit)

    def skip_detail(self, ctx):
        return "NER detected no UNIT entity"

    def attempt(self, ctx):
        return ctx.resolver.resolve(ctx.parsed.unit)

    def failure(self, ctx):
        return (
            OUTCOME_UNRESOLVABLE,
            f"no gram weight for NER unit {ctx.parsed.unit!r} "
            f"(phrase-scan and bare-count are skipped: the phrase "
            f"names an explicit measure)",
        )


class _PhraseScan(UnitStrategy):
    def applies(self, ctx):
        return not ctx.parsed.unit

    def skip_detail(self, ctx):
        return "NER already detected a unit"

    def attempt(self, ctx):
        scanned = ctx.scan()
        if scanned is None:
            return None
        return ctx.resolver.resolve(scanned)

    def failure(self, ctx):
        scanned = ctx.scan()
        if scanned is None:
            return OUTCOME_NO_UNIT, "no known unit token in the phrase"
        return (
            OUTCOME_UNRESOLVABLE,
            f"scanned unit {scanned!r} has no gram weight for this food",
        )


class _SizeAsUnit(UnitStrategy):
    def applies(self, ctx):
        return bool(ctx.parsed.size)

    def skip_detail(self, ctx):
        return "no SIZE entity in the phrase"

    def attempt(self, ctx):
        return ctx.resolver.resolve(ctx.parsed.size)

    def failure(self, ctx):
        return (
            OUTCOME_UNRESOLVABLE,
            f"SIZE {ctx.parsed.size!r} has no gram weight for this food",
        )


class _BareCount(UnitStrategy):
    def applies(self, ctx):
        return not ctx.parsed.unit

    def skip_detail(self, ctx):
        return "NER already detected a unit"

    def attempt(self, ctx):
        return ctx.resolver.resolve(None)

    def failure(self, ctx):
        return OUTCOME_NO_PORTION, "food has no countable portion"


#: The candidate-producing strategies, in application order.  The
#: ``applies`` predicates encode the skip rules (see the module
#: docstring); the driver runs each applicable strategy until one
#: resolves.
CANDIDATE_CHAIN: tuple[UnitStrategy, ...] = (
    _NerUnit(REASON_NER_UNIT, "resolve the NER-detected UNIT entity"),
    _PhraseScan(REASON_PHRASE_SCAN, "scan the raw phrase for a known unit"),
    _SizeAsUnit(REASON_SIZE_AS_UNIT, "resolve the SIZE entity as a unit"),
    _BareCount(REASON_BARE_COUNT, "bare count via the first countable portion"),
)


class ChainResult:
    """Outcome of one :func:`run_unit_chain` run."""

    __slots__ = ("resolution", "reason", "trace", "used_corpus_unit")

    def __init__(
        self,
        resolution: UnitResolution | None,
        reason: str,
        trace: tuple[str, ...],
        used_corpus_unit: bool,
    ):
        self.resolution = resolution
        self.reason = reason
        self.trace = trace
        self.used_corpus_unit = used_corpus_unit


# Precomputed trace atoms for the fused fast path below: one interned
# tuple per (stage, outcome) the chain can emit.
_T_NER_UNRESOLVABLE = _event1(REASON_NER_UNIT, OUTCOME_UNRESOLVABLE)
_T_SCAN_NO_UNIT = _event1(REASON_PHRASE_SCAN, OUTCOME_NO_UNIT)
_T_SCAN_UNRESOLVABLE = _event1(REASON_PHRASE_SCAN, OUTCOME_UNRESOLVABLE)
_T_SIZE_UNRESOLVABLE = _event1(REASON_SIZE_AS_UNIT, OUTCOME_UNRESOLVABLE)
_T_BARE_NO_PORTION = _event1(REASON_BARE_COUNT, OUTCOME_NO_PORTION)
_T_RESCUE_UNRESOLVABLE = _event1(
    REASON_PLAUSIBILITY_RESCUE, OUTCOME_UNRESOLVABLE
)
_T_CORPUS_NEVER = _event1(REASON_CORPUS_UNIT, OUTCOME_NEVER_OBSERVED)
_T_CORPUS_UNRESOLVABLE = _event1(REASON_CORPUS_UNIT, OUTCOME_UNRESOLVABLE)
_T_CORPUS_IMPLAUSIBLE = _event1(REASON_CORPUS_UNIT, OUTCOME_IMPLAUSIBLE)
_T_CORPUS_RESOLVED = _event1(REASON_CORPUS_UNIT, OUTCOME_RESOLVED)
_T_RESOLVED: dict[str, tuple[str, ...]] = {
    reason: _event1(reason, OUTCOME_RESOLVED)
    for reason in RESOLUTION_REASONS
}
_T_IMPLAUSIBLE: dict[str, tuple[str, ...]] = {
    reason: _event1(reason, OUTCOME_IMPLAUSIBLE)
    for reason in RESOLUTION_REASONS
}


def _run_chain_fast(
    parsed: "ParsedIngredient",
    resolver: UnitResolver,
    quantity: float,
    fallback: UnitFallback,
    consult_fallback: bool,
) -> ChainResult:
    """The recorder-free chain, fused into straight-line code.

    Estimation runs this for every ingredient line, so the strategy
    dispatch of the declarative driver is hand-inlined here: same
    strategies, same order, same skip rules, emitting the same interned
    reason/trace atoms — at the cost of the old nested-conditional
    shape.  The declarative driver below remains the specification
    (and the explain surface); ``run_unit_chain`` routes to it whenever
    a recorder is attached, and
    ``tests/test_core_resolution.py::TestFastPathEquivalence`` asserts
    the two produce identical :class:`ChainResult`\\ s over a corpus,
    so they cannot drift apart silently.
    """
    unit = parsed.unit or None
    scanned: str | None = None
    scan_done = False
    trace: tuple[str, ...] = ()

    # 1. ner-unit (failure skips phrase-scan and bare-count) /
    # 2. phrase-scan (only when NER produced no unit).
    if unit is not None:
        resolution = resolver.resolve(unit)
        reason = REASON_NER_UNIT
        if resolution is None:
            trace = _T_NER_UNRESOLVABLE
    else:
        scanned = scan_for_unit(parsed.text)
        scan_done = True
        reason = REASON_PHRASE_SCAN
        if scanned is None:
            resolution = None
            trace = _T_SCAN_NO_UNIT
        else:
            resolution = resolver.resolve(scanned)
            if resolution is None:
                trace = _T_SCAN_UNRESOLVABLE

    # 3. size-as-unit.
    if resolution is None and parsed.size:
        resolution = resolver.resolve(parsed.size)
        reason = REASON_SIZE_AS_UNIT
        if resolution is None:
            trace = trace + _T_SIZE_UNRESOLVABLE

    # 4. bare-count (only when NER produced no unit).
    if resolution is None and unit is None:
        resolution = resolver.resolve(None)
        reason = REASON_BARE_COUNT
        if resolution is None:
            trace = trace + _T_BARE_NO_PORTION

    # 5. plausibility gate + rescue.
    if resolution is not None and not fallback.plausible(
        quantity, resolution.grams_per_unit
    ):
        event = _T_IMPLAUSIBLE[reason]
        trace = event if not trace else trace + event
        if not scan_done:
            scanned = scan_for_unit(parsed.text)
            scan_done = True
        rescued = resolver.resolve(scanned) if scanned else None
        reason = REASON_PLAUSIBILITY_RESCUE
        if rescued is not None and fallback.plausible(
            quantity, rescued.grams_per_unit
        ):
            resolution = rescued
        else:
            resolution = None
            trace = trace + _T_RESCUE_UNRESOLVABLE

    if resolution is not None:
        event = _T_RESOLVED[reason]
        return ChainResult(
            resolution, reason, event if not trace else trace + event, False
        )
    if not consult_fallback:
        return ChainResult(None, reason, trace, False)

    # 6. corpus-frequent-unit.
    frequent = fallback.most_frequent_unit(parsed.name)
    if frequent is None:
        trace = trace + _T_CORPUS_NEVER
        return ChainResult(None, REASON_CORPUS_UNIT, trace, False)
    rescued = resolver.resolve(frequent)
    if rescued is not None and fallback.plausible(
        quantity, rescued.grams_per_unit
    ):
        trace = trace + _T_CORPUS_RESOLVED
        return ChainResult(rescued, REASON_CORPUS_UNIT, trace, True)
    trace = trace + (
        _T_CORPUS_UNRESOLVABLE if rescued is None else _T_CORPUS_IMPLAUSIBLE
    )
    return ChainResult(None, REASON_CORPUS_UNIT, trace, False)


def run_unit_chain(
    parsed: "ParsedIngredient",
    resolver: UnitResolver,
    quantity: float,
    fallback: UnitFallback,
    consult_fallback: bool = True,
    recorder: ChainRecorder | None = None,
) -> ChainResult:
    """Run the full §II-C strategy chain for one parsed line.

    Pure given its arguments: the outcome depends only on *parsed*,
    the resolver's food, *quantity* and the state of *fallback* — the
    order-independence the two-phase corpus protocol builds on.  With
    ``consult_fallback=False`` the ``corpus-frequent-unit`` strategy
    never runs (the collect pass uses this so each line's outcome is
    independent of corpus order).  *recorder*, when given, receives a
    verbose event for every stage, including skipped ones; it never
    changes the result.

    Without a recorder the call takes :func:`_run_chain_fast`, the
    allocation-light fused form of the identical chain (equivalence is
    test-enforced); with one, the declarative driver below walks
    :data:`CANDIDATE_CHAIN` strategy by strategy.
    """
    if recorder is None:
        return _run_chain_fast(
            parsed, resolver, quantity, fallback, consult_fallback
        )
    # From here on a recorder is always attached — the recorder-free
    # case took the fast path above.
    ctx = ResolutionContext(parsed, resolver, quantity)
    # The trace accumulates by concatenating interned one-event tuples
    # (identical atoms to the fast path).
    trace: tuple[str, ...] = ()
    resolution: UnitResolution | None = None
    reason = REASON_NER_UNIT  # overwritten by the first applicable stage

    for position, strategy in enumerate(CANDIDATE_CHAIN):
        if not strategy.applies(ctx):
            recorder.record(
                strategy.reason, OUTCOME_SKIPPED, strategy.skip_detail(ctx)
            )
            continue
        resolution = strategy.attempt(ctx)
        reason = strategy.reason
        if resolution is not None:
            for later in CANDIDATE_CHAIN[position + 1 :]:
                recorder.record(
                    later.reason,
                    OUTCOME_SKIPPED,
                    f"{strategy.reason} already produced a candidate",
                )
            break
        outcome, detail = strategy.failure(ctx)
        event = _event1(strategy.reason, outcome)
        trace = event if not trace else trace + event
        recorder.record(strategy.reason, outcome, detail)

    # Plausibility gate + rescue over whichever candidate won above.
    if resolution is not None and not fallback.plausible(
        quantity, resolution.grams_per_unit
    ):
        event = _event1(reason, OUTCOME_IMPLAUSIBLE)
        trace = event if not trace else trace + event
        recorder.record(
            reason,
            OUTCOME_IMPLAUSIBLE,
            f"{quantity:g} x {resolution.grams_per_unit:g} g/unit "
            f"exceeds the {fallback.max_grams:g} g threshold",
            resolution,
        )
        rescued = ctx.resolver.resolve(ctx.scan()) if ctx.scan() else None
        if rescued is not None and fallback.plausible(
            quantity, rescued.grams_per_unit
        ):
            resolution = rescued
            reason = REASON_PLAUSIBILITY_RESCUE
        else:
            resolution = None
            reason = REASON_PLAUSIBILITY_RESCUE
            trace = trace + _event1(
                REASON_PLAUSIBILITY_RESCUE, OUTCOME_UNRESOLVABLE
            )
            recorder.record(
                REASON_PLAUSIBILITY_RESCUE,
                OUTCOME_UNRESOLVABLE,
                "no plausible phrase-scanned unit to rescue with",
            )

    if resolution is not None:
        event = _event1(reason, OUTCOME_RESOLVED)
        trace = event if not trace else trace + event
        recorder.record(reason, OUTCOME_RESOLVED, "unit resolved", resolution)
        return ChainResult(resolution, reason, trace, False)

    if not consult_fallback:
        recorder.record(
            REASON_CORPUS_UNIT,
            OUTCOME_SKIPPED,
            "corpus statistics not consulted (collect pass)",
        )
        return ChainResult(None, reason, trace, False)

    # Last resort: the corpus-level most-frequent-unit statistic.
    reason = REASON_CORPUS_UNIT
    frequent = fallback.most_frequent_unit(parsed.name)
    if frequent is None:
        trace = trace + _T_CORPUS_NEVER
        recorder.record(
            REASON_CORPUS_UNIT,
            OUTCOME_NEVER_OBSERVED,
            f"no unit ever observed for {parsed.name!r}",
        )
        return ChainResult(None, reason, trace, False)
    rescued = resolver.resolve(frequent)
    if rescued is not None and fallback.plausible(
        quantity, rescued.grams_per_unit
    ):
        trace = trace + _T_CORPUS_RESOLVED
        recorder.record(
            REASON_CORPUS_UNIT,
            OUTCOME_RESOLVED,
            f"most frequent unit for {parsed.name!r} is {frequent!r}",
            rescued,
        )
        return ChainResult(rescued, reason, trace, True)
    if rescued is None:
        outcome = OUTCOME_UNRESOLVABLE
        detail = f"frequent unit {frequent!r} has no gram weight for this food"
    else:
        outcome = OUTCOME_IMPLAUSIBLE
        detail = (
            f"frequent unit {frequent!r} resolves but "
            f"{quantity:g} x {rescued.grams_per_unit:g} g/unit exceeds "
            f"the {fallback.max_grams:g} g threshold"
        )
    trace = trace + _event1(REASON_CORPUS_UNIT, outcome)
    recorder.record(REASON_CORPUS_UNIT, outcome, detail, rescued)
    return ChainResult(None, reason, trace, False)
