"""End-to-end nutritional profile estimation (paper Figure 1).

Per ingredient phrase:

1. **Ingredient Data Mining** — tokenize, run the NER tagger, group
   tagged tokens into NAME / STATE / UNIT / QUANTITY / TEMP / DF / SIZE
   entities (§II-A).
2. **Closest Description Annotation** — match NAME (+STATE/TEMP/DF)
   against USDA-SR with the modified Jaccard matcher (§II-B).
3. **Units Matching** — normalize the unit, resolve grams through the
   matched food's portions (deriving volumes when absent), then run
   the fallback chain: scan the raw phrase for a known unit, apply the
   grams-per-line plausibility threshold, and finally use the most
   frequent unit observed for that ingredient across the corpus
   (§II-C).
4. Multiply nutrients-per-gram by the resolved grams; sum over the
   recipe; divide by servings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.profile import NutritionalProfile
from repro.matching.matcher import DescriptionMatcher, MatcherConfig
from repro.matching.types import MatchResult
from repro.ner.rule_tagger import RuleBasedTagger
from repro.recipedb.model import Recipe
from repro.text.quantity import try_parse_quantity
from repro.units.fallback import UnitFallback, scan_for_unit
from repro.units.gram_weights import UnitResolution, UnitResolver
from repro.text.tokenize import tokenize
from repro.usda.database import NutrientDatabase, load_default_database

#: Ingredient-level mapping status (drives Figure 2's two series).
STATUS_FULL = "matched"          # name and unit both resolved
STATUS_NAME_ONLY = "name-only"   # description found, unit failed
STATUS_UNMATCHED = "unmatched"   # no description match


class Tagger(Protocol):
    """Anything that tags token sequences (perceptron, CRF, rules)."""

    def predict(self, tokens: list[str] | tuple[str, ...]) -> list[str]:
        ...


@dataclass(frozen=True, slots=True)
class ParsedIngredient:
    """Entity view of one tagged phrase."""

    text: str
    tokens: tuple[str, ...]
    tags: tuple[str, ...]
    name: str
    state: str
    unit: str
    quantity: str
    temperature: str
    dry_fresh: str
    size: str


@dataclass(frozen=True, slots=True)
class IngredientEstimate:
    """Per-ingredient estimation outcome with full provenance."""

    parsed: ParsedIngredient
    status: str
    match: MatchResult | None = None
    resolution: UnitResolution | None = None
    quantity: float = 0.0
    grams: float = 0.0
    profile: NutritionalProfile = field(default_factory=NutritionalProfile.zero)
    used_fallback_unit: bool = False

    @property
    def calories(self) -> float:
        return self.profile.calories


@dataclass(frozen=True, slots=True)
class RecipeEstimate:
    """Recipe-level aggregate."""

    ingredients: tuple[IngredientEstimate, ...]
    servings: int
    total: NutritionalProfile
    per_serving: NutritionalProfile

    @property
    def fraction_fully_mapped(self) -> float:
        """Share of ingredient lines with name+unit resolved (Figure 2)."""
        if not self.ingredients:
            return 0.0
        full = sum(1 for i in self.ingredients if i.status == STATUS_FULL)
        return full / len(self.ingredients)

    @property
    def fraction_name_mapped(self) -> float:
        """Share of lines whose name matched a description."""
        if not self.ingredients:
            return 0.0
        named = sum(
            1 for i in self.ingredients if i.status != STATUS_UNMATCHED
        )
        return named / len(self.ingredients)


class NutritionEstimator:
    """The full pipeline over one nutrient database."""

    def __init__(
        self,
        database: NutrientDatabase | None = None,
        tagger: Tagger | None = None,
        matcher_config: MatcherConfig | None = None,
        fallback: UnitFallback | None = None,
    ):
        self._db = database or load_default_database()
        self._tagger: Tagger = tagger or RuleBasedTagger()
        self._matcher = DescriptionMatcher(self._db, matcher_config)
        self._fallback = fallback or UnitFallback()
        self._resolvers: dict[str, UnitResolver] = {}
        # text -> ParsedIngredient memo: tokenization + NER tagging is
        # deterministic per tagger, and real corpora repeat lines
        # heavily ("1 teaspoon salt"), so batch paths pay the parse
        # cost once per distinct line.
        self._parse_cache: dict[str, ParsedIngredient] = {}

    @property
    def database(self) -> NutrientDatabase:
        return self._db

    @property
    def matcher(self) -> DescriptionMatcher:
        return self._matcher

    @property
    def fallback(self) -> UnitFallback:
        return self._fallback

    # ------------------------------------------------------------------
    # stage 1: ingredient data mining

    def parse(self, text: str) -> ParsedIngredient:
        """Tokenize, tag and group entities for one phrase.

        Phrases split into *segments* at commas and the alternative
        markers "or"/"plus"; NAME, UNIT, QUANTITY, SIZE, TEMP and DF
        come from the first segment that carries a NAME tag ("3/4 cup
        butter or 3/4 cup margarine , softened" keeps quantity "3/4",
        unit "cup", name "butter" — Table I keeps the first
        alternative; "cream of mushroom soup" keeps the full
        O-interrupted name).  STATE keeps every tagged token across
        segments ("1 hard-cooked egg , finely chopped" ->
        "hard-cooked chopped").  Within the primary segment, QUANTITY
        and UNIT take the first contiguous run so packaging
        parentheticals ("1 (15 ounce) can") cannot smuggle a second
        measure in.
        """
        tokens = tuple(tokenize(text))
        tags = tuple(self._tagger.predict(list(tokens)))

        segments: list[list[int]] = [[]]
        for i, token in enumerate(tokens):
            if token == "," or token.lower() in ("or", "plus"):
                segments.append([])
            else:
                segments[-1].append(i)
        primary = next(
            (seg for seg in segments if any(tags[i] == "NAME" for i in seg)),
            list(range(len(tokens))),
        )

        def first_run(tag: str) -> list[str]:
            run: list[str] = []
            in_run = False
            for i in primary:
                if tags[i] == tag:
                    run.append(tokens[i])
                    in_run = True
                elif in_run:
                    break
            return run

        name_tokens = [tokens[i] for i in primary if tags[i] == "NAME"]
        state_tokens = [t for t, g in zip(tokens, tags) if g == "STATE"]
        quantity = " ".join(first_run("QUANTITY")).replace(" - ", "-")
        return ParsedIngredient(
            text=text,
            tokens=tokens,
            tags=tags,
            name=" ".join(name_tokens),
            state=" ".join(state_tokens),
            unit=" ".join(first_run("UNIT")),
            quantity=quantity,
            temperature=" ".join(tokens[i] for i in primary if tags[i] == "TEMP"),
            dry_fresh=" ".join(tokens[i] for i in primary if tags[i] == "DF"),
            size=" ".join(tokens[i] for i in primary if tags[i] == "SIZE"),
        )

    # ------------------------------------------------------------------
    # stage 3: units

    def _resolver(self, ndb_no: str) -> UnitResolver:
        if ndb_no not in self._resolvers:
            self._resolvers[ndb_no] = UnitResolver(self._db.get(ndb_no))
        return self._resolvers[ndb_no]

    def _resolve_unit(
        self, parsed: ParsedIngredient, match: MatchResult, quantity: float
    ) -> tuple[UnitResolution | None, bool]:
        """Unit resolution with the §II-C fallback chain.

        Returns (resolution, used_corpus_fallback).
        """
        resolver = self._resolver(match.food.ndb_no)

        unit = parsed.unit or None
        resolution = resolver.resolve(unit) if unit else None

        # NER missed the unit: scan the raw phrase for a known one.
        if resolution is None and unit is None:
            scanned = scan_for_unit(parsed.text)
            if scanned is not None:
                resolution = resolver.resolve(scanned)

        # Size entity doubles as a unit ("1 small onion").
        if resolution is None and parsed.size:
            resolution = resolver.resolve(parsed.size)

        # Bare count ("2 eggs").
        if resolution is None and not parsed.unit:
            resolution = resolver.resolve(None)

        # Plausibility threshold: "500 cups" style mis-detections.
        if resolution is not None and not self._fallback.plausible(
            quantity, resolution.grams_per_unit
        ):
            scanned = scan_for_unit(parsed.text)
            rescued = resolver.resolve(scanned) if scanned else None
            if rescued is not None and self._fallback.plausible(
                quantity, rescued.grams_per_unit
            ):
                resolution = rescued
            else:
                resolution = None

        if resolution is not None:
            return resolution, False

        # Last resort: the most frequent unit for this ingredient name
        # across the corpus observed so far.
        frequent = self._fallback.most_frequent_unit(parsed.name)
        if frequent is not None:
            rescued = resolver.resolve(frequent)
            if rescued is not None and self._fallback.plausible(
                quantity, rescued.grams_per_unit
            ):
                return rescued, True
        return None, False

    # ------------------------------------------------------------------
    # per-ingredient estimate

    def _parse_cached(self, text: str) -> ParsedIngredient:
        parsed = self._parse_cache.get(text)
        if parsed is None:
            parsed = self.parse(text)
            self._parse_cache[text] = parsed
        return parsed

    def estimate_ingredient(self, text: str) -> IngredientEstimate:
        """Full pipeline for one phrase."""
        parsed = self._parse_cached(text)
        if not parsed.name:
            return IngredientEstimate(parsed=parsed, status=STATUS_UNMATCHED)
        match = self._matcher.match(
            parsed.name, parsed.state, parsed.temperature, parsed.dry_fresh
        )
        if match is None:
            return IngredientEstimate(parsed=parsed, status=STATUS_UNMATCHED)

        quantity = try_parse_quantity(parsed.quantity) if parsed.quantity else None
        if quantity is None:
            quantity = 1.0  # "salt to taste" and missing quantities

        resolution, used_fallback = self._resolve_unit(parsed, match, quantity)
        if resolution is None:
            return IngredientEstimate(
                parsed=parsed,
                status=STATUS_NAME_ONLY,
                match=match,
                quantity=quantity,
            )
        grams = quantity * resolution.grams_per_unit
        self._fallback.observe(parsed.name, resolution.unit)
        return IngredientEstimate(
            parsed=parsed,
            status=STATUS_FULL,
            match=match,
            resolution=resolution,
            quantity=quantity,
            grams=grams,
            profile=NutritionalProfile.from_food(match.food, grams),
            used_fallback_unit=used_fallback,
        )

    # ------------------------------------------------------------------
    # recipe level

    def estimate_recipe(
        self, ingredient_texts: list[str], servings: int = 1
    ) -> RecipeEstimate:
        """Estimate a whole recipe from its ingredient phrases."""
        if servings <= 0:
            raise ValueError(f"servings must be positive: {servings}")
        estimates = tuple(
            self.estimate_ingredient(text) for text in ingredient_texts
        )
        total = NutritionalProfile.zero()
        for est in estimates:
            total = total + est.profile
        return RecipeEstimate(
            ingredients=estimates,
            servings=servings,
            total=total,
            per_serving=total.per_serving(servings),
        )

    def estimate_recipes(
        self, recipes: list[Recipe], passes: int = 1
    ) -> list[RecipeEstimate]:
        """Batch estimation over many recipes with shared caches.

        Parsing (tokenize + NER) and description matching are memoized
        on the estimator, so a corpus where the same ingredient line
        appears in many recipes pays the per-line cost once; subsequent
        passes are nearly free.  With ``passes >= 2`` earlier passes
        populate the corpus-level most-frequent-unit table (§II-C) that
        the final pass's fallback chain consumes.
        """
        if passes < 1:
            raise ValueError(f"passes must be >= 1: {passes}")
        results: list[RecipeEstimate] = []
        for _ in range(passes):
            results = [
                self.estimate_recipe(r.ingredient_texts, r.servings)
                for r in recipes
            ]
        return results

    def estimate_corpus(
        self, recipes: list[Recipe], passes: int = 2
    ) -> list[RecipeEstimate]:
        """Estimate many recipes with corpus-level unit statistics.

        The first pass populates the most-frequent-unit table from
        successfully resolved lines; the final pass re-estimates so
        lines that needed the fallback benefit from the full corpus
        (the paper's garlic -> clove example).
        """
        return self.estimate_recipes(recipes, passes=passes)
