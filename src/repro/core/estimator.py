"""End-to-end nutritional profile estimation (paper Figure 1).

Per ingredient phrase:

1. **Ingredient Data Mining** — tokenize, run the NER tagger, group
   tagged tokens into NAME / STATE / UNIT / QUANTITY / TEMP / DF / SIZE
   entities (§II-A).
2. **Closest Description Annotation** — match NAME (+STATE/TEMP/DF)
   against USDA-SR with the modified Jaccard matcher (§II-B).
3. **Units Matching** — normalize the unit, resolve grams through the
   matched food's portions (deriving volumes when absent), then run
   the fallback chain: scan the raw phrase for a known unit, apply the
   grams-per-line plausibility threshold, and finally use the most
   frequent unit observed for that ingredient across the corpus
   (§II-C).
4. Multiply nutrients-per-gram by the resolved grams; sum over the
   recipe; divide by servings.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Protocol

from repro import faults
from repro.core.profile import NutritionalProfile
from repro.core.resolution import (
    REASON_ESTIMATOR_ERROR,
    REASON_NO_MATCH,
    REASON_NO_NAME,
    ChainResult,
    run_unit_chain,
)
from repro.deadletter import DeadLetterLog
from repro.matching.matcher import DescriptionMatcher, MatcherConfig
from repro.matching.types import MatchResult
from repro.ner.rule_tagger import RuleBasedTagger
from repro.recipedb.model import Recipe
from repro.text.quantity import try_parse_quantity
from repro.units.fallback import UnitFallback
from repro.units.gram_weights import UnitResolution, UnitResolver
from repro.text.tokenize import tokenize
from repro.usda.database import NutrientDatabase, load_default_database
from repro.utils import DEFAULT_CACHE_CAP, BoundedCache

#: Ingredient-level mapping status (drives Figure 2's two series).
STATUS_FULL = "matched"          # name and unit both resolved
STATUS_NAME_ONLY = "name-only"   # description found, unit failed
STATUS_UNMATCHED = "unmatched"   # no description match


class Tagger(Protocol):
    """Anything that tags token sequences (perceptron, CRF, rules)."""

    def predict(self, tokens: list[str] | tuple[str, ...]) -> list[str]:
        ...


@dataclass(frozen=True, slots=True)
class ParsedIngredient:
    """Entity view of one tagged phrase."""

    text: str
    tokens: tuple[str, ...]
    tags: tuple[str, ...]
    name: str
    state: str
    unit: str
    quantity: str
    temperature: str
    dry_fresh: str
    size: str


@dataclass(frozen=True, slots=True)
class IngredientEstimate:
    """Per-ingredient estimation outcome with full provenance.

    ``reason`` names the :mod:`repro.core.resolution` strategy that
    resolved the unit (status ``matched``), the last strategy that
    failed (status ``name-only``), or the pre-unit failure
    (``no-name`` / ``no-description-match``, status ``unmatched``).
    ``trace`` is the compact chain of ``"stage:outcome"`` events for
    the stages that ran.  Provenance rides alongside the estimate —
    it never changes grams, profile or status.
    """

    parsed: ParsedIngredient
    status: str
    match: MatchResult | None = None
    resolution: UnitResolution | None = None
    quantity: float = 0.0
    grams: float = 0.0
    profile: NutritionalProfile = field(default_factory=NutritionalProfile.zero)
    used_fallback_unit: bool = False
    reason: str = ""
    trace: tuple[str, ...] = ()

    @property
    def calories(self) -> float:
        return self.profile.calories


@dataclass(frozen=True, slots=True)
class RecipeEstimate:
    """Recipe-level aggregate."""

    ingredients: tuple[IngredientEstimate, ...]
    servings: int
    total: NutritionalProfile
    per_serving: NutritionalProfile

    @property
    def fraction_fully_mapped(self) -> float:
        """Share of ingredient lines with name+unit resolved (Figure 2)."""
        if not self.ingredients:
            return 0.0
        full = sum(1 for i in self.ingredients if i.status == STATUS_FULL)
        return full / len(self.ingredients)

    @property
    def fraction_name_mapped(self) -> float:
        """Share of lines whose name matched a description."""
        if not self.ingredients:
            return 0.0
        named = sum(
            1 for i in self.ingredients if i.status != STATUS_UNMATCHED
        )
        return named / len(self.ingredients)


def quarantined_estimate(text: str, error: BaseException) -> IngredientEstimate:
    """Zero-contribution placeholder for a line whose estimation raised.

    Status ``unmatched`` with reason ``estimator-error``: the line
    adds nothing to recipe totals and nothing to the corpus unit
    statistics, so every *other* line's estimate is bit-identical to
    a run over the corpus with this line removed — the quarantine
    parity contract (see :mod:`repro.deadletter`).
    """
    parsed = ParsedIngredient(
        text=text,
        tokens=(),
        tags=(),
        name="",
        state="",
        unit="",
        quantity="",
        temperature="",
        dry_fresh="",
        size="",
    )
    return IngredientEstimate(
        parsed=parsed,
        status=STATUS_UNMATCHED,
        reason=REASON_ESTIMATOR_ERROR,
        trace=(f"{REASON_ESTIMATOR_ERROR}:{type(error).__name__}",),
    )


def group_entities(
    text: str, tokens: tuple[str, ...], tags: tuple[str, ...]
) -> ParsedIngredient:
    """Group tagged tokens into a :class:`ParsedIngredient`.

    The entity-grouping half of :meth:`NutritionEstimator.parse`,
    shared verbatim with the columnar chunk pipeline
    (:mod:`repro.core.columnar`) so both paths produce identical
    parses from identical ``(tokens, tags)``.  See :meth:`parse` for
    the segment/primary-run semantics.
    """
    segments: list[list[int]] = [[]]
    for i, token in enumerate(tokens):
        if token == "," or token.lower() in ("or", "plus"):
            segments.append([])
        else:
            segments[-1].append(i)
    primary = next(
        (seg for seg in segments if any(tags[i] == "NAME" for i in seg)),
        list(range(len(tokens))),
    )

    def first_run(tag: str) -> list[str]:
        run: list[str] = []
        in_run = False
        for i in primary:
            if tags[i] == tag:
                run.append(tokens[i])
                in_run = True
            elif in_run:
                break
        return run

    name_tokens = [tokens[i] for i in primary if tags[i] == "NAME"]
    state_tokens = [t for t, g in zip(tokens, tags) if g == "STATE"]
    quantity = " ".join(first_run("QUANTITY")).replace(" - ", "-")
    return ParsedIngredient(
        text=text,
        tokens=tokens,
        tags=tags,
        name=" ".join(name_tokens),
        state=" ".join(state_tokens),
        unit=" ".join(first_run("UNIT")),
        quantity=quantity,
        temperature=" ".join(tokens[i] for i in primary if tags[i] == "TEMP"),
        dry_fresh=" ".join(tokens[i] for i in primary if tags[i] == "DF"),
        size=" ".join(tokens[i] for i in primary if tags[i] == "SIZE"),
    )


class NutritionEstimator:
    """The full pipeline over one nutrient database."""

    def __init__(
        self,
        database: NutrientDatabase | None = None,
        tagger: Tagger | None = None,
        matcher_config: MatcherConfig | None = None,
        fallback: UnitFallback | None = None,
        cache_cap: int = DEFAULT_CACHE_CAP,
        *,
        matcher: DescriptionMatcher | None = None,
        resolvers: dict[str, UnitResolver] | None = None,
    ):
        """Build the pipeline, or assemble it from prebuilt parts.

        The keyword-only *matcher* and *resolvers* accept components
        restored from an artifact snapshot (:mod:`repro.artifacts`),
        skipping description preprocessing and portion normalization.
        A prebuilt matcher must wrap *database* and excludes
        *matcher_config* (the matcher already carries its config).
        """
        self._db = database or load_default_database()
        self._tagger: Tagger = tagger or RuleBasedTagger()
        if matcher is None:
            matcher = DescriptionMatcher(
                self._db, matcher_config, cache_cap=cache_cap
            )
        else:
            if matcher_config is not None:
                raise ValueError(
                    "matcher_config and a prebuilt matcher are mutually "
                    "exclusive (the matcher already has a config)"
                )
            if matcher.database is not self._db:
                raise ValueError(
                    "prebuilt matcher must wrap the estimator's database"
                )
        self._matcher = matcher
        self._fallback = fallback or UnitFallback()
        self._resolvers: dict[str, UnitResolver] = dict(resolvers or {})
        # text -> ParsedIngredient memo: tokenization + NER tagging is
        # deterministic per tagger, and real corpora repeat lines
        # heavily ("1 teaspoon salt"), so batch paths pay the parse
        # cost once per distinct line.  Size-capped (FIFO) so
        # long-running processes cannot grow without limit.
        self._parse_cache: dict[str, ParsedIngredient] = BoundedCache(cache_cap)
        self._columnar = None  # lazy ColumnarPipeline (repro.core.columnar)

    @property
    def database(self) -> NutrientDatabase:
        return self._db

    @property
    def matcher(self) -> DescriptionMatcher:
        return self._matcher

    @property
    def tagger(self) -> Tagger:
        """The NER tagger stage (rule tagger unless one was injected)."""
        return self._tagger

    @property
    def fallback(self) -> UnitFallback:
        return self._fallback

    @property
    def columnar(self):
        """The batched per-chunk pipeline bound to this estimator.

        Built lazily (the module imports numpy-adjacent helpers) and
        memoized; see :mod:`repro.core.columnar`.  Results are
        bit-identical to :meth:`_estimate_line` — the columnar stages
        only reorganize *where* work happens (per chunk instead of per
        line), never *what* is computed.
        """
        if self._columnar is None:
            from repro.core.columnar import ColumnarPipeline

            self._columnar = ColumnarPipeline(self)
        return self._columnar

    # ------------------------------------------------------------------
    # stage 1: ingredient data mining

    def parse(self, text: str) -> ParsedIngredient:
        """Tokenize, tag and group entities for one phrase.

        Phrases split into *segments* at commas and the alternative
        markers "or"/"plus"; NAME, UNIT, QUANTITY, SIZE, TEMP and DF
        come from the first segment that carries a NAME tag ("3/4 cup
        butter or 3/4 cup margarine , softened" keeps quantity "3/4",
        unit "cup", name "butter" — Table I keeps the first
        alternative; "cream of mushroom soup" keeps the full
        O-interrupted name).  STATE keeps every tagged token across
        segments ("1 hard-cooked egg , finely chopped" ->
        "hard-cooked chopped").  Within the primary segment, QUANTITY
        and UNIT take the first contiguous run so packaging
        parentheticals ("1 (15 ounce) can") cannot smuggle a second
        measure in.
        """
        tokens = tuple(tokenize(text))
        tags = tuple(self._tagger.predict(list(tokens)))
        return group_entities(text, tokens, tags)

    # ------------------------------------------------------------------
    # stage 3: units

    def _resolver(self, ndb_no: str) -> UnitResolver:
        if ndb_no not in self._resolvers:
            self._resolvers[ndb_no] = UnitResolver(self._db.get(ndb_no))
        return self._resolvers[ndb_no]

    def resolver_for(self, ndb_no: str) -> UnitResolver:
        """The memoized per-food unit resolver (explain surface hook)."""
        return self._resolver(ndb_no)

    def _resolve_unit(
        self,
        parsed: ParsedIngredient,
        match: MatchResult,
        quantity: float,
        consult_fallback: bool = True,
    ) -> ChainResult:
        """Unit resolution with the §II-C strategy chain.

        Thin binding of :func:`repro.core.resolution.run_unit_chain`
        to this estimator's per-food resolvers and fallback table —
        the chain order, skip rules (an NER-detected unit that fails
        to resolve skips the phrase-scan and bare-count strategies;
        see the :mod:`repro.core.resolution` docstring) and reason
        codes all live there.  With ``consult_fallback=False`` the
        corpus-level most-frequent-unit table is never consulted —
        the collect pass of the corpus protocol uses this so each
        line's outcome depends only on the line itself, never on
        processing order.
        """
        return run_unit_chain(
            parsed,
            self._resolver(match.food.ndb_no),
            quantity,
            self._fallback,
            consult_fallback,
        )

    # ------------------------------------------------------------------
    # per-ingredient estimate

    def _parse_cached(self, text: str) -> ParsedIngredient:
        parsed = self._parse_cache.get(text)
        if parsed is None:
            parsed = self.parse(text)
            self._parse_cache[text] = parsed
        return parsed

    def parse_cache_stats(self) -> dict:
        """Hit/miss/eviction counters for the parse memo (``/metrics``)."""
        return self._parse_cache.stats()

    def _estimate_line(
        self, text: str, consult_fallback: bool = True
    ) -> IngredientEstimate:
        """Estimate one phrase without recording unit observations.

        The pure, order-independent core of the pipeline: given a
        fixed fallback table, the result depends only on *text*.  The
        corpus protocol and the sharded engine build on this; the
        public :meth:`estimate_ingredient` adds the incremental
        observation side effect.
        """
        return self._estimate_from_parsed(
            self._parse_cached(text), consult_fallback
        )

    def _estimate_from_parsed(
        self,
        parsed: ParsedIngredient,
        consult_fallback: bool = True,
        *,
        quantity_memo: dict[str, float | None] | None = None,
    ) -> IngredientEstimate:
        """Stages 2-4 for an already-parsed phrase.

        The shared tail of :meth:`_estimate_line`, also driven by the
        columnar chunk pipeline (:mod:`repro.core.columnar`) after its
        batched parse/match stages — one implementation, so the two
        paths cannot drift.  *quantity_memo* (columnar only) caches
        :func:`try_parse_quantity` results per distinct quantity
        string; the function is pure, so memoization cannot change
        outcomes.
        """
        if not parsed.name:
            return IngredientEstimate(
                parsed=parsed,
                status=STATUS_UNMATCHED,
                reason=REASON_NO_NAME,
                trace=(REASON_NO_NAME,),
            )
        match = self._matcher.match(
            parsed.name, parsed.state, parsed.temperature, parsed.dry_fresh
        )
        if match is None:
            return IngredientEstimate(
                parsed=parsed,
                status=STATUS_UNMATCHED,
                reason=REASON_NO_MATCH,
                trace=(REASON_NO_MATCH,),
            )

        if not parsed.quantity:
            quantity = None
        elif quantity_memo is not None and parsed.quantity in quantity_memo:
            quantity = quantity_memo[parsed.quantity]
        else:
            quantity = try_parse_quantity(parsed.quantity)
            if quantity_memo is not None:
                quantity_memo[parsed.quantity] = quantity
        if quantity is None:
            quantity = 1.0  # "salt to taste" and missing quantities

        outcome = self._resolve_unit(parsed, match, quantity, consult_fallback)
        if outcome.resolution is None:
            return IngredientEstimate(
                parsed=parsed,
                status=STATUS_NAME_ONLY,
                match=match,
                quantity=quantity,
                reason=outcome.reason,
                trace=outcome.trace,
            )
        resolution = outcome.resolution
        grams = quantity * resolution.grams_per_unit
        return IngredientEstimate(
            parsed=parsed,
            status=STATUS_FULL,
            match=match,
            resolution=resolution,
            quantity=quantity,
            grams=grams,
            profile=NutritionalProfile.from_food(match.food, grams),
            used_fallback_unit=outcome.used_corpus_unit,
            reason=outcome.reason,
            trace=outcome.trace,
        )

    def estimate_ingredient(self, text: str) -> IngredientEstimate:
        """Full pipeline for one phrase."""
        estimate = self._estimate_line(text)
        if estimate.status == STATUS_FULL:
            self._fallback.observe(
                estimate.parsed.name, estimate.resolution.unit
            )
        return estimate

    # ------------------------------------------------------------------
    # recipe level

    @staticmethod
    def finish_recipe(
        estimates: Sequence[IngredientEstimate], servings: int
    ) -> RecipeEstimate:
        """Aggregate per-ingredient estimates into a recipe estimate.

        Shared by :meth:`estimate_recipe` and the sharded corpus
        engine's coordinator so both sum profiles in the identical
        order with identical float operations (exact-parity
        requirement).  Static: aggregation needs no estimator state.
        """
        if servings <= 0:
            raise ValueError(f"servings must be positive: {servings}")
        total = NutritionalProfile.sum(est.profile for est in estimates)
        return RecipeEstimate(
            ingredients=tuple(estimates),
            servings=servings,
            total=total,
            per_serving=total.per_serving(servings),
        )

    def estimate_recipe(
        self, ingredient_texts: list[str], servings: int = 1
    ) -> RecipeEstimate:
        """Estimate a whole recipe from its ingredient phrases."""
        if servings <= 0:
            raise ValueError(f"servings must be positive: {servings}")
        return self.finish_recipe(
            [self.estimate_ingredient(text) for text in ingredient_texts],
            servings,
        )

    def estimate_recipes(
        self, recipes: list[Recipe], passes: int = 1
    ) -> list[RecipeEstimate]:
        """Batch estimation over many recipes with shared caches.

        Parsing (tokenize + NER) and description matching are memoized
        on the estimator, so a corpus where the same ingredient line
        appears in many recipes pays the per-line cost once; subsequent
        passes are nearly free.  With ``passes >= 2`` earlier passes
        populate the corpus-level most-frequent-unit table (§II-C) that
        the final pass's fallback chain consumes.
        """
        if passes < 1:
            raise ValueError(f"passes must be >= 1: {passes}")
        results: list[RecipeEstimate] = []
        for _ in range(passes):
            results = [
                self.estimate_recipe(r.ingredient_texts, r.servings)
                for r in recipes
            ]
        return results

    # ------------------------------------------------------------------
    # corpus level: the two-phase protocol (§II-C, sharding-exact)

    def corpus_collect_estimates(
        self,
        texts_with_counts: Iterable[tuple[str, int]],
        *,
        quarantine: DeadLetterLog | None = None,
        ordinal_base: int = 0,
        columnar: bool = False,
    ) -> tuple[dict[str, IngredientEstimate], dict[str, dict[str, int]]]:
        """Corpus pass 1 over distinct ingredient lines (shardable).

        Estimates each distinct text *without* consulting the
        most-frequent-unit table, and tallies (name, unit) observations
        weighted by how often the line occurs.  Because the fallback
        table is never consulted, each line's outcome — and therefore
        the observation table — is independent of processing order and
        of how the corpus is sharded across workers.

        With *quarantine*, a line whose estimation raises is diverted
        to a dead-letter record (numbered ``ordinal_base + i`` in the
        distinct-line table — shard coordinators pass their chunk's
        base ordinal) and replaced by a zero-contribution
        :func:`quarantined_estimate` instead of aborting the pass.
        Without it (the default), exceptions propagate — strict mode,
        the seed behaviour.

        With ``columnar=True`` the chunk is driven through the batched
        pipeline (:mod:`repro.core.columnar`): same estimates, same
        per-line exception surfacing and dead-letter records, chunk-at-
        a-time execution.

        Returns ``(text -> estimate, observation snapshot)``.  The
        snapshot merges across shards via :meth:`UnitFallback.merge`.
        """
        plan = faults.active_plan()
        observations = UnitFallback(self._fallback.max_grams)
        estimates: dict[str, IngredientEstimate] = {}
        items = (
            texts_with_counts
            if isinstance(texts_with_counts, list)
            else list(texts_with_counts)
        )
        outcomes = None
        if columnar:
            outcomes = self.columnar.estimate_lines(
                [text for text, _ in items], consult_fallback=False
            )
        for i, (text, count) in enumerate(items):
            try:
                if outcomes is not None:
                    estimate = outcomes[i].unwrap()
                else:
                    if plan is not None:
                        plan.poison(text)
                    estimate = self._estimate_line(
                        text, consult_fallback=False
                    )
            except Exception as exc:
                if quarantine is None:
                    raise
                estimate = quarantined_estimate(text, exc)
                quarantine.add(
                    "estimate",
                    ordinal_base + i,
                    text,
                    REASON_ESTIMATOR_ERROR,
                    repr(exc),
                )
            estimates[text] = estimate
            if estimate.status == STATUS_FULL:
                observations.observe(
                    estimate.parsed.name, estimate.resolution.unit, count
                )
        return estimates, observations.snapshot()

    def corpus_fallback_estimates(
        self,
        texts: Iterable[str],
        *,
        quarantine: DeadLetterLog | None = None,
        ordinals: dict[str, int] | None = None,
        columnar: bool = False,
    ) -> dict[str, IngredientEstimate]:
        """Corpus pass 2 for the unit-unresolved lines (shardable).

        Re-estimates against the estimator's *current* fallback table
        — by protocol, the merged pass-1 statistics of the whole
        corpus.  The table is only read, never written, so results
        again do not depend on order or sharding.

        With *quarantine*, a line that raises here is dead-lettered
        and simply **omitted** from the returned dict, which leaves
        its valid pass-1 name-only estimate standing (pass 2 can only
        upgrade a line, so keeping the pass-1 outcome is the safe
        degradation).  *ordinals* maps text to its distinct-line
        ordinal for the dead-letter record.
        """
        plan = faults.active_plan()
        estimates: dict[str, IngredientEstimate] = {}
        items = texts if isinstance(texts, list) else list(texts)
        outcomes = None
        if columnar:
            outcomes = self.columnar.estimate_lines(
                items, consult_fallback=True
            )
        for i, text in enumerate(items):
            try:
                if outcomes is not None:
                    estimates[text] = outcomes[i].unwrap()
                else:
                    if plan is not None:
                        plan.poison(text)
                    estimates[text] = self._estimate_line(
                        text, consult_fallback=True
                    )
            except Exception as exc:
                if quarantine is None:
                    raise
                quarantine.add(
                    "estimate",
                    (ordinals or {}).get(text, -1),
                    text,
                    REASON_ESTIMATOR_ERROR,
                    repr(exc),
                )
        return estimates

    def corpus_estimate_table(
        self,
        counts: dict[str, int] | Sequence[tuple[str, int]],
        *,
        quarantine: DeadLetterLog | None = None,
        columnar: bool = False,
    ) -> dict[str, IngredientEstimate]:
        """The full two-phase protocol over a distinct-line table.

        Collect, install the merged statistics as the estimator's
        fallback table, re-estimate the name-only lines, and return
        ``text -> final estimate``.  The single canonical
        implementation — :meth:`estimate_corpus` assembles recipes
        from it, and the sharded engine's in-process (``workers=1``)
        path calls it directly, so the parity-critical sequence lives
        in exactly one place.  *quarantine* enables poison-line
        diversion in both passes (see
        :meth:`corpus_collect_estimates`).

        *counts* is normally a distinct-line table (``text -> count``)
        but also accepts an explicit ``(text, count)`` sequence with
        repeated texts — the ``REPRO_DEDUP=0`` oracle feeds one entry
        per corpus occurrence, which yields the identical table:
        estimation is deterministic per text, and n unit observations
        of weight 1 equal one observation of weight n (same counts,
        same key insertion order, same tie-breaks).
        """
        items = (
            list(counts.items())
            if isinstance(counts, dict)
            else list(counts)
        )
        estimates, observations = self.corpus_collect_estimates(
            items, quarantine=quarantine, columnar=columnar
        )
        self._fallback.clear()
        self._fallback.merge(observations)
        pending = [
            text
            for text, estimate in estimates.items()
            if estimate.status == STATUS_NAME_ONLY
        ]
        ordinals = None
        if quarantine is not None:
            ordinals = {}
            for i, (text, _) in enumerate(items):
                if text not in ordinals:
                    ordinals[text] = i
        estimates.update(
            self.corpus_fallback_estimates(
                pending,
                quarantine=quarantine,
                ordinals=ordinals,
                columnar=columnar,
            )
        )
        return estimates

    def estimate_corpus(
        self, recipes: list[Recipe], passes: int = 2
    ) -> list[RecipeEstimate]:
        """Estimate many recipes with corpus-level unit statistics.

        With ``passes >= 2`` (the default) this runs the two-phase
        corpus protocol:

        1. **Collect** — every distinct ingredient line is estimated
           without the corpus fallback; lines whose unit resolves
           directly contribute their (name, unit) to the
           most-frequent-unit table, weighted by occurrence count.
        2. **Freeze & re-estimate** — the estimator's fallback table is
           replaced by the collected corpus statistics, and only the
           lines that matched a description but failed unit resolution
           are re-estimated against it (the paper's garlic -> clove
           example).  Resolved lines cannot be affected by the table,
           so their pass-1 estimates are already final.

        This preserves §II-C's semantics — "the most frequent unit for
        that particular ingredient was used" is a corpus-level
        statistic — while making the result exactly independent of
        recipe order and of sharding, which is what lets
        ``repro.pipeline`` distribute the passes across worker
        processes with bit-identical results.  ``passes=1`` keeps the
        single-pass incremental behaviour of
        :meth:`estimate_recipes`.

        Note the estimator's fallback table is recomputed from the
        given corpus (previous incremental observations are cleared)
        and left in place afterwards.
        """
        if passes < 1:
            raise ValueError(f"passes must be >= 1: {passes}")
        if passes == 1:
            return self.estimate_recipes(recipes, passes=1)
        counts = Counter(
            text for recipe in recipes for text in recipe.ingredient_texts
        )
        estimates = self.corpus_estimate_table(counts)
        return [
            self.finish_recipe(
                [estimates[text] for text in recipe.ingredient_texts],
                recipe.servings,
            )
            for recipe in recipes
        ]
