"""End-to-end explanations of one ingredient line (explain surface).

Drives the same pipeline as estimation — parse, match, the §II-C
strategy chain — but records a verbose :class:`StageReport` for every
chain stage (including skipped ones) and reuses
:func:`repro.matching.explain.explain_match` for the description
ranking, so ``repro explain`` and ``/v1/explain`` show exactly the
decisions the estimator made, from NER tags down to the reason code.

Determinism: the corpus-frequent-unit strategy consults **only**
statistics collected from the optional *context* lines (never the
estimator's live table), so an explanation is a pure function of
``(text, context)`` — which also makes the HTTP endpoint cacheable.
With an empty context the result matches a single-line
``/v1/estimate`` request; with context lines it demonstrates the
paper's garlic → clove rescue end to end.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.estimator import (
    STATUS_FULL,
    STATUS_NAME_ONLY,
    STATUS_UNMATCHED,
    IngredientEstimate,
    NutritionEstimator,
)
from repro.core.profile import NutritionalProfile
from repro.core.resolution import (
    REASON_NO_MATCH,
    REASON_NO_NAME,
    run_unit_chain,
)
from repro.matching.explain import MatchExplanation, explain_match
from repro.text.quantity import try_parse_quantity
from repro.units.fallback import UnitFallback
from repro.units.gram_weights import UnitResolution


@dataclass(frozen=True, slots=True)
class StageReport:
    """Verbose record of one resolution-chain stage."""

    stage: str
    outcome: str
    detail: str = ""
    unit: str | None = None
    grams_per_unit: float | None = None


class _StageRecorder:
    """Collects :class:`StageReport` rows from the chain driver."""

    __slots__ = ("reports",)

    def __init__(self) -> None:
        self.reports: list[StageReport] = []

    def record(
        self,
        stage: str,
        outcome: str,
        detail: str = "",
        resolution: UnitResolution | None = None,
    ) -> None:
        self.reports.append(
            StageReport(
                stage=stage,
                outcome=outcome,
                detail=detail,
                unit=None if resolution is None else resolution.unit,
                grams_per_unit=(
                    None if resolution is None else resolution.grams_per_unit
                ),
            )
        )


@dataclass(frozen=True, slots=True)
class LineExplanation:
    """Everything the pipeline decided about one ingredient line."""

    estimate: IngredientEstimate
    match_explanation: MatchExplanation | None
    stages: tuple[StageReport, ...]
    context_lines: int = 0

    @property
    def text(self) -> str:
        return self.estimate.parsed.text

    def render(self) -> str:
        """Multi-section human-readable report."""
        parsed = self.estimate.parsed
        lines = [f"phrase: {parsed.text!r}"]
        lines.append(
            "tags:   "
            + "  ".join(f"{t}/{g}" for t, g in zip(parsed.tokens, parsed.tags))
        )
        lines.append(
            f"parsed: name={parsed.name!r} qty={parsed.quantity!r} "
            f"unit={parsed.unit!r} size={parsed.size!r} "
            f"state={parsed.state!r}"
        )
        if self.match_explanation is not None:
            lines.append("")
            lines.append("description match:")
            for row in self.match_explanation.render().splitlines():
                lines.append(f"  {row}")
        if self.stages:
            lines.append("")
            source = (
                f"statistics from {self.context_lines} context line(s)"
                if self.context_lines
                else "no context lines (corpus statistics empty)"
            )
            lines.append(f"unit resolution chain ({source}):")
            for report in self.stages:
                gram = (
                    f"  [{report.unit} = {report.grams_per_unit:g} g]"
                    if report.unit is not None
                    else ""
                )
                lines.append(
                    f"  {report.stage:22} {report.outcome:14} "
                    f"{report.detail}{gram}"
                )
        lines.append("")
        estimate = self.estimate
        verdict = f"verdict: status={estimate.status} reason={estimate.reason}"
        if estimate.status == STATUS_FULL:
            verdict += (
                f" grams={estimate.grams:g} "
                f"calories={estimate.calories:g}"
            )
        lines.append(verdict)
        lines.append(f"trace: {' -> '.join(estimate.trace)}")
        return "\n".join(lines)


def explain_line(
    estimator: NutritionEstimator,
    text: str,
    *,
    context: Iterable[str] = (),
    k: int = 5,
) -> LineExplanation:
    """Explain one ingredient line end to end.

    *context* lines feed the corpus-frequent-unit statistics exactly
    as the collect pass of the two-phase protocol would (weighted by
    multiplicity); the estimator's own fallback table is never read
    or written, so explaining cannot perturb — or be perturbed by —
    concurrent estimation on the same estimator.
    """
    context = tuple(context)
    parsed = estimator.parse(text)
    if not parsed.name:
        return LineExplanation(
            estimate=IngredientEstimate(
                parsed=parsed,
                status=STATUS_UNMATCHED,
                reason=REASON_NO_NAME,
                trace=(REASON_NO_NAME,),
            ),
            match_explanation=None,
            stages=(),
            context_lines=len(context),
        )

    match_explanation = explain_match(
        estimator.matcher,
        parsed.name,
        parsed.state,
        parsed.temperature,
        parsed.dry_fresh,
        k=k,
    )
    match = match_explanation.winner
    if match is None:
        return LineExplanation(
            estimate=IngredientEstimate(
                parsed=parsed,
                status=STATUS_UNMATCHED,
                reason=REASON_NO_MATCH,
                trace=(REASON_NO_MATCH,),
            ),
            match_explanation=match_explanation,
            stages=(),
            context_lines=len(context),
        )

    quantity = try_parse_quantity(parsed.quantity) if parsed.quantity else None
    if quantity is None:
        quantity = 1.0

    statistics = UnitFallback(estimator.fallback.max_grams)
    if context:
        _, snapshot = estimator.corpus_collect_estimates(
            Counter(context).items()
        )
        statistics.merge(snapshot)

    recorder = _StageRecorder()
    outcome = run_unit_chain(
        parsed,
        estimator.resolver_for(match.food.ndb_no),
        quantity,
        statistics,
        consult_fallback=True,
        recorder=recorder,
    )
    if outcome.resolution is None:
        estimate = IngredientEstimate(
            parsed=parsed,
            status=STATUS_NAME_ONLY,
            match=match,
            quantity=quantity,
            reason=outcome.reason,
            trace=outcome.trace,
        )
    else:
        grams = quantity * outcome.resolution.grams_per_unit
        estimate = IngredientEstimate(
            parsed=parsed,
            status=STATUS_FULL,
            match=match,
            resolution=outcome.resolution,
            quantity=quantity,
            grams=grams,
            profile=NutritionalProfile.from_food(match.food, grams),
            used_fallback_unit=outcome.used_corpus_unit,
            reason=outcome.reason,
            trace=outcome.trace,
        )
    return LineExplanation(
        estimate=estimate,
        match_explanation=match_explanation,
        stages=tuple(recorder.reports),
        context_lines=len(context),
    )
