"""Negation rewriting (paper §II-B heuristic (f)).

"unsalted butter" must match the USDA description "Butter, without
salt".  The paper replaces all negation terms and negating prefixes
("un" in "unsalted") with the token ``not``, after which both strings
contain the word pair {not, salt} and Jaccard matching succeeds.

Three negation shapes are handled:

* standalone negation words: ``without``, ``no``, ``non`` -> ``not``
* negating prefixes on a known base: ``unsalted`` -> ``not salted``,
  ``nonfat`` -> ``not fat``
* negating suffixes: ``fat-free``/``fatfree`` -> ``fat not`` (order is
  irrelevant to set-based matching), ``sugarless`` -> ``sugar not``

Prefix stripping is guarded by a vocabulary of bases actually seen in
food text so that "union", "uncle" or "nonpareil" are never mangled.
"""

from __future__ import annotations

NEGATION_WORDS: frozenset[str] = frozenset({"without", "no", "non", "not"})

# Bases that legitimately occur negated in ingredient phrases or USDA
# descriptions.  "unsalted" -> not + salted; "uncooked" -> not + cooked.
_UN_BASES: frozenset[str] = frozenset(
    {
        "salted", "sweetened", "cooked", "bleached", "peeled", "seasoned",
        "flavored", "flavoured", "ripe", "ripened", "filtered", "refined",
        "processed", "pasteurized", "enriched", "toasted", "baked",
        "drained", "cured", "smoked", "dyed", "frosted", "shelled",
        "skinned", "trimmed", "washed", "waxed",
    }
)

_NON_BASES: frozenset[str] = frozenset(
    {"fat", "dairy", "stick", "alcoholic", "hydrogenated", "iodized"}
)

_FREE_BASES: frozenset[str] = frozenset(
    {
        "fat", "sugar", "salt", "sodium", "gluten", "lactose", "caffeine",
        "cholesterol", "dairy", "alcohol", "egg", "nut", "oil",
    }
)

_LESS_BASES: frozenset[str] = frozenset(
    {"sugar", "salt", "seed", "skin", "bone", "fat", "rind", "pit", "stem"}
)


def rewrite_negations(words: list[str]) -> list[str]:
    """Rewrite negation words/affixes in a token list to explicit ``not``.

    >>> rewrite_negations(["unsalted", "butter"])
    ['not', 'salted', 'butter']
    >>> rewrite_negations(["butter", "without", "salt"])
    ['butter', 'not', 'salt']
    >>> rewrite_negations(["fat", "free", "yogurt"])
    ['fat', 'not', 'yogurt']
    """
    out: list[str] = []
    for i, raw in enumerate(words):
        word = raw.lower()
        if word in NEGATION_WORDS:
            out.append("not")
            continue
        if word == "free" and out and out[-1] in _FREE_BASES:
            # "fat free" -> "fat not"
            out.append("not")
            continue
        if word.startswith("un") and word[2:] in _UN_BASES:
            out.extend(["not", word[2:]])
            continue
        if word.startswith("non") and word[3:] in _NON_BASES:
            out.extend(["not", word[3:]])
            continue
        if word.endswith("free") and word[:-4].rstrip("-") in _FREE_BASES:
            out.extend([word[:-4].rstrip("-"), "not"])
            continue
        if word.endswith("less") and word[:-4] in _LESS_BASES:
            out.extend([word[:-4], "not"])
            continue
        out.append(word)
    return out
