"""Stop words for description matching.

The matching pipeline (paper §II-B) removes stop words from both the
ingredient phrase and the USDA food description before computing the
Jaccard index.  Two domain constraints shape this list:

* ``not`` must NOT be a stop word — negation rewriting (§II-B(f)) turns
  "unsalted"/"without salt" into "not salt", and that "not" must survive
  into the word set so it can match the rewritten description.
* quantity/unit words never reach the matcher (NER strips them), so the
  list stays close to a standard English list minus negations.
"""

from __future__ import annotations

STOP_WORDS: frozenset[str] = frozenset(
    {
        "a", "about", "above", "after", "again", "all", "also", "am",
        "an", "and", "any", "are", "as", "at", "be", "because", "been",
        "before", "being", "below", "between", "both", "but", "by",
        "can", "could", "did", "do", "does", "doing", "down", "during",
        "each", "few", "for", "from", "further", "had", "has", "have",
        "having", "he", "her", "here", "hers", "him", "his", "how", "i",
        "if", "in", "into", "is", "it", "its", "itself", "just", "me",
        "more", "most", "my", "myself", "now", "of", "off", "on",
        "once", "only", "or", "other", "our", "ours", "out", "over",
        "own", "per", "same", "she", "should", "so", "some", "such",
        "than", "that", "the", "their", "theirs", "them", "then",
        "there", "these", "they", "this", "those", "through", "to",
        "too", "under", "until", "up", "very", "was", "we", "were",
        "what", "when", "where", "which", "while", "who", "whom", "why",
        "will", "with", "you", "your", "yours",
    }
)
# Deliberately absent: "not", "no", "non", "without" (negation carriers).


def remove_stop_words(words: list[str]) -> list[str]:
    """Filter stop words from a token list, preserving order.

    >>> remove_stop_words(["butter", "with", "salt"])
    ['butter', 'salt']
    """
    return [w for w in words if w.lower() not in STOP_WORDS]
