"""Text-processing substrate: tokenization, lemmatization, quantities, POS.

This subpackage replaces the NLP utilities the paper takes from NLTK
(WordNet lemmatizer, stop words, POS tagging) with self-contained,
deterministic implementations tuned for the recipe/nutrition vocabulary.
"""

from repro.text.lemmatizer import WordNetStyleLemmatizer, lemmatize
from repro.text.negation import rewrite_negations
from repro.text.pos import CoarsePOSTagger, pos_tags, tag_frequency_vector
from repro.text.quantity import parse_quantity, QuantityParseError
from repro.text.stopwords import STOP_WORDS, remove_stop_words
from repro.text.tokenize import tokenize, word_tokens

__all__ = [
    "WordNetStyleLemmatizer",
    "lemmatize",
    "rewrite_negations",
    "CoarsePOSTagger",
    "pos_tags",
    "tag_frequency_vector",
    "parse_quantity",
    "QuantityParseError",
    "STOP_WORDS",
    "remove_stop_words",
    "tokenize",
    "word_tokens",
]
