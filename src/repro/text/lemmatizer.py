"""A WordNet-style English lemmatizer built from rules and exceptions.

The paper lemmatizes both ingredient names and unit strings with NLTK's
WordNet lemmatizer and explicitly rejects stemmers as too aggressive
("berries" must become "berry", not "berri").  This module reproduces
the observable behaviour of WordNet's morphological analyzer on the
recipe/nutrition vocabulary: an exception list for irregular forms plus
the standard detachment rules, with a guard list of lemmas that merely
*look* inflected ("molasses", "couscous", "swiss").

Only noun and verb morphology are implemented because ingredient
matching and unit normalization never need adjective/adverb lemmas.
"""

from __future__ import annotations

# Irregular noun plurals (WordNet noun.exc extract, restricted to forms
# plausible in food text, plus a few recipe-specific entries).
NOUN_EXCEPTIONS: dict[str, str] = {
    "children": "child",
    "feet": "foot",
    "geese": "goose",
    "halves": "half",
    "knives": "knife",
    "leaves": "leaf",
    "lives": "life",
    "loaves": "loaf",
    "men": "man",
    "mice": "mouse",
    "calves": "calf",
    "oxen": "ox",
    "people": "person",
    "shelves": "shelf",
    "teeth": "tooth",
    "wives": "wife",
    "women": "woman",
    "potatoes": "potato",
    "tomatoes": "tomato",
    "mangoes": "mango",
    "jalapenos": "jalapeno",
    "anchovies": "anchovy",
    "wolves": "wolf",
}

# Words ending in s (or other plural-looking suffixes) that are already
# lemmas.  Stripping the suffix from these would corrupt matching:
# "molasses" -> "molasse" would never match the USDA description.
UNINFLECTED: frozenset[str] = frozenset(
    {
        "molasses",
        "couscous",
        "hummus",
        "asparagus",
        "swiss",
        "citrus",
        "grits",
        "bass",
        "brass",
        "gras",  # foie gras
        "watercress",
        "cress",
        "moss",
        "glass",
        "grass",
        "less",
        "class",
        "press",
        "process",
        "cos",  # cos lettuce
        "schnapps",
        "chips",  # treated as a dish name (fish and chips)
        "is",
        "was",
        "has",
        "this",
        "us",
        "plus",
        "minus",
        "always",
        "perhaps",
        "octopus",
        "us",
        "gas",
        "express",
    }
)

# Noun detachment rules in WordNet order: (suffix, replacement).
_NOUN_RULES: tuple[tuple[str, str], ...] = (
    ("ches", "ch"),
    ("shes", "sh"),
    ("sses", "ss"),
    ("xes", "x"),
    ("zes", "z"),
    ("ies", "y"),
    ("ves", "f"),
    ("oes", "o"),
    ("s", ""),
)

# Irregular verb forms (WordNet verb.exc extract for cooking verbs).
VERB_EXCEPTIONS: dict[str, str] = {
    "beaten": "beat",
    "began": "begin",
    "begun": "begin",
    "bought": "buy",
    "broken": "break",
    "brought": "bring",
    "cut": "cut",
    "done": "do",
    "drawn": "draw",
    "dried": "dry",
    "froze": "freeze",
    "frozen": "freeze",
    "ground": "grind",
    "held": "hold",
    "kept": "keep",
    "left": "leave",
    "lay": "lie",
    "laid": "lay",
    "made": "make",
    "melted": "melt",
    "put": "put",
    "risen": "rise",
    "rose": "rise",
    "set": "set",
    "shaken": "shake",
    "shook": "shake",
    "shredded": "shred",
    "slit": "slit",
    "spread": "spread",
    "taken": "take",
    "took": "take",
    "torn": "tear",
    "went": "go",
}

_VERB_RULES: tuple[tuple[str, str], ...] = (
    ("ies", "y"),
    ("es", "e"),
    ("es", ""),
    ("ed", "e"),
    ("ed", ""),
    ("ing", "e"),
    ("ing", ""),
    ("s", ""),
)

# A compact noun vocabulary used to validate candidate lemmas produced
# by detachment rules.  WordNet validates against its full lexicon; we
# validate against the food-domain vocabulary assembled lazily from the
# USDA database plus this seed set.  Unknown candidates fall back to the
# shortest rule result, mirroring WordNet's behaviour of returning the
# form unchanged when no rule yields a known lemma.
_SEED_NOUNS: frozenset[str] = frozenset(
    {
        "apple", "apricot", "artichoke", "avocado", "banana", "batch",
        "bean", "beet", "berry", "biscuit", "blackberry", "blueberry",
        "box", "breast", "broth", "brush", "bunch", "cake", "can",
        "carrot", "cherry", "chicken", "chickpea", "chili", "chive",
        "clove", "cookie", "cranberry", "cup", "dash", "date", "dish",
        "dumpling", "egg", "fig", "fillet", "flake", "gallon", "glass",
        "grape", "gram", "inch", "jar", "kilogram", "kiss", "leaf",
        "leek", "lemon", "lentil", "lime", "liter", "litre", "loaf",
        "lunch", "mango", "milliliter", "mushroom", "noodle", "nut",
        "oat", "olive", "onion", "ounce", "package", "packet", "pat",
        "patch", "pea", "peach", "pear", "pecan", "pepper", "piece",
        "pinch", "pint", "pistachio", "pita", "plum", "potato", "pound",
        "quart", "radish", "raisin", "raspberry", "rib", "sandwich",
        "sausage", "scallion", "scoop", "seed", "shake", "shallot",
        "sheet", "shrimp", "slice", "sprig", "sprout", "squash",
        "stalk", "stick", "strawberry", "strip", "tablespoon",
        "teaspoon", "thigh", "tomato", "tortilla", "turnip", "walnut",
        "wedge", "wing", "yolk", "zucchini", "spice", "herb", "stock",
        "chop", "roast", "steak", "drumstick", "floret", "kernel",
        "grain", "crumb", "chunk", "cube", "ring", "half", "quarter",
        "third", "smoothie", "sauce", "syrup", "paste", "puree",
        "vegetable", "fruit", "cheese", "milk", "butter", "cream",
        "yogurt", "bread", "flour", "sugar", "salt", "water", "oil",
        "vinegar", "juice", "wine", "beer", "tea", "coffee", "rice",
        "pasta", "soup", "salad", "serving", "drop", "bottle", "bag",
        "head", "ear", "bulb", "envelope", "container", "carton",
        "fluid", "link", "bar", "square", "round", "filet", "food",
        "product", "solid", "variety", "curd", "spray",
    }
)


class WordNetStyleLemmatizer:
    """Rule-plus-exception lemmatizer mimicking NLTK's ``WordNetLemmatizer``.

    Parameters
    ----------
    extra_vocabulary:
        Additional known lemmas (e.g. every word appearing in the USDA
        database) used to validate candidates produced by detachment
        rules.  Candidates found in the vocabulary win over raw rule
        output, which is exactly how WordNet prefers lexicon entries.
    """

    def __init__(self, extra_vocabulary: frozenset[str] | set[str] | None = None):
        self._vocab = set(_SEED_NOUNS)
        if extra_vocabulary:
            self._vocab.update(w.lower() for w in extra_vocabulary)

    def add_vocabulary(self, words: set[str] | frozenset[str]) -> None:
        """Register additional known lemmas for rule validation."""
        self._vocab.update(w.lower() for w in words)

    def lemmatize(self, word: str, pos: str = "n") -> str:
        """Return the lemma of *word* for part of speech *pos* ('n' or 'v').

        Unknown parts of speech raise ``ValueError`` to surface caller
        bugs instead of silently returning the surface form.
        """
        if pos == "n":
            return self._lemmatize_noun(word)
        if pos == "v":
            return self._lemmatize_verb(word)
        raise ValueError(f"unsupported part of speech: {pos!r}")

    def __call__(self, word: str, pos: str = "n") -> str:
        return self.lemmatize(word, pos)

    def _lemmatize_noun(self, word: str) -> str:
        lower = word.lower()
        # Irregular plurals always win ("leaves" -> "leaf"), even over
        # the pass-through guards below.
        if lower in NOUN_EXCEPTIONS:
            return NOUN_EXCEPTIONS[lower]
        # Short tokens ("as", "is") and guarded lemmas pass through.
        if len(lower) <= 2 or lower in UNINFLECTED:
            return lower
        # Words not ending in "s" are already noun lemmas for matching
        # purposes (this also covers vocabulary entries like "butter";
        # vocabulary words that *do* end in "s" — description plurals
        # like "apples" — still run the detachment rules).
        if not lower.endswith("s"):
            return lower
        if lower.endswith("ss") or lower.endswith("us") or lower.endswith("is"):
            return lower
        candidates: list[str] = []
        for suffix, repl in _NOUN_RULES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 1:
                candidates.append(lower[: -len(suffix)] + repl)
        for cand in candidates:
            if cand in self._vocab:
                return cand
        # No lexicon match: fall back to plain s-stripping, the most
        # conservative rule, provided some rule applied at all.
        if candidates:
            if lower.endswith("ies"):
                return lower[:-3] + "y"
            if lower.endswith(("ches", "shes", "sses", "xes", "zes")):
                return lower[:-2]
            return lower[:-1]
        return lower

    def _lemmatize_verb(self, word: str) -> str:
        lower = word.lower()
        if lower in VERB_EXCEPTIONS:
            return VERB_EXCEPTIONS[lower]
        for suffix, repl in _VERB_RULES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 1:
                cand = lower[: -len(suffix)] + repl
                if cand in self._vocab:
                    return cand
        # Conservative default rules when nothing validates.
        if lower.endswith("ing") and len(lower) > 4:
            stem = lower[:-3]
            if len(stem) > 2 and stem[-1] == stem[-2]:  # chopping -> chop
                return stem[:-1]
            return stem
        if lower.endswith("ed") and len(lower) > 3:
            stem = lower[:-2]
            if len(stem) > 2 and stem[-1] == stem[-2]:  # chopped -> chop
                return stem[:-1]
            if stem.endswith(("c", "s", "v", "z", "g", "u")):  # diced -> dice
                return stem + "e"
            return stem
        if lower.endswith("s") and not lower.endswith(("ss", "us", "is")):
            return self._lemmatize_noun(lower)
        return lower


_DEFAULT = WordNetStyleLemmatizer()


def lemmatize(word: str, pos: str = "n") -> str:
    """Lemmatize with the module-level default lemmatizer."""
    return _DEFAULT.lemmatize(word, pos)


def default_lemmatizer() -> WordNetStyleLemmatizer:
    """Return the shared module-level lemmatizer instance."""
    return _DEFAULT
