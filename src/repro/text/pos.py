"""Coarse part-of-speech tagging for ingredient phrases.

The paper uses POS tagging only to build a *tag-frequency vector* per
ingredient phrase; those vectors are clustered (k-means) and the
annotation corpus is sampled from every cluster so that training and
test sets cover the diversity of RecipeDB phrases (§II-A).  A coarse,
deterministic lexicon + suffix tagger is sufficient for that purpose —
the vectors only need to separate phrase *shapes* ("QTY UNIT NAME" vs
"QTY NAME , STATE STATE" vs "NAME to taste").
"""

from __future__ import annotations

import re

import numpy as np

# The coarse tagset, fixed and ordered so tag-frequency vectors are
# comparable across phrases.
TAGSET: tuple[str, ...] = (
    "CD",    # cardinal number / fraction
    "NN",    # singular noun
    "NNS",   # plural noun
    "JJ",    # adjective
    "VBN",   # past participle (chopped, minced)
    "VBG",   # gerund (cooking)
    "RB",    # adverb (finely, freshly)
    "IN",    # preposition (of, into)
    "CC",    # conjunction (or, and)
    "DT",    # determiner (a, the)
    "PUNCT", # punctuation
    "SYM",   # other symbols / unknown
)

_NUMBER_RE = re.compile(r"^\d+(\.\d+)?$|^\d+/\d+$")

# Small closed-class lexicon.
_LEXICON: dict[str, str] = {
    "of": "IN", "into": "IN", "in": "IN", "with": "IN", "for": "IN",
    "to": "IN", "at": "IN", "on": "IN", "from": "IN", "without": "IN",
    "or": "CC", "and": "CC", "plus": "CC",
    "a": "DT", "an": "DT", "the": "DT", "each": "DT", "some": "DT",
    "more": "JJ", "taste": "NN", "needed": "VBN", "desired": "VBN",
    "optional": "JJ",
}

# Common food adjectives that do not carry -y/-ed/-ing morphology.
_ADJECTIVES: frozenset[str] = frozenset(
    {
        "fresh", "dry", "dried", "large", "small", "medium", "hot",
        "cold", "warm", "sweet", "sour", "ripe", "raw", "lean", "fat",
        "low", "whole", "ground", "extra", "light", "dark", "thick",
        "thin", "fine", "coarse", "mild", "plain", "stale", "firm",
        "soft", "crisp", "tender", "boneless", "skinless", "unsalted",
        "salted", "sweetened", "unsweetened", "frozen", "canned",
        "instant", "quick", "heavy", "sharp", "red", "green", "yellow",
        "white", "black", "brown", "purple", "golden", "new", "baby",
        "wild", "virgin", "kosher", "sea", "free", "reduced", "nonfat",
    }
)


class CoarsePOSTagger:
    """Deterministic lexicon + suffix POS tagger over :data:`TAGSET`."""

    def tag(self, tokens: list[str]) -> list[tuple[str, str]]:
        """Tag each token; returns ``[(token, tag), ...]``.

        >>> CoarsePOSTagger().tag(["1", "small", "onion"])
        [('1', 'CD'), ('small', 'JJ'), ('onion', 'NN')]
        """
        return [(tok, self.tag_word(tok)) for tok in tokens]

    def tag_word(self, token: str) -> str:
        """Tag a single token."""
        if not token:
            return "SYM"
        if _NUMBER_RE.match(token):
            return "CD"
        if not any(c.isalnum() for c in token):
            return "PUNCT"
        lower = token.lower()
        if lower in _LEXICON:
            return _LEXICON[lower]
        if lower in _ADJECTIVES:
            return "JJ"
        base = lower.split("-")[-1] if "-" in lower else lower
        if base.endswith("ly"):
            return "RB"
        if base.endswith("ing") and len(base) > 4:
            return "VBG"
        if base.endswith("ed") and len(base) > 3:
            return "VBN"
        if "-" in lower:  # hard-cooked handled above; all-purpose etc.
            return "JJ"
        if base.endswith("s") and not base.endswith(("ss", "us", "is")) and len(base) > 3:
            return "NNS"
        return "NN"


_DEFAULT = CoarsePOSTagger()


def pos_tags(tokens: list[str]) -> list[str]:
    """Tag *tokens* with the default tagger, returning tags only."""
    return [tag for _, tag in _DEFAULT.tag(tokens)]


def tag_frequency_vector(tokens: list[str]) -> np.ndarray:
    """Frequency vector of POS tags for a phrase (paper §II-A).

    The vector has one component per tag in :data:`TAGSET`, holding the
    count of that tag in the phrase.  These vectors feed the k-means
    clustering used to pick diverse annotation samples.
    """
    vec = np.zeros(len(TAGSET), dtype=float)
    index = {tag: i for i, tag in enumerate(TAGSET)}
    for tag in pos_tags(tokens):
        vec[index[tag]] += 1.0
    return vec
