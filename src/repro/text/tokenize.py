"""Tokenization for ingredient phrases and food descriptions.

Recipe text is noisy: unicode vulgar fractions ("½"), mixed numbers
("2 1/2"), hyphenated states ("hard-cooked"), inch marks inside unit
descriptions ('pat (1" sq, 1/3" high)'), and stray punctuation from web
scraping (" , finely chopped"). The tokenizer below normalizes unicode
fractions to ASCII and splits text into word, number and punctuation
tokens while keeping fractions ("1/2") and decimals ("2.5") intact.
"""

from __future__ import annotations

import re

# Unicode vulgar fractions normalized to ASCII "n/d" so downstream
# quantity parsing sees a single representation.
UNICODE_FRACTIONS: dict[str, str] = {
    "¼": "1/4",
    "½": "1/2",
    "¾": "3/4",
    "⅐": "1/7",
    "⅑": "1/9",
    "⅒": "1/10",
    "⅓": "1/3",
    "⅔": "2/3",
    "⅕": "1/5",
    "⅖": "2/5",
    "⅗": "3/5",
    "⅘": "4/5",
    "⅙": "1/6",
    "⅚": "5/6",
    "⅛": "1/8",
    "⅜": "3/8",
    "⅝": "5/8",
    "⅞": "7/8",
}

_FRACTION_SLASHES = ("⁄", "∕")  # fraction slash, division slash

# A token is (in priority order): a fraction, a decimal/integer, a word
# (letters with internal hyphens/apostrophes, e.g. "hard-cooked"), a
# percent sign glued to digits is split by the number rule, or any single
# non-space character (punctuation).
_TOKEN_RE = re.compile(
    r"""
    \d+\s*/\s*\d+            # fractions: 1/2, 1 / 2
    | \d+\.\d+               # decimals: 2.5
    | \d+                    # integers
    | [A-Za-z]+(?:[-'][A-Za-z]+)*   # words incl. hyphenated/apostrophe
    | [^\sA-Za-z0-9]         # any punctuation mark
    """,
    re.VERBOSE,
)


def normalize_unicode(text: str) -> str:
    """Replace unicode vulgar fractions and fraction slashes with ASCII.

    A digit immediately followed by a vulgar fraction ("2½") is treated
    as a mixed number and a space is inserted ("2 1/2").
    """
    for slash in _FRACTION_SLASHES:
        text = text.replace(slash, "/")
    out: list[str] = []
    for ch in text:
        frac = UNICODE_FRACTIONS.get(ch)
        if frac is None:
            out.append(ch)
            continue
        if out and out[-1].isdigit():
            out.append(" ")
        out.append(frac)
    return "".join(out)


def tokenize(text: str) -> list[str]:
    """Split *text* into word, number, fraction and punctuation tokens.

    >>> tokenize("1 small onion , finely chopped")
    ['1', 'small', 'onion', ',', 'finely', 'chopped']
    >>> tokenize("2½ cups all-purpose flour")
    ['2', '1/2', 'cups', 'all-purpose', 'flour']
    """
    text = normalize_unicode(text)
    return [m.group(0).replace(" ", "") for m in _TOKEN_RE.finditer(text)]


def tokenize_fast(text: str) -> list[str]:
    """:func:`tokenize` with the normalization pass skipped for ASCII.

    :func:`normalize_unicode` only rewrites non-ASCII characters
    (vulgar fractions and fraction slashes), so it is the identity on
    any ``str.isascii()`` input — the overwhelmingly common case for
    recipe lines — and can be skipped outright.  Non-ASCII input takes
    the full :func:`tokenize` path.  Output is identical to
    :func:`tokenize` for every input; used by the columnar batch
    pipeline (:mod:`repro.core.columnar`).
    """
    if text.isascii():
        return [m.group(0).replace(" ", "") for m in _TOKEN_RE.finditer(text)]
    return tokenize(text)


def word_tokens(text: str) -> list[str]:
    """Tokenize and keep only alphabetic tokens, lower-cased.

    Hyphenated words are split into their parts so that "low-fat"
    contributes both "low" and "fat" to a word set.

    >>> word_tokens("1/2 cup low-fat sour cream")
    ['cup', 'low', 'fat', 'sour', 'cream']
    """
    words: list[str] = []
    for token in tokenize(text):
        if not any(c.isalpha() for c in token):
            continue
        for part in re.split(r"[-']", token):
            if part and any(c.isalpha() for c in part):
                words.append(part.lower())
    return words
