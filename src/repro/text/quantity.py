"""Quantity normalization (paper §II-C).

The paper preprocesses quantities "to match a specific numerical value:
'2-4' was averaged to 3, '2 1/2' was converted to 2.5 and so on".  This
module parses every quantity shape observed in RecipeDB-style phrases:

* plain integers and decimals — ``"3"``, ``"2.5"``
* fractions — ``"1/2"``, ``"3 / 4"``
* mixed numbers — ``"2 1/2"``, ``"1-1/2"``, ``"2½"`` (after unicode
  normalization by :mod:`repro.text.tokenize`)
* ranges, averaged — ``"2-4"`` -> 3, ``"2 to 4"`` -> 3, ``"2 or 3"`` -> 2.5
* number words — ``"one"``, ``"a dozen"``
"""

from __future__ import annotations

import re

from repro.text.tokenize import normalize_unicode


class QuantityParseError(ValueError):
    """Raised when a quantity string cannot be interpreted as a number."""


NUMBER_WORDS: dict[str, float] = {
    "a": 1.0,
    "an": 1.0,
    "one": 1.0,
    "two": 2.0,
    "three": 3.0,
    "four": 4.0,
    "five": 5.0,
    "six": 6.0,
    "seven": 7.0,
    "eight": 8.0,
    "nine": 9.0,
    "ten": 10.0,
    "eleven": 11.0,
    "twelve": 12.0,
    "dozen": 12.0,
    "half": 0.5,
    "quarter": 0.25,
    "couple": 2.0,
    "few": 3.0,
    "several": 3.0,
}

_FRACTION_RE = re.compile(r"^(\d+)\s*/\s*(\d+)$")
_MIXED_RE = re.compile(r"^(\d+)[\s-]+(\d+)\s*/\s*(\d+)$")
_RANGE_RE = re.compile(
    r"^(?P<lo>[\d./\s]+?)\s*(?:-|–|—|\bto\b|\bor\b)\s*(?P<hi>[\d./\s]+?)$"
)
_NUMBER_RE = re.compile(r"^\d+(\.\d+)?$")


def _parse_simple(text: str) -> float:
    """Parse an integer, decimal, fraction or mixed number."""
    text = text.strip()
    m = _MIXED_RE.match(text)
    if m:
        whole, num, den = (int(g) for g in m.groups())
        if den == 0:
            raise QuantityParseError(f"zero denominator in {text!r}")
        return whole + num / den
    m = _FRACTION_RE.match(text)
    if m:
        num, den = (int(g) for g in m.groups())
        if den == 0:
            raise QuantityParseError(f"zero denominator in {text!r}")
        return num / den
    if _NUMBER_RE.match(text):
        return float(text)
    word = text.lower()
    if word in NUMBER_WORDS:
        return NUMBER_WORDS[word]
    raise QuantityParseError(f"unparseable quantity: {text!r}")


def parse_quantity(text: str) -> float:
    """Parse a quantity string to a single float (ranges are averaged).

    >>> parse_quantity("2 1/2")
    2.5
    >>> parse_quantity("2-4")
    3.0
    >>> parse_quantity("1/8")
    0.125

    Raises
    ------
    QuantityParseError
        If no numeric interpretation exists.
    """
    if not text or not text.strip():
        raise QuantityParseError("empty quantity string")
    text = normalize_unicode(text).strip().lower()

    # "a dozen" / "one dozen" multiplies.
    parts = text.split()
    if len(parts) == 2 and parts[1] == "dozen":
        return _parse_simple(parts[0]) * 12.0

    # Mixed numbers look like ranges to the range regex ("2 1/2" has a
    # space, "1-1/2" has a dash), so try simple parsing first.
    try:
        return _parse_simple(text)
    except QuantityParseError:
        pass

    m = _RANGE_RE.match(text)
    if m:
        lo = _parse_simple(m.group("lo"))
        hi = _parse_simple(m.group("hi"))
        return (lo + hi) / 2.0

    raise QuantityParseError(f"unparseable quantity: {text!r}")


def try_parse_quantity(text: str) -> float | None:
    """Like :func:`parse_quantity` but returns ``None`` on failure."""
    try:
        return parse_quantity(text)
    except QuantityParseError:
        return None


def format_quantity(value: float) -> str:
    """Render a float quantity the way recipes print it (1/2, 2 1/2, 3).

    Inverse-ish of :func:`parse_quantity` for common cooking fractions;
    used by the synthetic corpus generator.
    """
    if value < 0:
        raise ValueError(f"negative quantity: {value}")
    whole = int(value)
    frac = value - whole
    common = {
        0.125: "1/8",
        0.25: "1/4",
        1 / 3: "1/3",
        0.375: "3/8",
        0.5: "1/2",
        0.625: "5/8",
        2 / 3: "2/3",
        0.75: "3/4",
        0.875: "7/8",
    }
    for target, text in common.items():
        if abs(frac - target) < 1e-6:
            return f"{whole} {text}" if whole else text
    if frac < 1e-6:
        return str(whole)
    return f"{value:.10g}"
