"""26 regional cuisines and their ingredient pools.

The paper notes RecipeDB "has a global coverage, spanning 26 regional
cuisines" and that region-centric ingredients (garam masala) drive the
unmapped residue.  Pools reference ingredient-spec keys; staples are
mixed into every cuisine.
"""

from __future__ import annotations

#: Ingredients nearly every recipe may use, regardless of cuisine.
STAPLES: tuple[str, ...] = (
    "salt", "black_pepper", "olive_oil", "vegetable_oil", "butter",
    "water", "sugar", "flour", "garlic", "onion", "egg",
)

CUISINES: dict[str, tuple[str, ...]] = {
    "Indian": (
        "garam_masala", "paneer", "curry_leaves", "fenugreek_leaves",
        "asafoetida", "turmeric", "cumin_ground", "coriander_ground",
        "cayenne", "ginger", "red_lentils", "chickpeas_dry", "basmati?rice",
        "rice", "yogurt", "tomato", "green_chile", "cilantro",
        "coconut_milk", "mustard_ground", "split_peas", "potato",
        "cauliflower", "spinach", "buffalo_milk",
    ),
    "Chinese": (
        "soy_sauce", "sesame_oil", "ginger", "scallion", "bok_choy",
        "bamboo_shoots", "water_chestnuts", "bean_sprouts", "rice",
        "cooked_rice", "chicken_breast", "ground_pork", "shrimp",
        "cornstarch", "white_pepper", "mushrooms", "tofu", "egg_noodles",
        "cabbage", "carrot", "peanut_oil",
    ),
    "Japanese": (
        "mirin", "nori", "miso_paste", "soy_sauce", "short_grain_rice",
        "tofu", "scallion", "ginger", "sesame_seeds", "salmon",
        "cucumber", "shiitake?mushrooms", "mushrooms", "sesame_oil",
        "sugar", "egg",
    ),
    "Korean": (
        "gochujang", "gochugaru", "soy_sauce", "sesame_oil", "garlic",
        "scallion", "ginger", "short_grain_rice", "cabbage", "tofu",
        "ground_beef", "flank_steak", "sesame_seeds", "cucumber",
        "carrot", "bean_sprouts",
    ),
    "Thai": (
        "lemongrass", "kaffir_lime", "galangal", "tamarind", "palm_sugar",
        "coconut_milk", "cilantro", "lime_juice", "lime", "jalapeno",
        "shrimp", "chicken_thigh", "rice", "peanuts", "basil_fresh",
        "green_beans", "soy_sauce",
    ),
    "Vietnamese": (
        "lemongrass", "cilantro", "mint", "lime_juice", "rice",
        "bean_sprouts", "carrot", "cucumber", "shrimp", "pork_loin",
        "scallion", "jalapeno", "soy_sauce", "peanuts", "sugar",
    ),
    "Filipino": (
        "soy_sauce", "white_vinegar", "garlic", "bay_leaf", "pork_shoulder",
        "chicken_thigh", "rice", "scallion", "ginger", "tomato",
        "green_beans", "coconut_milk", "black_pepper",
    ),
    "Indonesian": (
        "coconut_milk", "peanut_butter", "soy_sauce", "tamarind", "ginger",
        "lemongrass", "rice", "chicken_breast", "shrimp", "cucumber",
        "peanuts", "palm_sugar", "green_beans", "cayenne",
    ),
    "Middle Eastern": (
        "tahini", "chickpeas", "lemon_juice", "cumin_ground", "parsley_fresh",
        "mint", "bulgur", "couscous", "ground_lamb", "leg_of_lamb",
        "eggplant", "tomato", "cucumber", "yogurt", "pita", "fava_beans",
        "cilantro", "cinnamon", "pine_nuts", "olive_oil",
    ),
    "Turkish": (
        "ground_lamb", "yogurt", "eggplant", "tomato_paste", "bulgur",
        "mint", "parsley_fresh", "red_pepper", "cayenne", "pine_nuts",
        "lemon_juice", "feta", "honey", "phyllo", "walnuts",
    ),
    "Greek": (
        "feta", "olive_oil", "lemon_juice", "oregano", "mint", "yogurt",
        "cucumber", "tomato", "eggplant", "ground_lamb", "phyllo",
        "spinach", "black_olives", "dill_fresh", "honey", "walnuts",
        "red_wine",
    ),
    "Italian": (
        "parmesan", "mozzarella", "ricotta", "olive_oil", "basil_fresh",
        "oregano", "marinara", "crushed_tomatoes", "tomato_paste", "pasta",
        "italian_sausage", "ground_beef", "red_wine", "white_wine",
        "pine_nuts", "balsamic", "pepperoni", "anchovy", "capers",
        "zucchini", "eggplant", "mushrooms",
    ),
    "French": (
        "butter", "heavy_cream", "white_wine", "red_wine", "shallot",
        "thyme_fresh", "bay_leaf", "leek", "mushrooms", "gruyere?swiss_cheese",
        "swiss_cheese", "brie", "chicken_breast", "egg", "flour",
        "tarragon?thyme_fresh", "dijon?mustard_prepared", "mustard_prepared",
        "french_bread", "lemon_juice",
    ),
    "Spanish": (
        "olive_oil", "paprika", "chorizo", "shrimp", "short_grain_rice",
        "tomato", "red_pepper", "green_pepper", "garlic", "white_wine",
        "chicken_thigh", "peas", "lemon", "parsley_fresh", "almonds",
    ),
    "Portuguese": (
        "cod", "olive_oil", "potato", "kale", "chorizo", "garlic",
        "bay_leaf", "paprika", "white_wine", "tomato", "cilantro",
        "white_beans", "egg",
    ),
    "German": (
        "pork_loin", "bacon", "cabbage", "red_cabbage", "potato",
        "caraway?cumin", "cumin", "mustard_prepared", "cider_vinegar",
        "beer", "frankfurter", "egg_noodles", "sour_cream", "dill_fresh",
        "brown_sugar", "apple",
    ),
    "British": (
        "potato", "peas", "cod", "white_bread", "cheddar", "butter",
        "heavy_cream", "bacon", "ground_beef", "carrot", "leek",
        "worcestershire", "raisins", "milk", "mustard_ground",
    ),
    "Irish": (
        "potato", "cabbage", "bacon", "leg_of_lamb", "stew_beef", "carrot",
        "leek", "butter", "buttermilk", "beer", "wheat_flour", "parsley_fresh",
        "turnip",
    ),
    "Scandinavian": (
        "salmon", "dill_fresh", "sour_cream", "potato", "cucumber",
        "white_vinegar", "rye?wheat_bread", "wheat_bread", "butter",
        "cardamom?cinnamon", "cinnamon", "lingonberry?cranberries",
        "cranberries", "beet", "egg",
    ),
    "Russian": (
        "beet", "cabbage", "potato", "sour_cream", "dill_fresh",
        "ground_beef", "hard_cooked_egg", "light_sour_cream", "carrot",
        "pickle", "white_vinegar", "butter", "flour", "egg_noodles",
        "mushrooms", "bay_leaf",
    ),
    "Eastern European": (
        "cabbage", "potato", "sour_cream", "paprika", "ground_pork",
        "onion", "carrot", "dill_fresh", "pickle", "caraway?cumin",
        "cumin", "egg_noodles", "ground_beef", "white_vinegar", "bacon",
    ),
    "Mexican": (
        "corn_tortillas", "flour_tortillas", "black_beans", "pinto_beans",
        "refried_beans", "jalapeno", "serrano", "cilantro", "lime_juice",
        "salsa", "cumin_ground", "chili_powder", "avocado", "tomato",
        "ground_beef", "chicken_breast", "cheddar", "monterey", "corn",
        "green_chile", "chorizo",
    ),
    "Caribbean": (
        "allspice?cloves_ground", "cloves_ground", "coconut_milk",
        "kidney_beans", "rice", "lime_juice", "thyme_dried", "scallion",
        "jalapeno", "chicken_thigh", "sweet_potato", "banana", "mango",
        "pineapple", "ginger", "cayenne", "brown_sugar",
    ),
    "South American": (
        "corn", "black_beans", "quinoa", "cilantro", "lime_juice",
        "avocado", "tomato", "red_pepper", "flank_steak", "ground_beef",
        "cumin_ground", "paprika", "potato", "peanuts", "cornmeal",
        "parsley_fresh",
    ),
    "American": (
        "ground_beef", "cheddar", "bacon", "ketchup", "mayonnaise",
        "mustard_prepared", "hamburger_buns", "ranch", "iceberg",
        "tomato", "potato", "corn", "chicken_breast", "barbecue_sauce",
        "cream_of_mushroom", "cream_of_chicken", "tuna", "saltines",
        "chocolate_chips", "brown_sugar", "vanilla", "baking_soda",
        "baking_powder", "oats", "peanut_butter", "maple_syrup",
        "marshmallows", "hot_sauce", "white_bread", "milk",
    ),
    "Canadian": (
        "maple_syrup", "bacon", "potato", "cheddar", "butter", "oats",
        "salmon", "peas", "white_bread", "brown_sugar", "cranberries",
        "milk", "mushrooms", "ground_pork",
    ),
}

# Entries of the form "alias?speckey" document a regional ingredient we
# approximate with another spec; strip them to the real key.
CUISINES = {
    cuisine: tuple(k.split("?", 1)[-1] for k in keys)
    for cuisine, keys in CUISINES.items()
}

if len(CUISINES) != 26:
    raise RuntimeError(f"expected 26 cuisines, found {len(CUISINES)}")
