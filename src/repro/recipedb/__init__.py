"""RecipeDB substrate: a synthetic recipe corpus with ground truth.

The paper consumes RecipeDB — 118,071 recipes scraped from AllRecipes
and FOOD.com.  Offline, this subpackage generates a deterministic
corpus with the same observable properties (noisy free-text ingredient
phrases across 26 regional cuisines, alias units, ranges, packaging
parentheticals, "or" alternatives, trailing instructions) *plus* exact
ground truth per phrase: the true NER tags, the true USDA food and the
true gram weight.  Ground truth is what lets every §III number be
scored without the paper's manual audits.
"""

from repro.recipedb.corpus import load_recipes_jsonl, save_recipes_jsonl
from repro.recipedb.generator import GeneratorConfig, RecipeGenerator
from repro.recipedb.ingredients import INGREDIENTS, IngredientSpec, spec_by_key
from repro.recipedb.cuisines import CUISINES
from repro.recipedb.model import GroundTruth, Ingredient, Recipe
from repro.recipedb.phrases import PIROSZHKI_PHRASES, PIROSZHKI_TABLE_I

__all__ = [
    "load_recipes_jsonl",
    "save_recipes_jsonl",
    "GeneratorConfig",
    "RecipeGenerator",
    "INGREDIENTS",
    "IngredientSpec",
    "spec_by_key",
    "CUISINES",
    "GroundTruth",
    "Ingredient",
    "Recipe",
    "PIROSZHKI_PHRASES",
    "PIROSZHKI_TABLE_I",
]
