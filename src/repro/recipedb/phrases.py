"""The Piroszhki (Little Russian Pastries) phrases of the paper's Table I.

The twelve ingredient phrases appear verbatim, with gold tags encoding
the paper's own extraction decisions (e.g. adverbs like "finely" and
the "freshly ground" trailing instruction are untagged; the butter /
margarine alternative keeps only the first name).
"""

from __future__ import annotations

from repro.ner.corpus import TaggedPhrase


def _tp(pairs: list[tuple[str, str]]) -> TaggedPhrase:
    tokens, tags = zip(*pairs)
    return TaggedPhrase(tokens, tags)


#: (raw phrase, gold tagging, Table-I expected columns)
#: Expected columns: name, state, quantity, unit, temperature,
#: dry/fresh, size — empty string where Table I shows a blank.
PIROSZHKI_TABLE_I: tuple[
    tuple[str, TaggedPhrase, dict[str, str]], ...
] = (
    (
        "1/2 lb lean ground beef",
        _tp([("1/2", "QUANTITY"), ("lb", "UNIT"), ("lean", "STATE"),
             ("ground", "STATE"), ("beef", "NAME")]),
        {"name": "beef", "state": "ground lean", "quantity": "1/2",
         "unit": "lb", "temp": "", "df": "", "size": ""},
    ),
    (
        "1 small onion , finely chopped",
        _tp([("1", "QUANTITY"), ("small", "SIZE"), ("onion", "NAME"),
             (",", "O"), ("finely", "O"), ("chopped", "STATE")]),
        {"name": "onion", "state": "chopped", "quantity": "1",
         "unit": "", "temp": "", "df": "", "size": "small"},
    ),
    (
        "1 hard-cooked egg , finely chopped",
        _tp([("1", "QUANTITY"), ("hard-cooked", "STATE"), ("egg", "NAME"),
             (",", "O"), ("finely", "O"), ("chopped", "STATE")]),
        {"name": "egg", "state": "hard-cooked chopped", "quantity": "1",
         "unit": "", "temp": "", "df": "", "size": ""},
    ),
    (
        "1 tablespoon fresh dill weed",
        _tp([("1", "QUANTITY"), ("tablespoon", "UNIT"), ("fresh", "DF"),
             ("dill", "NAME"), ("weed", "NAME")]),
        {"name": "dill weed", "state": "", "quantity": "1",
         "unit": "tablespoon", "temp": "", "df": "fresh", "size": ""},
    ),
    (
        "1/2 teaspoon salt ,freshly ground",
        _tp([("1/2", "QUANTITY"), ("teaspoon", "UNIT"), ("salt", "NAME"),
             (",", "O"), ("freshly", "O"), ("ground", "O")]),
        {"name": "salt", "state": "", "quantity": "1/2",
         "unit": "teaspoon", "temp": "", "df": "", "size": ""},
    ),
    (
        "1/8 teaspoon black pepper,minced",
        _tp([("1/8", "QUANTITY"), ("teaspoon", "UNIT"), ("black", "NAME"),
             ("pepper", "NAME"), (",", "O"), ("minced", "O")]),
        {"name": "black pepper", "state": "", "quantity": "1/8",
         "unit": "teaspoon", "temp": "", "df": "", "size": ""},
    ),
    (
        "3/4 cup butter or 3/4 cup margarine , softened",
        _tp([("3/4", "QUANTITY"), ("cup", "UNIT"), ("butter", "NAME"),
             ("or", "O"), ("3/4", "O"), ("cup", "O"), ("margarine", "O"),
             (",", "O"), ("softened", "STATE")]),
        {"name": "butter", "state": "softened", "quantity": "3/4",
         "unit": "cup", "temp": "", "df": "", "size": ""},
    ),
    (
        "2 cups all-purpose flour",
        _tp([("2", "QUANTITY"), ("cups", "UNIT"), ("all-purpose", "NAME"),
             ("flour", "NAME")]),
        {"name": "all-purpose flour", "state": "", "quantity": "2",
         "unit": "cups", "temp": "", "df": "", "size": ""},
    ),
    (
        "1 teaspoon salt",
        _tp([("1", "QUANTITY"), ("teaspoon", "UNIT"), ("salt", "NAME")]),
        {"name": "salt", "state": "", "quantity": "1",
         "unit": "teaspoon", "temp": "", "df": "", "size": ""},
    ),
    (
        "1/2 cup low-fat sour cream",
        _tp([("1/2", "QUANTITY"), ("cup", "UNIT"), ("low-fat", "STATE"),
             ("sour", "STATE"), ("cream", "NAME")]),
        {"name": "cream", "state": "sour low fat", "quantity": "1/2",
         "unit": "cup", "temp": "", "df": "", "size": ""},
    ),
    (
        "1 egg yolk",
        _tp([("1", "QUANTITY"), ("egg", "NAME"), ("yolk", "NAME")]),
        {"name": "egg yolk", "state": "", "quantity": "1",
         "unit": "", "temp": "", "df": "", "size": ""},
    ),
    (
        "1 tablespoon cold water",
        _tp([("1", "QUANTITY"), ("tablespoon", "UNIT"), ("cold", "TEMP"),
             ("water", "NAME")]),
        {"name": "cold water", "state": "", "quantity": "1",
         "unit": "tablespoon", "temp": "cold", "df": "", "size": ""},
    ),
)

#: Just the raw phrases, in Table I order.
PIROSZHKI_PHRASES: tuple[str, ...] = tuple(p for p, _, _ in PIROSZHKI_TABLE_I)

#: Gold taggings, in Table I order.
PIROSZHKI_GOLD: tuple[TaggedPhrase, ...] = tuple(t for _, t, _ in PIROSZHKI_TABLE_I)
