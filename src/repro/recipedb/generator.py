"""Deterministic synthetic recipe corpus generator.

Reproduces the observable noise modes of RecipeDB's scraped phrases
(documented throughout the paper):

* alias units — "tbsp" vs "tablespoon", "lb" vs "pound" (§II-C),
* quantity shapes — fractions, mixed numbers, ranges "2-4" (§II-C),
* packaging parentheticals — "1 (15 ounce) can ..." (§II-C's
  quantity-per-unit threshold exists because of these),
* "or" alternatives — "3/4 cup butter or 3/4 cup margarine" (Table I),
* trailing instructions — ", finely chopped", ", or to taste",
* missing units — bare counts ("2 eggs") and "salt to taste".

Every phrase carries exact ground truth (tags, true food, true grams,
true kcal), which the evaluation layer uses in place of the paper's
manual audits and third-party calorie labels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ner.corpus import TaggedPhrase
from repro.recipedb.cuisines import CUISINES, STAPLES
from repro.recipedb.ingredients import INGREDIENTS, IngredientSpec
from repro.recipedb.model import GroundTruth, Ingredient, Recipe
from repro.text.quantity import format_quantity
from repro.units.conversions import MASS_GRAMS, VOLUME_ML
from repro.units.gram_weights import UnitResolver
from repro.usda.database import NutrientDatabase, load_default_database

#: Surface forms per canonical unit: (singular, plural) pairs; the
#: generator picks one pair per phrase and pluralizes by quantity.
_UNIT_SURFACES: dict[str, tuple[tuple[str, str], ...]] = {
    "tablespoon": (("tablespoon", "tablespoons"), ("tbsp", "tbsp"), ("tbs", "tbs")),
    "teaspoon": (("teaspoon", "teaspoons"), ("tsp", "tsp")),
    "cup": (("cup", "cups"),),
    "fluid ounce": (("fluid ounce", "fluid ounces"), ("fl oz", "fl oz")),
    "ounce": (("ounce", "ounces"), ("oz", "oz")),
    "pound": (("pound", "pounds"), ("lb", "lbs")),
    "gram": (("g", "g"), ("gram", "grams")),
    "kilogram": (("kg", "kg"),),
    "pinch": (("pinch", "pinches"),),
    "dash": (("dash", "dashes"),),
    "sprig": (("sprig", "sprigs"),),
    "clove": (("clove", "cloves"),),
    "slice": (("slice", "slices"),),
    "stick": (("stick", "sticks"),),
    "can": (("can", "cans"),),
    "bunch": (("bunch", "bunches"),),
}

_TRAILERS: tuple[tuple[str, ...], ...] = (
    (",", "divided"),
    (",", "or", "to", "taste"),
    (",", "plus", "more", "for", "garnish"),
    (",", "at", "room", "temperature"),
    (",", "if", "desired"),
)

_DISH_TYPES = (
    "Stew", "Soup", "Salad", "Curry", "Bake", "Skillet", "Casserole",
    "Stir-Fry", "Roast", "Pie", "Dumplings", "Noodles", "Rice Bowl",
    "Tacos", "Pastries", "Flatbread", "Chowder", "Fritters", "Kebabs",
    "Pilaf",
)


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Knobs for corpus generation (all deterministic under ``seed``)."""

    seed: int = 42
    min_ingredients: int = 4
    max_ingredients: int = 12
    servings_choices: tuple[int, ...] = (2, 3, 4, 4, 6, 6, 8)
    p_range_quantity: float = 0.04
    p_packaging: float = 0.25        # of can-unit phrases
    p_alternative: float = 0.03
    p_trailer: float = 0.15
    p_state_before_name: float = 0.35
    p_no_quantity: float = 0.02      # "salt to taste"
    gold_noise_fraction: float = 0.04  # physical-variation noise (std)
    #: Probability that an ingredient slot reuses a previously
    #: generated line for the same ingredient instead of rendering a
    #: fresh surface form.  Reused lines re-enter the pool, so popular
    #: phrasings grow rich-get-richer — the Zipf-like verbatim-line
    #: duplication of scraped corpora ("1 teaspoon vanilla extract"
    #: appears in thousands of AllRecipes recipes), which corpus-scale
    #: caching and the two-phase estimation protocol exploit.  0
    #: (default) disables reuse and leaves the generator's output
    #: byte-identical to earlier versions.
    line_reuse: float = 0.0

    def __post_init__(self) -> None:
        if not (1 <= self.min_ingredients <= self.max_ingredients):
            raise ValueError("bad ingredient count bounds")
        for name in ("p_range_quantity", "p_packaging", "p_alternative",
                     "p_trailer", "p_state_before_name", "p_no_quantity",
                     "line_reuse"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {value}")


class RecipeGenerator:
    """Generate recipes/phrases with exact ground truth."""

    def __init__(
        self,
        database: NutrientDatabase | None = None,
        config: GeneratorConfig | None = None,
    ):
        self._db = database or load_default_database()
        self._config = config or GeneratorConfig()
        self._rng = random.Random(self._config.seed)
        self._resolvers: dict[str, UnitResolver] = {}
        self._cuisine_names = sorted(CUISINES)
        # Per-spec pools of previously emitted lines for line_reuse;
        # grows over the generator's lifetime so duplication is
        # corpus-wide, like the scraped corpora it models.
        self._line_pool: dict[str, list[Ingredient]] = {}

    # ------------------------------------------------------------------
    # gram / kcal truth

    def _resolver(self, ndb_no: str) -> UnitResolver:
        if ndb_no not in self._resolvers:
            self._resolvers[ndb_no] = UnitResolver(self._db.get(ndb_no))
        return self._resolvers[ndb_no]

    def _grams_per_unit(
        self, spec: IngredientSpec, unit: str, size: str
    ) -> float | None:
        """True grams of one (unit or size or piece) of the ingredient."""
        if spec.ndb_no is not None:
            resolver = self._resolver(spec.ndb_no)
            if not unit:
                # Bare count: a spec-level piece weight wins over the
                # food's generic portions (a roma tomato is 62 g, not
                # the 123 g of a medium round tomato) unless a size was
                # asked for and the food actually has sized portions.
                if size:
                    sized = resolver.resolve(size)
                    if sized is not None:
                        return sized.grams_per_unit
                if spec.grams_per_piece is not None:
                    return spec.grams_per_piece
                counted = resolver.resolve(None)
                return counted.grams_per_unit if counted else None
            resolution = resolver.resolve(unit)
            return resolution.grams_per_unit if resolution else None
        # unmappable ingredient: hidden physical constants
        if unit in MASS_GRAMS:
            return MASS_GRAMS[unit]
        if unit in VOLUME_ML and spec.density_g_per_ml is not None:
            return VOLUME_ML[unit] * spec.density_g_per_ml
        if not unit and spec.grams_per_piece is not None:
            return spec.grams_per_piece
        return None

    def _kcal_per_100g(self, spec: IngredientSpec) -> float:
        if spec.ndb_no is not None:
            return self._db.get(spec.ndb_no).energy_kcal
        assert spec.kcal_per_100g is not None  # enforced by the spec
        return spec.kcal_per_100g

    # ------------------------------------------------------------------
    # phrase construction

    def _pick_unit(
        self, spec: IngredientSpec, rng: random.Random, size: str = ""
    ) -> tuple[str, float, float]:
        """Choose (canonical unit, quantity, grams_per_unit).

        *size* is the size token the phrase will actually carry (may be
        empty) — truth grams must reflect exactly what is written.
        Unit choices that cannot be resolved to grams for this food are
        skipped; at least one choice per spec must resolve.
        """
        choices = list(spec.unit_choices)
        rng.shuffle(choices)
        for unit, quantities in choices:
            gpu = self._grams_per_unit(spec, unit, "" if unit else size)
            if gpu is not None:
                return unit, rng.choice(quantities), gpu
        raise RuntimeError(f"no resolvable unit for spec {spec.key!r}")

    def _surface_unit(
        self, unit: str, quantity: float, rng: random.Random
    ) -> list[str]:
        """Surface tokens for a canonical unit (alias + pluralization)."""
        surfaces = _UNIT_SURFACES.get(unit, ((unit, unit + "s"),))
        singular, plural = rng.choice(surfaces)
        text = plural if quantity > 1 else singular
        return text.split()

    def _quantity_tokens(
        self, quantity: float, rng: random.Random
    ) -> tuple[list[str], float]:
        """Tokens for the quantity; returns (tokens, parsed truth).

        With small probability renders a range ("2-4") whose truth is
        the midpoint, matching the paper's averaging rule.
        """
        if (
            quantity >= 1
            and float(quantity).is_integer()
            and rng.random() < self._config.p_range_quantity
        ):
            lo = int(quantity)
            hi = lo + rng.choice((1, 2))
            return [str(lo), "-", str(hi)], (lo + hi) / 2.0
        text = format_quantity(quantity)
        return text.split(), quantity

    def build_ingredient(
        self, spec: IngredientSpec, rng: random.Random
    ) -> Ingredient:
        """One ingredient line with phrase, tags and ground truth."""
        name = rng.choice(spec.names)
        state = rng.choice(spec.states) if spec.states else ""
        df = rng.choice(spec.df) if spec.df else ""
        temp = rng.choice(spec.temps) if spec.temps else ""
        size = rng.choice(spec.sizes) if spec.sizes and rng.random() < 0.6 else ""
        unit, quantity, gpu = self._pick_unit(spec, rng, size)
        if unit:
            size = ""  # sizes only appear with bare counts

        pairs: list[tuple[str, str]] = []  # (token, tag)
        no_quantity = (
            spec.key in ("salt", "black_pepper")
            and rng.random() < self._config.p_no_quantity
        )
        truth_quantity = quantity
        if no_quantity:
            unit = ""
            truth_quantity, gpu = 1.0, 0.5  # "to taste" ≈ half a gram
        else:
            q_tokens, truth_quantity = self._quantity_tokens(quantity, rng)
            pairs.extend((t, "QUANTITY") for t in q_tokens)
            packaging = (
                unit == "can" and rng.random() < self._config.p_packaging
            )
            if packaging:
                ounces = max(1, round(gpu / 28.35))
                pairs.extend(
                    [("(", "O"), (str(ounces), "O"), ("ounce", "O"), (")", "O")]
                )
            if unit:
                pairs.extend(
                    (t, "UNIT") for t in self._surface_unit(unit, quantity, rng)
                )
            if size:
                pairs.append((size, "SIZE"))

        if df:
            pairs.extend((t, "DF") for t in df.split())
        if temp:
            pairs.extend((t, "TEMP") for t in temp.split())

        state_before = (
            state
            and " " not in state
            and rng.random() < self._config.p_state_before_name
        )
        if state_before:
            pairs.extend(self._state_pairs(state))
        # Name may already embed the df/temp word ("fresh dill weed" as a
        # name variant); drop the duplicate leading word.
        name_words = name.split()
        if df and name_words and name_words[0] == df:
            name_words = name_words[1:]
        if temp and name_words and name_words[0] == temp:
            name_words = name_words[1:]
        pairs.extend((w, "NAME") for w in name_words)

        if state and not state_before:
            pairs.append((",", "O"))
            pairs.extend(self._state_pairs(state))
        if no_quantity:
            pairs.extend([("to", "O"), ("taste", "O")])
        if rng.random() < self._config.p_alternative and spec.ndb_no:
            alt = rng.choice([s for s in INGREDIENTS if s.key != spec.key])
            pairs.append(("or", "O"))
            pairs.extend((w, "O") for w in alt.names[0].split())
        if rng.random() < self._config.p_trailer and not no_quantity:
            pairs.extend((t, "O") for t in rng.choice(_TRAILERS))

        tokens = tuple(t for t, _ in pairs)
        tags = tuple(tag for _, tag in pairs)
        grams = truth_quantity * gpu
        kcal = grams * self._kcal_per_100g(spec) / 100.0
        return Ingredient(
            text=" ".join(tokens),
            tagged=TaggedPhrase(tokens, tags),
            truth=GroundTruth(
                spec_key=spec.key,
                ndb_no=spec.ndb_no,
                grams=grams,
                kcal=kcal,
            ),
        )

    def _pooled_ingredient(
        self, spec: IngredientSpec, rng: random.Random
    ) -> Ingredient:
        """Build or (with ``line_reuse``) replay an ingredient line.

        With reuse disabled this is exactly :meth:`build_ingredient`
        and consumes no extra randomness, keeping default-config
        corpora byte-identical to earlier versions.
        """
        reuse = self._config.line_reuse
        if reuse <= 0.0:
            return self.build_ingredient(spec, rng)
        pool = self._line_pool.setdefault(spec.key, [])
        if pool and rng.random() < reuse:
            ingredient = rng.choice(pool)
        else:
            ingredient = self.build_ingredient(spec, rng)
        pool.append(ingredient)
        return ingredient

    def _state_pairs(self, state: str) -> list[tuple[str, str]]:
        """Tag a state string: adverbs and connectives are O (Table I)."""
        pairs = []
        for word in state.split():
            if word.endswith("ly") or word in ("and", "into", "in"):
                pairs.append((word, "O"))
            else:
                pairs.append((word, "STATE"))
        return pairs

    # ------------------------------------------------------------------
    # recipes

    def generate_recipe(self, recipe_id: str, rng: random.Random) -> Recipe:
        """One recipe from a random cuisine pool."""
        cuisine = rng.choice(self._cuisine_names)
        pool_keys = list(dict.fromkeys(CUISINES[cuisine] + STAPLES))
        n = rng.randint(self._config.min_ingredients, self._config.max_ingredients)
        n = min(n, len(pool_keys))
        keys = rng.sample(pool_keys, n)
        specs = {s.key: s for s in INGREDIENTS}
        ingredients = tuple(
            self._pooled_ingredient(specs[k], rng) for k in keys
        )
        servings = rng.choice(self._config.servings_choices)
        total = sum(i.truth.kcal for i in ingredients)
        noise = rng.gauss(0.0, self._config.gold_noise_fraction)
        gold = max(0.0, (total / servings) * (1.0 + noise))
        title_seed = rng.choice(_DISH_TYPES)
        main = next(
            (i.truth.spec_key.replace("_", " ").title() for i in ingredients
             if i.truth.spec_key not in STAPLES),
            "House",
        )
        return Recipe(
            recipe_id=recipe_id,
            title=f"{cuisine} {main} {title_seed}",
            cuisine=cuisine,
            source=rng.choice(("AllRecipes", "FOOD.com")),
            servings=servings,
            ingredients=ingredients,
            gold_calories_per_serving=gold,
        )

    def generate(self, n_recipes: int) -> list[Recipe]:
        """Generate *n_recipes* recipes deterministically."""
        if n_recipes <= 0:
            raise ValueError(f"n_recipes must be positive: {n_recipes}")
        rng = random.Random(self._config.seed)
        return [
            self.generate_recipe(f"R{i:06d}", rng) for i in range(n_recipes)
        ]

    def generate_phrases(self, n_phrases: int) -> list[Ingredient]:
        """Standalone tagged phrases (the NER annotation pool)."""
        if n_phrases <= 0:
            raise ValueError(f"n_phrases must be positive: {n_phrases}")
        rng = random.Random(self._config.seed + 1)
        specs = list(INGREDIENTS)
        return [
            self.build_ingredient(rng.choice(specs), rng)
            for _ in range(n_phrases)
        ]
