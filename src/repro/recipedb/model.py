"""Recipe and ingredient records with generation-time ground truth."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ner.corpus import TaggedPhrase


@dataclass(frozen=True, slots=True)
class GroundTruth:
    """What the generator actually put into an ingredient phrase.

    Attributes
    ----------
    spec_key:
        Ingredient-spec identifier (stable across the corpus).
    ndb_no:
        True USDA food, or ``None`` for deliberately unmappable
        region-specific ingredients ("garam masala").
    grams:
        True edible grams contributed to the recipe.
    kcal:
        True energy contribution (grams × energy density), including
        for unmappable ingredients (their hidden density is known to
        the generator only — the pipeline never sees it).
    """

    spec_key: str
    ndb_no: str | None
    grams: float
    kcal: float


@dataclass(frozen=True, slots=True)
class Ingredient:
    """One ingredient line of a recipe."""

    text: str
    tagged: TaggedPhrase
    truth: GroundTruth

    @property
    def tokens(self) -> tuple[str, ...]:
        return self.tagged.tokens


@dataclass(frozen=True, slots=True)
class Recipe:
    """One recipe with ground-truth nutrition.

    ``gold_calories_per_serving`` plays the role of the AllRecipes
    third-party calorie label the paper evaluates against: the true
    per-serving energy plus a small physical-variation noise term.
    """

    recipe_id: str
    title: str
    cuisine: str
    source: str
    servings: int
    ingredients: tuple[Ingredient, ...] = field(default_factory=tuple)
    gold_calories_per_serving: float = 0.0

    def __post_init__(self) -> None:
        if self.servings <= 0:
            raise ValueError(f"servings must be positive: {self.servings}")

    @property
    def true_total_kcal(self) -> float:
        """Exact total energy from ground truth (noise-free)."""
        return sum(i.truth.kcal for i in self.ingredients)

    @property
    def true_kcal_per_serving(self) -> float:
        """Exact per-serving energy from ground truth (noise-free)."""
        return self.true_total_kcal / self.servings

    @property
    def ingredient_texts(self) -> list[str]:
        """The raw phrase per ingredient — the pipeline's actual input."""
        return [i.text for i in self.ingredients]
