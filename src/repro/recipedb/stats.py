"""Corpus statistics over generated (or loaded) recipe corpora.

RecipeDB-style analytics used by the examples and the paper's framing:
ingredient frequency ranking (the basis of the "5,000 most frequent"
audit), cuisine distribution, phrase-shape statistics and per-
ingredient unit distributions (the most-frequent-unit fallback's
training signal).
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass

from repro.recipedb.model import Recipe


@dataclass(frozen=True, slots=True)
class CorpusStats:
    """Summary statistics of a recipe corpus."""

    n_recipes: int
    n_ingredient_lines: int
    n_unique_spec_keys: int
    cuisine_counts: dict[str, int]
    ingredient_frequency: tuple[tuple[str, int], ...]
    mean_ingredients_per_recipe: float
    mean_tokens_per_phrase: float
    unmappable_line_fraction: float

    def top_ingredients(self, n: int = 20) -> list[tuple[str, int]]:
        """The *n* most frequent ingredient spec keys."""
        return list(self.ingredient_frequency[:n])


def corpus_stats(recipes: list[Recipe]) -> CorpusStats:
    """Compute :class:`CorpusStats` for *recipes*."""
    if not recipes:
        raise ValueError("empty corpus")
    cuisines: Counter[str] = Counter()
    ingredients: Counter[str] = Counter()
    tokens_per_phrase: list[int] = []
    lines = 0
    unmappable = 0
    for recipe in recipes:
        cuisines[recipe.cuisine] += 1
        for item in recipe.ingredients:
            lines += 1
            ingredients[item.truth.spec_key] += 1
            tokens_per_phrase.append(len(item.tagged.tokens))
            if item.truth.ndb_no is None:
                unmappable += 1
    return CorpusStats(
        n_recipes=len(recipes),
        n_ingredient_lines=lines,
        n_unique_spec_keys=len(ingredients),
        cuisine_counts=dict(cuisines),
        ingredient_frequency=tuple(ingredients.most_common()),
        mean_ingredients_per_recipe=lines / len(recipes),
        mean_tokens_per_phrase=statistics.mean(tokens_per_phrase),
        unmappable_line_fraction=unmappable / lines if lines else 0.0,
    )


def render_stats(stats: CorpusStats, top_n: int = 15) -> str:
    """Plain-text report of corpus statistics."""
    lines = [
        f"recipes: {stats.n_recipes}",
        f"ingredient lines: {stats.n_ingredient_lines} "
        f"(mean {stats.mean_ingredients_per_recipe:.1f}/recipe, "
        f"mean {stats.mean_tokens_per_phrase:.1f} tokens/phrase)",
        f"distinct ingredients: {stats.n_unique_spec_keys}",
        f"unmappable lines: {100 * stats.unmappable_line_fraction:.1f}%",
        f"cuisines: {len(stats.cuisine_counts)}",
        "",
        f"top {top_n} ingredients:",
    ]
    for key, count in stats.top_ingredients(top_n):
        lines.append(f"  {key:24} {count}")
    return "\n".join(lines)
