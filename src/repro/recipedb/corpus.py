"""JSONL persistence for generated recipe corpora."""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path

from repro.ner.corpus import TaggedPhrase
from repro.recipedb.model import GroundTruth, Ingredient, Recipe


def _ingredient_to_dict(ingredient: Ingredient) -> dict:
    return {
        "text": ingredient.text,
        "tokens": list(ingredient.tagged.tokens),
        "tags": list(ingredient.tagged.tags),
        "truth": {
            "spec_key": ingredient.truth.spec_key,
            "ndb_no": ingredient.truth.ndb_no,
            "grams": ingredient.truth.grams,
            "kcal": ingredient.truth.kcal,
        },
    }


def _ingredient_from_dict(data: dict) -> Ingredient:
    truth = data["truth"]
    return Ingredient(
        text=data["text"],
        tagged=TaggedPhrase(tuple(data["tokens"]), tuple(data["tags"])),
        truth=GroundTruth(
            spec_key=truth["spec_key"],
            ndb_no=truth["ndb_no"],
            grams=truth["grams"],
            kcal=truth["kcal"],
        ),
    )


def save_recipes_jsonl(recipes: list[Recipe], path: str | Path) -> None:
    """Write one JSON object per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for recipe in recipes:
            fh.write(
                json.dumps(
                    {
                        "recipe_id": recipe.recipe_id,
                        "title": recipe.title,
                        "cuisine": recipe.cuisine,
                        "source": recipe.source,
                        "servings": recipe.servings,
                        "gold_calories_per_serving": recipe.gold_calories_per_serving,
                        "ingredients": [
                            _ingredient_to_dict(i) for i in recipe.ingredients
                        ],
                    }
                )
                + "\n"
            )


def iter_recipes_jsonl(path: str | Path) -> Iterator[Recipe]:
    """Stream recipes from a JSONL corpus one at a time.

    Memory stays bounded by a single recipe regardless of corpus
    length — the sharded estimation engine feeds its process pool from
    this iterator (twice: once to collect distinct-line statistics,
    once to assemble results), so corpora much larger than RAM work.
    """
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            if not line.strip():
                continue
            data = json.loads(line)
            yield Recipe(
                recipe_id=data["recipe_id"],
                title=data["title"],
                cuisine=data["cuisine"],
                source=data["source"],
                servings=data["servings"],
                ingredients=tuple(
                    _ingredient_from_dict(i) for i in data["ingredients"]
                ),
                gold_calories_per_serving=data["gold_calories_per_serving"],
            )


def load_recipes_jsonl(path: str | Path) -> list[Recipe]:
    """Inverse of :func:`save_recipes_jsonl`."""
    return list(iter_recipes_jsonl(path))
