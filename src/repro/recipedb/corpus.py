"""JSONL persistence for generated recipe corpora."""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path

from repro import faults
from repro.deadletter import (
    REASON_INVALID_RECIPE,
    REASON_MALFORMED_JSON,
    DeadLetterLog,
)
from repro.ner.corpus import TaggedPhrase
from repro.recipedb.model import GroundTruth, Ingredient, Recipe


def _ingredient_to_dict(ingredient: Ingredient) -> dict:
    return {
        "text": ingredient.text,
        "tokens": list(ingredient.tagged.tokens),
        "tags": list(ingredient.tagged.tags),
        "truth": {
            "spec_key": ingredient.truth.spec_key,
            "ndb_no": ingredient.truth.ndb_no,
            "grams": ingredient.truth.grams,
            "kcal": ingredient.truth.kcal,
        },
    }


def _ingredient_from_dict(data: dict) -> Ingredient:
    truth = data["truth"]
    return Ingredient(
        text=data["text"],
        tagged=TaggedPhrase(tuple(data["tokens"]), tuple(data["tags"])),
        truth=GroundTruth(
            spec_key=truth["spec_key"],
            ndb_no=truth["ndb_no"],
            grams=truth["grams"],
            kcal=truth["kcal"],
        ),
    )


def save_recipes_jsonl(recipes: list[Recipe], path: str | Path) -> None:
    """Write one JSON object per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for recipe in recipes:
            fh.write(
                json.dumps(
                    {
                        "recipe_id": recipe.recipe_id,
                        "title": recipe.title,
                        "cuisine": recipe.cuisine,
                        "source": recipe.source,
                        "servings": recipe.servings,
                        "gold_calories_per_serving": recipe.gold_calories_per_serving,
                        "ingredients": [
                            _ingredient_to_dict(i) for i in recipe.ingredients
                        ],
                    }
                )
                + "\n"
            )


def _recipe_from_line(line: str) -> Recipe:
    data = json.loads(line)
    return Recipe(
        recipe_id=data["recipe_id"],
        title=data["title"],
        cuisine=data["cuisine"],
        source=data["source"],
        servings=data["servings"],
        ingredients=tuple(
            _ingredient_from_dict(i) for i in data["ingredients"]
        ),
        gold_calories_per_serving=data["gold_calories_per_serving"],
    )


def iter_recipes_jsonl(
    path: str | Path,
    *,
    on_error: str = "raise",
    dead_letters: DeadLetterLog | None = None,
) -> Iterator[Recipe]:
    """Stream recipes from a JSONL corpus one at a time.

    Memory stays bounded by a single recipe regardless of corpus
    length — the sharded estimation engine feeds its process pool from
    this iterator (twice: once to collect distinct-line statistics,
    once to assemble results), so corpora much larger than RAM work.

    ``on_error`` controls what a malformed line does:

    * ``"raise"`` (default) — propagate, aborting the stream mid-way:
      strict mode, bit-compatible with the seed behaviour.
    * ``"skip"`` — quarantine the line and continue.  Each skipped
      line is recorded in *dead_letters* (when given) with its 1-based
      file line number and a reason code: ``malformed-json`` for
      undecodable JSON, ``invalid-recipe`` for valid JSON missing the
      recipe schema.  The engine's second corpus traversal passes no
      log so a bad line is reported once, not once per pass.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip': {on_error!r}")
    plan = faults.active_plan()
    with Path(path).open(encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            if plan is not None:
                line = plan.corrupt_line(line_no, line)
            # Parse outside the yield so a consumer exception thrown
            # into the generator can never be mistaken for a bad line.
            try:
                recipe = _recipe_from_line(line)
            except json.JSONDecodeError as exc:
                if on_error == "raise":
                    raise
                if dead_letters is not None:
                    dead_letters.add(
                        "ingest", line_no, line.strip(),
                        REASON_MALFORMED_JSON, str(exc),
                    )
                continue
            except (KeyError, TypeError, ValueError) as exc:
                if on_error == "raise":
                    raise
                if dead_letters is not None:
                    dead_letters.add(
                        "ingest", line_no, line.strip(),
                        REASON_INVALID_RECIPE, repr(exc),
                    )
                continue
            yield recipe


def load_recipes_jsonl(path: str | Path) -> list[Recipe]:
    """Inverse of :func:`save_recipes_jsonl`."""
    return list(iter_recipes_jsonl(path))
