"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  This shim plus
the absence of a ``[build-system]`` table lets ``pip install -e .`` use
the legacy ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
