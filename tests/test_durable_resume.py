"""Durable batch runs: crash-safe journaling and bit-identical resume.

The contract under test (ISSUE 7): a durable run killed at **any**
chunk boundary — or mid-journal-append, leaving a torn tail — resumes
with ``--resume`` to output bit-identical to an uninterrupted run,
re-executing only the chunks the journal does not hold.

Three layers:

* in-process engine tests truncate the journal at every frame
  boundary and resume (fast, exhaustive);
* CLI tests drive ``batch --run-dir`` / ``--resume`` / ``runs``
  in-process;
* subprocess chaos tests kill a real ``repro batch`` driver through
  the fault plan (``crash@journal-append`` / ``corrupt@journal-append``
  / SIGINT) and byte-compare the resumed output against a clean run.

Subprocess hygiene: a driver that hard-exits leaves its daemon pool
workers briefly alive, so child stdout goes to a file (never a pipe,
which inherited worker fds would hold open) and each child gets its
own session, killed wholesale in cleanup.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import EXIT_INTERRUPTED, main
from repro.faults import CRASH_EXIT_CODE
from repro.pipeline import ShardedCorpusEstimator
from repro.recipedb.corpus import save_recipes_jsonl
from repro.recipedb.generator import GeneratorConfig, RecipeGenerator
from repro.runs import (
    RunError,
    RunJournal,
    RunManifest,
    RunMismatchError,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
)

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

#: Small enough that exhaustive every-boundary resume stays fast,
#: large enough for a multi-chunk plan (several collect frames plus a
#: fallback frame).
N_RECIPES = 20
CHUNK_SIZE = 24
WORKERS = 2


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("durable") / "corpus.jsonl"
    recipes = RecipeGenerator(config=GeneratorConfig(seed=11)).generate(
        N_RECIPES
    )
    save_recipes_jsonl(recipes, path)
    return path


@pytest.fixture(scope="module")
def clean_estimates(corpus_path):
    return ShardedCorpusEstimator(
        workers=WORKERS, chunk_size=CHUNK_SIZE
    ).estimate_corpus(str(corpus_path))


@pytest.fixture(scope="module")
def completed_run(tmp_path_factory, corpus_path, clean_estimates):
    """A finished durable run directory plus its engine report."""
    run_dir = tmp_path_factory.mktemp("completed") / "run-seed"
    engine = ShardedCorpusEstimator(
        workers=WORKERS, chunk_size=CHUNK_SIZE, run_dir=run_dir
    )
    estimates = engine.estimate_corpus(str(corpus_path))
    assert estimates == clean_estimates
    return run_dir, engine.last_report


def reopenable_copy(completed_dir: Path, target: Path) -> Path:
    """Copy a finished run and stamp it back to ``running``."""
    shutil.copytree(completed_dir, target)
    manifest = RunManifest.load(target)
    manifest.status = STATUS_RUNNING
    manifest.save(target)
    return target


class TestDurableEngine:
    def test_durable_run_matches_plain_run(self, completed_run):
        run_dir, report = completed_run
        assert report.run_id == run_dir.name == "run-seed"
        assert not report.resumed
        assert report.replayed_chunks == 0
        assert report.executed_chunks > 0
        assert RunManifest.load(run_dir).status == "completed"

    def test_resume_of_completed_run_is_pure_replay(
        self, corpus_path, clean_estimates, completed_run
    ):
        run_dir, _ = completed_run
        engine = ShardedCorpusEstimator(
            workers=WORKERS,
            chunk_size=CHUNK_SIZE,
            run_dir=run_dir,
            resume=True,
        )
        assert engine.estimate_corpus(str(corpus_path)) == clean_estimates
        report = engine.last_report
        assert report.resumed
        assert report.executed_chunks == 0
        assert report.replayed_chunks > 0

    def test_resume_after_kill_at_every_chunk_boundary(
        self, tmp_path, corpus_path, clean_estimates, completed_run
    ):
        """Truncate the journal at each frame boundary (= the on-disk
        state a SIGKILL between appends leaves) and resume: output must
        equal the uninterrupted run at every single cut."""
        run_dir, full_report = completed_run
        boundaries = [
            r.offset for r in RunJournal(run_dir / "journal.bin").scan().records
        ]
        assert len(boundaries) >= 5  # plan + collects + checkpoint + ...
        total = full_report.executed_chunks
        for k, offset in enumerate(boundaries):
            cut = reopenable_copy(run_dir, tmp_path / f"cut{k}")
            with (cut / "journal.bin").open("r+b") as handle:
                handle.truncate(offset)
            engine = ShardedCorpusEstimator(
                workers=WORKERS,
                chunk_size=CHUNK_SIZE,
                run_dir=cut,
                resume=True,
            )
            estimates = engine.estimate_corpus(str(corpus_path))
            assert estimates == clean_estimates, f"cut at frame {k}"
            report = engine.last_report
            assert report.resumed, f"cut at frame {k}"
            assert (
                report.replayed_chunks + report.executed_chunks == total
            ), f"cut at frame {k}"
            assert RunManifest.load(cut).status == "completed"

    def test_resume_with_torn_tail_garbage(
        self, tmp_path, corpus_path, clean_estimates, completed_run
    ):
        run_dir, _ = completed_run
        torn = reopenable_copy(run_dir, tmp_path / "torn")
        journal = torn / "journal.bin"
        keep = RunJournal(journal).scan().records[4].offset
        with journal.open("r+b") as handle:
            handle.truncate(keep)
        with journal.open("ab") as handle:
            handle.write(b"\x00\xffhalf-a-frame-of-garbage")
        engine = ShardedCorpusEstimator(
            workers=WORKERS, chunk_size=CHUNK_SIZE, run_dir=torn, resume=True
        )
        assert engine.estimate_corpus(str(corpus_path)) == clean_estimates
        assert engine.last_report.executed_chunks > 0

    def test_resume_across_different_worker_count(
        self, tmp_path, corpus_path, clean_estimates, completed_run
    ):
        """workers is recorded but not binding: chunk results are pure
        functions of chunk content."""
        run_dir, _ = completed_run
        cut = reopenable_copy(run_dir, tmp_path / "w3")
        offset = RunJournal(cut / "journal.bin").scan().records[3].offset
        with (cut / "journal.bin").open("r+b") as handle:
            handle.truncate(offset)
        engine = ShardedCorpusEstimator(
            workers=3, chunk_size=CHUNK_SIZE, run_dir=cut, resume=True
        )
        assert engine.estimate_corpus(str(corpus_path)) == clean_estimates

    def test_resume_refuses_changed_chunk_size(
        self, tmp_path, corpus_path, completed_run
    ):
        run_dir, _ = completed_run
        cut = reopenable_copy(run_dir, tmp_path / "badchunk")
        engine = ShardedCorpusEstimator(
            workers=WORKERS,
            chunk_size=CHUNK_SIZE + 1,
            run_dir=cut,
            resume=True,
        )
        with pytest.raises(RunMismatchError, match="chunk_size"):
            engine.estimate_corpus(str(corpus_path))

    def test_resume_refuses_changed_corpus(
        self, tmp_path, corpus_path, completed_run
    ):
        run_dir, _ = completed_run
        cut = reopenable_copy(run_dir, tmp_path / "badcorpus")
        drifted = tmp_path / "drifted.jsonl"
        drifted.write_bytes(corpus_path.read_bytes() + b"\n")
        engine = ShardedCorpusEstimator(
            workers=WORKERS, chunk_size=CHUNK_SIZE, run_dir=cut, resume=True
        )
        with pytest.raises(RunMismatchError, match="corpus"):
            engine.estimate_corpus(str(drifted))

    def test_durable_run_requires_path_source(self, tmp_path):
        recipes = RecipeGenerator(config=GeneratorConfig(seed=3)).generate(2)
        engine = ShardedCorpusEstimator(
            workers=1, chunk_size=8, run_dir=tmp_path / "r"
        )
        with pytest.raises(RunError, match="JSONL corpus path"):
            engine.estimate_corpus(recipes)

    def test_resume_requires_run_dir(self):
        with pytest.raises(ValueError, match="requires run_dir"):
            ShardedCorpusEstimator(resume=True)

    def test_journal_counters_shape(self, completed_run):
        _, report = completed_run
        assert set(report.journal_counters()) == {
            "replayed_chunks", "executed_chunks", "resumed",
        }


class TestDurableCli:
    def test_run_dir_creates_run_and_report(
        self, tmp_path, corpus_path, capsys
    ):
        root = tmp_path / "runs"
        code = main([
            "batch", str(corpus_path), "--workers", "2",
            "--chunk-size", str(CHUNK_SIZE), "--run-dir", str(root),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "durable run directory:" in out
        assert "replayed from journal" in out
        (run_dir,) = list(root.iterdir())
        assert run_dir.name.startswith("run-")
        assert (run_dir / "manifest.json").is_file()
        assert (run_dir / "journal.bin").is_file()
        assert (run_dir / "dead_letters.jsonl").is_file()
        # clean corpus: the report exists but is empty (diffable)
        assert (run_dir / "dead_letters.jsonl").read_bytes() == b""

    def test_resume_cli_defaults_from_manifest(
        self, tmp_path, corpus_path, completed_run, capsys, monkeypatch
    ):
        run_dir, _ = completed_run
        cut = reopenable_copy(run_dir, tmp_path / "cli-resume")
        offset = RunJournal(cut / "journal.bin").scan().records[2].offset
        with (cut / "journal.bin").open("r+b") as handle:
            handle.truncate(offset)
        # no corpus positional, no --chunk-size: both from the manifest
        monkeypatch.chdir(corpus_path.parent)
        code = main(["batch", "--resume", str(cut)])
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed from journal" in out
        assert RunManifest.load(cut).status == "completed"

    def test_resume_mismatch_is_a_clean_cli_error(
        self, tmp_path, corpus_path, completed_run, capsys
    ):
        run_dir, _ = completed_run
        cut = reopenable_copy(run_dir, tmp_path / "cli-mismatch")
        code = main([
            "batch", str(corpus_path), "--resume", str(cut),
            "--chunk-size", str(CHUNK_SIZE + 7),
        ])
        assert code == 2
        assert "cannot resume" in capsys.readouterr().out

    def test_run_dir_and_resume_are_mutually_exclusive(
        self, corpus_path, capsys
    ):
        with pytest.raises(SystemExit):
            main([
                "batch", str(corpus_path),
                "--run-dir", "a", "--resume", "b",
            ])

    def test_batch_without_corpus_or_resume_errors(self, capsys):
        assert main(["batch"]) == 2
        assert "corpus path is required" in capsys.readouterr().out

    def test_runs_list_and_show(self, completed_run, capsys):
        run_dir, _ = completed_run
        assert main(["runs", "list", str(run_dir.parent)]) == 0
        listing = capsys.readouterr().out
        assert "run-seed" in listing
        assert "completed" in listing
        assert main(["runs", "show", str(run_dir)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["run_id"] == "run-seed"
        assert summary["journal"]["complete"] is True

    def test_runs_list_empty_root(self, tmp_path, capsys):
        assert main(["runs", "list", str(tmp_path)]) == 1
        assert "no run directories" in capsys.readouterr().out

    def test_runs_show_non_run_is_a_clean_error(self, tmp_path, capsys):
        assert main(["runs", "show", str(tmp_path)]) == 2
        assert "not a run directory" in capsys.readouterr().out


# ----------------------------------------------------------------------
# subprocess chaos: kill a real driver, resume it, byte-compare


def batch_argv(corpus_path, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "batch", str(corpus_path),
        "--workers", str(WORKERS), "--chunk-size", str(CHUNK_SIZE),
        *extra,
    ]


def spawn_batch(argv, out_path: Path, faults: str | None = None):
    """Start a driver in its own session, stdout/stderr to a file."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    env.pop("REPRO_FAULTS", None)
    if faults is not None:
        env["REPRO_FAULTS"] = faults
    with out_path.open("wb") as handle:
        return subprocess.Popen(
            argv,
            stdout=handle,
            stderr=subprocess.STDOUT,
            start_new_session=True,
            env=env,
        )


def wait_and_reap(proc: subprocess.Popen, timeout: float = 180.0) -> int:
    """Wait for the driver, then kill anything left in its session."""
    try:
        return proc.wait(timeout=timeout)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass


def estimate_lines(out_path: Path) -> list[str]:
    return [
        line
        for line in out_path.read_text().splitlines()
        if "kcal/serving" in line
    ]


@pytest.fixture(scope="module")
def clean_cli_output(tmp_path_factory, corpus_path):
    """A clean (fault-free) durable CLI run: reference bytes."""
    root = tmp_path_factory.mktemp("chaos") / "clean"
    out = root.parent / "clean.out"
    proc = spawn_batch(
        batch_argv(corpus_path, "--run-dir", str(root)), out
    )
    assert wait_and_reap(proc) == 0
    (run_dir,) = list(root.iterdir())
    return estimate_lines(out), run_dir


@pytest.mark.parametrize(
    "faults",
    [
        # hard exit at a chunk boundary: frame N never starts
        "crash@journal-append:3",
        # mid-append power cut: half of frame N is fsync'd to disk
        "corrupt@journal-append:3",
    ],
)
def test_killed_driver_resumes_byte_identical(
    tmp_path, corpus_path, clean_cli_output, faults
):
    clean_lines, clean_run_dir = clean_cli_output
    root = tmp_path / "runs"
    crash_out = tmp_path / "crash.out"
    proc = spawn_batch(
        batch_argv(corpus_path, "--run-dir", str(root)),
        crash_out,
        faults=faults,
    )
    assert wait_and_reap(proc) == CRASH_EXIT_CODE, crash_out.read_text()
    (run_dir,) = list(root.iterdir())
    assert RunManifest.load(run_dir).status == STATUS_RUNNING

    resume_out = tmp_path / "resume.out"
    proc = spawn_batch(
        [
            sys.executable, "-m", "repro", "batch",
            "--resume", str(run_dir),
        ],
        resume_out,
    )
    assert wait_and_reap(proc) == 0, resume_out.read_text()
    assert estimate_lines(resume_out) == clean_lines
    text = resume_out.read_text()
    assert "replayed from journal" in text
    assert RunManifest.load(run_dir).status == "completed"
    # the persisted dead-letter report byte-matches the clean run's
    assert (run_dir / "dead_letters.jsonl").read_bytes() == (
        clean_run_dir / "dead_letters.jsonl"
    ).read_bytes()


def test_sigint_exits_resumable_and_resume_is_identical(
    tmp_path, corpus_path, clean_cli_output
):
    clean_lines, _ = clean_cli_output
    root = tmp_path / "runs"
    int_out = tmp_path / "int.out"
    # A worker sleeps on a mid-plan chunk so the driver is reliably
    # mid-run when the signal lands.
    proc = spawn_batch(
        batch_argv(corpus_path, "--run-dir", str(root)),
        int_out,
        faults="sleep@collect-chunk:4:60",
    )
    try:
        deadline = time.monotonic() + 60
        journal = None
        while time.monotonic() < deadline:
            run_dirs = list(root.iterdir()) if root.is_dir() else []
            if run_dirs:
                journal = run_dirs[0] / "journal.bin"
                if journal.is_file() and journal.stat().st_size > 0:
                    break
            time.sleep(0.1)
        assert journal is not None and journal.is_file()
        time.sleep(0.5)  # let a few frames land
        os.kill(proc.pid, signal.SIGINT)
        code = proc.wait(timeout=60)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
    assert code == EXIT_INTERRUPTED, int_out.read_text()
    (run_dir,) = list(root.iterdir())
    assert RunManifest.load(run_dir).status == STATUS_INTERRUPTED
    assert "resume with" in int_out.read_text()
    assert (run_dir / "dead_letters.jsonl").is_file()

    resume_out = tmp_path / "resume.out"
    proc = spawn_batch(
        [
            sys.executable, "-m", "repro", "batch",
            "--resume", str(run_dir),
        ],
        resume_out,
    )
    assert wait_and_reap(proc) == 0, resume_out.read_text()
    assert estimate_lines(resume_out) == clean_lines
    assert RunManifest.load(run_dir).status == "completed"
