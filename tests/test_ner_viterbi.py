"""Tests for Viterbi decoding, including brute-force equivalence."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ner.viterbi import viterbi_decode


def brute_force(emissions, transitions, start):
    """Enumerate all paths; return the best one."""
    T, K = emissions.shape
    best_path, best_score = None, -np.inf
    for path in itertools.product(range(K), repeat=T):
        score = start[path[0]] + emissions[0, path[0]]
        for t in range(1, T):
            score += transitions[path[t - 1], path[t]] + emissions[t, path[t]]
        if score > best_score:
            best_path, best_score = list(path), score
    return best_path, best_score


def path_score(path, emissions, transitions, start):
    score = start[path[0]] + emissions[0, path[0]]
    for t in range(1, len(path)):
        score += transitions[path[t - 1], path[t]] + emissions[t, path[t]]
    return score


class TestViterbi:
    def test_empty_sequence(self):
        assert viterbi_decode(np.zeros((0, 3)), np.zeros((3, 3)),
                              np.zeros(3)) == []

    def test_single_token(self):
        em = np.array([[1.0, 5.0, 2.0]])
        path = viterbi_decode(em, np.zeros((3, 3)), np.zeros(3))
        assert path == [1]

    def test_transitions_matter(self):
        # Emissions prefer [0, 0] but transition 0->0 is catastrophic.
        em = np.array([[1.0, 0.0], [1.0, 0.0]])
        trans = np.array([[-100.0, 0.0], [0.0, 0.0]])
        path = viterbi_decode(em, trans, np.zeros(2))
        assert path != [0, 0]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            viterbi_decode(np.zeros((2, 3)), np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            viterbi_decode(np.zeros((2, 3)), np.zeros((3, 3)), np.zeros(2))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 5), st.integers(2, 4), st.integers(0, 10_000))
    def test_matches_brute_force(self, T, K, seed):
        rng = np.random.default_rng(seed)
        em = rng.normal(size=(T, K))
        trans = rng.normal(size=(K, K))
        start = rng.normal(size=K)
        fast = viterbi_decode(em, trans, start)
        slow, slow_score = brute_force(em, trans, start)
        assert path_score(fast, em, trans, start) == pytest.approx(slow_score)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 8), st.integers(2, 5), st.integers(0, 10_000))
    def test_beats_random_paths(self, T, K, seed):
        rng = np.random.default_rng(seed)
        em = rng.normal(size=(T, K))
        trans = rng.normal(size=(K, K))
        start = rng.normal(size=K)
        best = path_score(viterbi_decode(em, trans, start), em, trans, start)
        for _ in range(20):
            random_path = rng.integers(0, K, size=T).tolist()
            assert best >= path_score(random_path, em, trans, start) - 1e-9
