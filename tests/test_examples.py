"""Smoke tests: every example under ``examples/`` stays runnable.

Each example runs as a real subprocess (fresh interpreter, only
``PYTHONPATH=src``) so import errors, API drift and crashed servers
all fail loudly.  ``train_ner.py`` trains a perceptron for ~30 s, so
by default it is only compile-checked; set ``REPRO_RUN_SLOW_EXAMPLES=1``
to execute it too.
"""

from __future__ import annotations

import os
import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
RUN_SLOW = os.environ.get("REPRO_RUN_SLOW_EXAMPLES", "") == "1"

#: example -> substring its stdout must contain.
EXPECTED_OUTPUT = {
    "quickstart.py": "Per-serving profile",
    "custom_database.py": "",
    "dietary_analytics.py": "",
    "recipe_recommendation.py": "",
    "serve_client.py": "service shut down cleanly",
    "train_ner.py": "",
}

SLOW = frozenset({"train_ner.py"})


def run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
    )


def all_examples() -> list[str]:
    return sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_every_example_has_an_expectation():
    """New examples must register here so they get smoke coverage."""
    assert set(all_examples()) == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("name", all_examples())
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES_DIR / name), doraise=True)


@pytest.mark.parametrize(
    "name", [n for n in all_examples() if RUN_SLOW or n not in SLOW]
)
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert EXPECTED_OUTPUT[name] in result.stdout


def test_serve_client_reports_cache_hit():
    """The example demonstrates the response cache actually answering."""
    result = run_example("serve_client.py")
    assert result.returncode == 0
    assert "X-Cache=hit" in result.stdout
    assert "identical: True" in result.stdout
