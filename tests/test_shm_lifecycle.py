"""Lifecycle of the shared-memory artifact handoff (ISSUE 9).

The sharded engine publishes the estimator's artifact image into one
``multiprocessing.shared_memory`` segment per pool; workers attach
read-only, validate magic/version/checksum/fingerprint, and build
from the bytes.  These tests pin the segment's whole life:

* created **once** per pool, named ``repro-art-*`` so a leak scan can
  find strays,
* shared across crash→respawn (the replacement worker re-attaches the
  same segment and the run's results stay bit-identical),
* a ``crash@shm-attach`` fault at boot is survived the same way,
* unlinked exactly once on clean ``close()`` — and by the GC
  finalizer when an engine is dropped without closing,
* never leaked: every test asserts the ``/dev/shm`` scan returns to
  its baseline.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os
from multiprocessing import shared_memory

import pytest

from repro import EstimatorSpec, NutritionEstimator, RecipeGenerator
from repro.artifacts.errors import ArtifactCorruptError
from repro.artifacts.format import pack_artifact_blob, parse_artifact_blob
from repro.pipeline.engine import ShardedCorpusEstimator
from repro.pipeline.shm import (
    SEGMENT_PREFIX,
    SharedArtifactBootstrap,
    SharedArtifactSegment,
    SpecBootstrap,
    make_bootstrap,
    sweep_stale_segments,
)

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR)
    or mp.get_start_method(allow_none=False) != "fork",
    reason="requires /dev/shm and the fork start method",
)


def _segments() -> set[str]:
    """Names of live repro artifact segments on this host."""
    return {
        name
        for name in os.listdir(SHM_DIR)
        if name.startswith(SEGMENT_PREFIX)
    }


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must return ``/dev/shm`` to its starting state."""
    before = _segments()
    yield
    gc.collect()
    assert _segments() == before


@pytest.fixture(scope="module")
def corpus():
    return RecipeGenerator().generate(60)


@pytest.fixture(scope="module")
def reference(corpus):
    return NutritionEstimator().estimate_corpus(corpus)


class TestSegment:
    def test_roundtrip_and_unlink(self):
        blob = pack_artifact_blob({"hello": [1, 2, 3]})
        segment = SharedArtifactSegment.create(blob)
        try:
            assert segment.name in _segments()
            assert segment.size == len(blob)
            attached = shared_memory.SharedMemory(name=segment.name)
            try:
                copy = bytes(attached.buf[: segment.size])
            finally:
                attached.close()
            assert copy == blob
            assert parse_artifact_blob(copy) == {"hello": [1, 2, 3]}
        finally:
            segment.unlink()
        assert segment.name not in _segments()

    def test_unlink_is_idempotent(self):
        segment = SharedArtifactSegment.create(b"x" * 64)
        segment.unlink()
        segment.unlink()  # second call must be a silent no-op

    def test_corrupt_blob_rejected_with_segment_source(self):
        blob = bytearray(pack_artifact_blob({"k": "v"}))
        blob[-1] ^= 0xFF
        with pytest.raises(ArtifactCorruptError, match="shm:test"):
            parse_artifact_blob(bytes(blob), source="shm:test")


class TestBootstrapSelection:
    def test_fork_context_uses_shared_segment(self):
        spec = EstimatorSpec()
        bootstrap, segment = make_bootstrap(spec)
        try:
            assert isinstance(bootstrap, SharedArtifactBootstrap)
            assert segment is not None
            assert bootstrap.name == segment.name
        finally:
            if segment is not None:
                segment.unlink()

    def test_spawn_context_falls_back_to_spec(self):
        """Under spawn each child re-registers the segment with its
        own resource tracker, which would unlink it early — so the
        classic pickled-spec bootstrap is kept instead."""
        bootstrap, segment = make_bootstrap(
            EstimatorSpec(), ctx=mp.get_context("spawn")
        )
        assert isinstance(bootstrap, SpecBootstrap)
        assert segment is None

    def test_bootstrap_build_yields_working_estimator(self):
        bootstrap, segment = make_bootstrap(EstimatorSpec())
        try:
            estimator = bootstrap.build(worker_id=0)
            expected = NutritionEstimator().estimate_ingredient(
                "2 cups flour"
            )
            assert estimator.estimate_ingredient("2 cups flour") == expected
        finally:
            segment.unlink()

    def test_unbuildable_spec_falls_back_to_spec_bootstrap(self):
        """A spec whose build() raises must keep raising inside the
        worker (the init_error channel), not abort pool construction
        in the parent."""
        spec = EstimatorSpec(max_grams=-1.0)
        with pytest.raises(Exception):
            spec.build()  # precondition: this spec really is broken
        bootstrap, segment = make_bootstrap(spec)
        assert isinstance(bootstrap, SpecBootstrap)
        assert segment is None


def _dead_pid() -> int:
    """A pid guaranteed to belong to no live process."""
    proc = mp.Process(target=_noop)
    proc.start()
    proc.join()
    return proc.pid


def _noop() -> None:
    pass


def _plant(name: str) -> str:
    """Plant a fake abandoned segment file directly in /dev/shm."""
    path = os.path.join(SHM_DIR, name)
    with open(path, "wb") as handle:
        handle.write(b"\0" * 32)
    return path


class TestStaleSweep:
    """Segments abandoned by hard-killed coordinators are reclaimed.

    ``kill -9`` / OOM / injected ``os._exit(70)`` skip ``unlink()``,
    and orphaned workers keep the resource tracker from ever cleaning
    up — so the next pool start must do it, keyed on the dead creator
    pid embedded in the segment name.
    """

    def test_sweep_removes_dead_creator_keeps_live(self):
        stale = _plant(f"{SEGMENT_PREFIX}{_dead_pid()}-deadbeef")
        live = _plant(f"{SEGMENT_PREFIX}{os.getpid()}-feedface")
        try:
            removed = sweep_stale_segments()
            assert os.path.basename(stale) in removed
            assert not os.path.exists(stale)
            assert os.path.exists(live)  # creator (us) is alive
        finally:
            for path in (stale, live):
                if os.path.exists(path):
                    os.unlink(path)

    def test_sweep_skips_malformed_names(self):
        odd = _plant(f"{SEGMENT_PREFIX}notapid-cafe")
        try:
            assert os.path.basename(odd) not in sweep_stale_segments()
            assert os.path.exists(odd)
        finally:
            os.unlink(odd)

    def test_segment_create_reclaims_stale_segments(self):
        stale = _plant(f"{SEGMENT_PREFIX}{_dead_pid()}-0badc0de")
        segment = SharedArtifactSegment.create(b"x" * 16)
        try:
            assert not os.path.exists(stale)
        finally:
            segment.unlink()
            if os.path.exists(stale):
                os.unlink(stale)


class TestEngineLifecycle:
    def test_one_segment_per_pool_unlinked_on_close(self, corpus, reference):
        baseline = _segments()
        engine = ShardedCorpusEstimator(workers=2, chunk_size=32)
        engine.ensure_pool()
        live = _segments() - baseline
        assert len(live) == 1  # created once, before any run

        assert engine.estimate_corpus(corpus) == reference
        assert _segments() - baseline == live  # reused, not re-created
        assert engine.estimate_corpus(corpus) == reference  # warm reuse
        assert _segments() - baseline == live

        engine.close()
        assert _segments() == baseline
        engine.close()  # idempotent

    def test_finalizer_unlinks_unclosed_engine(self, corpus, reference):
        baseline = _segments()
        engine = ShardedCorpusEstimator(workers=2, chunk_size=32)
        assert engine.estimate_corpus(corpus) == reference
        assert len(_segments() - baseline) == 1
        del engine
        gc.collect()
        assert _segments() == baseline

    def test_segment_survives_worker_crash(
        self, monkeypatch, corpus, reference
    ):
        """crash@collect-chunk kills a worker mid-run; the respawned
        worker re-attaches the same segment and the results stay
        bit-identical."""
        monkeypatch.setenv("REPRO_FAULTS", "crash@collect-chunk:1")
        baseline = _segments()
        with ShardedCorpusEstimator(workers=2, chunk_size=16) as engine:
            engine.ensure_pool()
            live = _segments() - baseline
            assert engine.estimate_corpus(corpus) == reference
            report = engine.last_report
            assert report.worker_crashes >= 1
            assert report.respawns >= 1
            assert _segments() - baseline == live  # same segment
        assert _segments() == baseline

    def test_crash_at_shm_attach_respawns_clean(
        self, monkeypatch, corpus, reference
    ):
        """A worker killed *while attaching the segment* is replaced;
        the replacement (fresh worker id, first-attempt-only crash
        rule) attaches cleanly and the run completes identically."""
        monkeypatch.setenv("REPRO_FAULTS", "crash@shm-attach:0")
        with ShardedCorpusEstimator(workers=2, chunk_size=32) as engine:
            assert engine.estimate_corpus(corpus) == reference
            report = engine.last_report
            assert report.worker_crashes >= 1
            assert report.respawns >= 1
