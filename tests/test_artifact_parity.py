"""Bit-identical parity: artifact-loaded vs built-from-scratch.

The artifact store's core guarantee — loading a snapshot must change
*nothing* about what the pipeline computes.  Every comparison here is
field-for-field dataclass equality (floats compare with ``==``, no
tolerance): the generated corpus through the two-phase protocol, the
single-phrase paths, a trained perceptron's decodes, and the sharded
engine at multiple worker counts against the in-process reference.
"""

from __future__ import annotations

import pytest

from repro import (
    EstimatorSpec,
    GeneratorConfig,
    NutritionEstimator,
    RecipeGenerator,
    ShardedCorpusEstimator,
)
from repro.artifacts import load_artifact, save_artifact
from repro.ner.perceptron import AveragedPerceptronTagger

N_RECIPES = 60


@pytest.fixture(scope="module")
def corpus():
    return RecipeGenerator(config=GeneratorConfig(seed=11)).generate(
        N_RECIPES
    )


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("parity") / "pipeline.artifact"
    save_artifact(path, NutritionEstimator())
    return path


@pytest.fixture(scope="module")
def fresh_estimates(corpus):
    return NutritionEstimator().estimate_corpus(corpus)


class TestSingleProcessParity:
    def test_corpus_protocol_is_bit_identical(
        self, corpus, artifact_path, fresh_estimates
    ):
        loaded = load_artifact(artifact_path).build_estimator()
        assert loaded.estimate_corpus(corpus) == fresh_estimates

    def test_single_phrase_paths_are_bit_identical(self, artifact_path):
        fresh = NutritionEstimator()
        loaded = load_artifact(artifact_path).build_estimator()
        phrases = [
            "2 cups all-purpose flour",
            "3/4 cup butter , softened",
            "1 small onion , finely chopped",
            "500 g flour or 1 cup",
            "2 tsp garam masala",  # deliberately unmappable
            "salt to taste",
        ]
        for text in phrases:
            assert loaded.parse(text) == fresh.parse(text)
            assert loaded.estimate_ingredient(
                text
            ) == fresh.estimate_ingredient(text)

    def test_matcher_rankings_are_bit_identical(self, artifact_path):
        fresh = NutritionEstimator().matcher
        loaded = load_artifact(artifact_path).build_estimator().matcher
        for name, state in [
            ("butter", ""),
            ("red lentils", "rinsed"),
            ("apple", ""),
            ("white sugar", ""),
            ("eggs", "beaten"),
        ]:
            assert loaded.match(name, state) == fresh.match(name, state)
            assert loaded.top_matches(name, state, k=5) == fresh.top_matches(
                name, state, k=5
            )


class TestReasonCodeParity:
    """ISSUE 5 satellite: artifact round-trips are unaffected by the
    strategy-chain refactor — restored matcher/resolver components
    produce identical reason codes and traces to freshly built ones."""

    def test_reason_codes_identical_over_corpus(
        self, corpus, artifact_path, fresh_estimates
    ):
        loaded = load_artifact(artifact_path).build_estimator()
        restored = loaded.estimate_corpus(corpus)
        reasons = set()
        for ours, reference in zip(restored, fresh_estimates):
            for a, b in zip(ours.ingredients, reference.ingredients):
                assert a.reason == b.reason
                assert a.trace == b.trace
                reasons.add(a.reason)
        assert len(reasons) >= 3  # several strategies actually exercised

    def test_restored_resolver_drives_identical_chain(self, artifact_path):
        """The chain consumes UnitResolver.from_parts output directly:
        run it against restored and fresh resolvers for the same food
        and line, including a failing line, and compare traces."""
        from repro.core.explain import explain_line

        fresh = NutritionEstimator()
        loaded = load_artifact(artifact_path).build_estimator()
        for text, context in [
            ("2 cups all-purpose flour", ()),
            ("1 (15 ounce) can black beans", ()),
            ("500 cups water", ()),
            ("1 head butter cup", ("2 tablespoons butter",)),
        ]:
            ours = explain_line(loaded, text, context=context)
            reference = explain_line(fresh, text, context=context)
            assert ours.estimate == reference.estimate
            assert ours.stages == reference.stages
            assert ours.render() == reference.render()


class TestShardedEngineParity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_engine_from_artifact_matches_fresh_build(
        self, corpus, artifact_path, fresh_estimates, workers
    ):
        engine = ShardedCorpusEstimator(
            EstimatorSpec(artifact_path=str(artifact_path)),
            workers=workers,
            chunk_size=32,  # force several chunks per worker
        )
        assert engine.estimate_corpus(corpus) == fresh_estimates


class TestPerceptronParity:
    @pytest.fixture(scope="class")
    def trained(self):
        generator = RecipeGenerator(config=GeneratorConfig(seed=5))
        phrases = [i.tagged for i in generator.generate_phrases(250)]
        tagger = AveragedPerceptronTagger()
        tagger.train(phrases, epochs=2)
        return tagger

    @pytest.fixture(scope="class")
    def perceptron_artifact(self, trained, tmp_path_factory):
        path = tmp_path_factory.mktemp("parity-nn") / "trained.artifact"
        save_artifact(path, NutritionEstimator(tagger=trained))
        return path

    def test_restored_weights_are_exact(self, trained, perceptron_artifact):
        restored = load_artifact(perceptron_artifact).build_tagger()
        assert restored._weights == trained._weights
        assert restored._feature_ids == trained._feature_ids
        assert (restored._weight_matrix == trained._weight_matrix).all()
        assert (restored._transitions == trained._transitions).all()
        assert (restored._start == trained._start).all()

    def test_decodes_are_bit_identical(
        self, trained, perceptron_artifact, corpus
    ):
        restored = load_artifact(perceptron_artifact).build_tagger()
        from repro.text.tokenize import tokenize

        for recipe in corpus[:20]:
            for text in recipe.ingredient_texts:
                tokens = tokenize(text)
                assert restored.predict(tokens) == trained.predict(tokens)

    def test_corpus_estimates_with_trained_tagger_are_bit_identical(
        self, trained, perceptron_artifact, corpus
    ):
        fresh = NutritionEstimator(tagger=trained).estimate_corpus(corpus)
        loaded = (
            load_artifact(perceptron_artifact)
            .build_estimator()
            .estimate_corpus(corpus)
        )
        assert loaded == fresh
