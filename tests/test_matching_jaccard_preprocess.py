"""Tests for Jaccard indices and match preprocessing."""

from hypothesis import given, strategies as st

from repro.matching.jaccard import modified_jaccard, vanilla_jaccard
from repro.matching.preprocess import (
    canonical_word,
    preprocess_description,
    preprocess_word_set,
    preprocess_words,
)

words = st.frozensets(st.sampled_from("abcdefghij"), max_size=8)


class TestJaccardIndices:
    def test_paper_definitions(self):
        a = {"red", "lentil"}
        b = {"lentil", "pink", "red", "raw"}
        assert vanilla_jaccard(a, b) == 2 / 4
        assert modified_jaccard(a, b) == 2 / 2

    def test_empty_sets(self):
        assert vanilla_jaccard(set(), set()) == 0.0
        assert modified_jaccard(set(), {"x"}) == 0.0

    @given(words, words)
    def test_bounds(self, a, b):
        assert 0.0 <= vanilla_jaccard(a, b) <= 1.0
        assert 0.0 <= modified_jaccard(a, b) <= 1.0

    @given(words, words)
    def test_modified_at_least_vanilla(self, a, b):
        # |A| <= |A ∪ B|, so J* >= J: exactly the anti-long-string bias
        # removal the paper wants.
        assert modified_jaccard(a, b) >= vanilla_jaccard(a, b) - 1e-12

    @given(words)
    def test_identity(self, a):
        if a:
            assert vanilla_jaccard(a, a) == 1.0
            assert modified_jaccard(a, a) == 1.0

    @given(words, words)
    def test_vanilla_symmetric(self, a, b):
        assert vanilla_jaccard(a, b) == vanilla_jaccard(b, a)

    def test_long_description_bias(self):
        # The §II-B(e) motivating case: a long detailed description must
        # not lose to a short one under the modified index.
        a = {"skim", "milk"}
        long_b = {"milk", "nonfat", "fluid", "added", "vitamin", "fat",
                  "not", "free", "skim"}
        short_b = {"milk", "shake", "thick", "chocolate"}
        assert modified_jaccard(a, long_b) > modified_jaccard(a, short_b)
        assert vanilla_jaccard(a, long_b) < modified_jaccard(a, long_b)


class TestPreprocess:
    def test_paper_negation_example(self):
        assert preprocess_words("unsalted butter") == ["not", "salt", "butter"]
        assert preprocess_words("Butter, without salt") == ["butter", "not", "salt"]

    def test_sets_match_after_preprocess(self):
        assert preprocess_word_set("unsalted butter") == preprocess_word_set(
            "Butter, without salt")

    def test_stop_words_removed(self):
        assert "with" not in preprocess_words("Butter, whipped, with salt")

    def test_lemmatization(self):
        assert preprocess_word_set("Apples, raw") == {"apple", "raw"}

    def test_canonical_word_participle(self):
        assert canonical_word("salted") == "salt"
        assert canonical_word("chopped") == "chop"
        assert canonical_word("apples") == "apple"
        assert canonical_word("butter") == "butter"


class TestPreprocessDescription:
    def test_term_priorities(self):
        desc = preprocess_description("Butter, whipped, with salt")
        assert desc.term_priority["butter"] == 1
        assert desc.term_priority["whip"] == 2
        assert desc.term_priority["salt"] == 3

    def test_first_occurrence_wins(self):
        desc = preprocess_description("Egg, whole, raw, fresh")
        assert desc.term_priority["egg"] == 1
        assert desc.has_raw

    def test_has_raw_false(self):
        assert not preprocess_description("Butter, salted").has_raw

    def test_numbers_dropped(self):
        desc = preprocess_description(
            "Milk, reduced fat, fluid, 2% milkfat, with added vitamin A "
            "and vitamin D")
        assert "milkfat" in desc.words
        assert "2" not in desc.words
