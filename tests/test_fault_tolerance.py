"""Fault tolerance of the supervised sharded engine (ISSUE 6).

Every recovery path is driven deterministically through
``repro.faults`` (the ``REPRO_FAULTS`` environment variable crosses
the fork boundary to pool workers for free):

* a worker **crash** mid-chunk is detected, the worker respawned, the
  chunk retried — and the final result is **bit-identical** to the
  clean run (the two-phase protocol's chunk-order merge survives);
* a **hung** worker trips the chunk deadline, is killed and replaced;
* a fault that persists across the retry budget surfaces as a typed
  :class:`ChunkRetriesExhaustedError`;
* a **poison line** (estimator raises on it every attempt) is
  quarantined to a dead-letter record, and the surviving lines match
  a clean run over the corpus *minus* that line — the quarantine
  contract: a dead-lettered line behaves exactly as if absent;
* a **corrupt JSONL line** is skipped-and-counted by ingestion when
  asked, strict-raised by default.
"""

from __future__ import annotations

import pytest

from repro import (
    NutritionEstimator,
    RecipeGenerator,
    ShardedCorpusEstimator,
)
from repro.core.resolution import REASON_ESTIMATOR_ERROR
from repro.deadletter import REASON_MALFORMED_JSON, DeadLetterLog
from repro.faults import (
    CRASH_EXIT_CODE,
    FaultPlan,
    FaultSpecError,
    InjectedFault,
)
from repro.pipeline.errors import ChunkRetriesExhaustedError, PipelineError
from repro.recipedb.corpus import iter_recipes_jsonl, save_recipes_jsonl
from repro.recipedb.generator import GeneratorConfig


@pytest.fixture(scope="module")
def corpus():
    return RecipeGenerator(config=GeneratorConfig(seed=23)).generate(120)


@pytest.fixture(scope="module")
def counts(corpus):
    from collections import Counter

    return dict(
        Counter(t for recipe in corpus for t in recipe.ingredient_texts)
    )


@pytest.fixture(scope="module")
def clean_table(counts):
    return NutritionEstimator().corpus_estimate_table(dict(counts))


class TestFaultPlanParsing:
    def test_rules_parse(self):
        plan = FaultPlan.parse(
            "crash@collect-chunk:1;sleep@collect-chunk:0:2.5;"
            "raise@estimate-line:caviar;corrupt@ingest-line:7"
        )
        assert len(plan.rules) == 4
        actions = [rule.action for rule in plan.rules]
        assert actions == ["crash", "sleep", "raise", "corrupt"]

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultSpecError, match="bad fault rule"):
            FaultPlan.parse("explode@collect-chunk:1")

    def test_missing_site_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("crash")

    def test_sleep_needs_numeric_arg(self):
        with pytest.raises(FaultSpecError, match="numeric"):
            FaultPlan.parse("sleep@collect-chunk:0:soon")

    def test_crash_fires_first_attempt_only(self):
        rule = FaultPlan.parse("crash@collect-chunk:1").rules[0]
        assert not rule.every_attempt

    def test_always_suffix_fires_every_attempt(self):
        rule = FaultPlan.parse("crash@collect-chunk:1:always").rules[0]
        assert rule.every_attempt

    def test_raise_always_fires(self):
        plan = FaultPlan.parse("raise@estimate-line:caviar")
        assert plan.rules[0].every_attempt
        with pytest.raises(InjectedFault):
            plan.poison("1 oz caviar, chilled")
        plan.poison("2 cups flour")  # no match, no raise

    def test_corrupt_line_replaces_matching_line_only(self):
        plan = FaultPlan.parse("corrupt@ingest-line:3")
        assert plan.corrupt_line(2, '{"ok": 1}') == '{"ok": 1}'
        corrupted = plan.corrupt_line(3, '{"ok": 1}')
        with pytest.raises(Exception):
            import json

            json.loads(corrupted)

    def test_empty_spec_is_no_plan(self, monkeypatch):
        from repro import faults

        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert faults.active_plan() is None

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE == 70


class TestCrashRecovery:
    def test_crash_run_is_bit_identical_to_clean_run(
        self, monkeypatch, corpus
    ):
        """The acceptance criterion: one injected worker crash, two
        workers, result identical to the no-fault run."""
        clean = ShardedCorpusEstimator(
            workers=2, chunk_size=29
        ).estimate_corpus(corpus)
        monkeypatch.setenv("REPRO_FAULTS", "crash@collect-chunk:1")
        engine = ShardedCorpusEstimator(workers=2, chunk_size=29)
        assert engine.estimate_corpus(corpus) == clean
        report = engine.last_report
        assert report.worker_crashes >= 1
        assert report.respawns >= 1
        assert report.retries >= 1
        assert len(report.dead_letters) == 0

    def test_crash_in_fallback_phase_recovers(self, monkeypatch, corpus):
        clean = ShardedCorpusEstimator(
            workers=2, chunk_size=29
        ).estimate_corpus(corpus)
        monkeypatch.setenv("REPRO_FAULTS", "crash@fallback-chunk:0")
        engine = ShardedCorpusEstimator(workers=2, chunk_size=29)
        assert engine.estimate_corpus(corpus) == clean
        assert engine.last_report.worker_crashes >= 1

    def test_report_counters_shape(self, monkeypatch, corpus):
        monkeypatch.setenv("REPRO_FAULTS", "crash@collect-chunk:0")
        engine = ShardedCorpusEstimator(workers=2, chunk_size=29)
        engine.estimate_corpus(corpus)
        counters = engine.last_report.counters()
        assert set(counters) == {
            "retries", "respawns", "worker_crashes", "hung_workers",
            "dead_lettered",
        }


class TestHungWorkerRecovery:
    def test_hung_worker_is_killed_and_chunk_retried(
        self, monkeypatch, corpus
    ):
        clean = ShardedCorpusEstimator(
            workers=2, chunk_size=29
        ).estimate_corpus(corpus)
        # Sleep far beyond the deadline: only the kill path can finish
        # this test quickly, which is itself the assertion.
        monkeypatch.setenv("REPRO_FAULTS", "sleep@collect-chunk:0:60")
        engine = ShardedCorpusEstimator(
            workers=2, chunk_size=29, chunk_deadline_s=0.5
        )
        assert engine.estimate_corpus(corpus) == clean
        report = engine.last_report
        assert report.hung_workers >= 1
        assert report.respawns >= 1


class TestRetryExhaustion:
    def test_persistent_crash_exhausts_budget_with_typed_error(
        self, monkeypatch, counts
    ):
        monkeypatch.setenv("REPRO_FAULTS", "crash@collect-chunk:0:always")
        engine = ShardedCorpusEstimator(
            workers=2, chunk_size=29, max_chunk_retries=1
        )
        with pytest.raises(ChunkRetriesExhaustedError) as excinfo:
            engine.estimate_table(dict(counts))
        assert excinfo.value.chunk_id == 0
        assert excinfo.value.attempts == 2  # first try + 1 retry
        assert isinstance(excinfo.value, PipelineError)
        assert str(CRASH_EXIT_CODE) in str(excinfo.value)


class TestPoisonLineQuarantine:
    """A dead-lettered line behaves exactly as if absent."""

    @pytest.fixture(scope="class")
    def poisoned_text(self, counts):
        # Pick a line that is unique enough to select by substring:
        # the longest distinct line (its full text is its selector).
        return max(counts, key=len)

    def test_strict_default_propagates(self, monkeypatch, counts,
                                       poisoned_text):
        monkeypatch.setenv(
            "REPRO_FAULTS", f"raise@estimate-line:{poisoned_text}"
        )
        engine = ShardedCorpusEstimator(workers=1)
        with pytest.raises(InjectedFault):
            engine.estimate_table(dict(counts))

    @pytest.mark.parametrize("workers", [1, 2])
    def test_quarantine_matches_corpus_minus_line(
        self, monkeypatch, counts, poisoned_text, workers
    ):
        reduced = {
            text: n for text, n in counts.items() if text != poisoned_text
        }
        clean_minus = ShardedCorpusEstimator(
            workers=workers, chunk_size=29
        ).estimate_table(reduced)
        monkeypatch.setenv(
            "REPRO_FAULTS", f"raise@estimate-line:{poisoned_text}"
        )
        engine = ShardedCorpusEstimator(
            workers=workers, chunk_size=29, quarantine=True
        )
        table = engine.estimate_table(dict(counts))
        # Every surviving line is bit-identical to the run without the
        # poisoned line...
        for text in reduced:
            assert table[text] == clean_minus[text]
        # ...and the poisoned line carries a typed placeholder.
        assert table[poisoned_text].reason == REASON_ESTIMATOR_ERROR
        assert table[poisoned_text].status == "unmatched"
        report = engine.last_report
        assert len(report.dead_letters) == 1
        letter = report.dead_letters.records[0]
        assert letter.source == "estimate"
        assert letter.reason == REASON_ESTIMATOR_ERROR
        assert poisoned_text.startswith(letter.input) or (
            letter.input == poisoned_text
        )
        assert "InjectedFault" in letter.detail

    def test_quarantine_without_fault_changes_nothing(
        self, counts, clean_table
    ):
        table = ShardedCorpusEstimator(
            workers=2, chunk_size=29, quarantine=True
        ).estimate_table(dict(counts))
        assert table == clean_table


class TestIngestQuarantine:
    @pytest.fixture()
    def corpus_path(self, tmp_path, corpus):
        path = tmp_path / "corpus.jsonl"
        save_recipes_jsonl(list(corpus), path)
        return path

    def test_strict_default_raises_on_corruption(
        self, monkeypatch, corpus_path
    ):
        import json

        monkeypatch.setenv("REPRO_FAULTS", "corrupt@ingest-line:3")
        with pytest.raises(json.JSONDecodeError):
            list(iter_recipes_jsonl(corpus_path))

    def test_skip_mode_counts_and_continues(
        self, monkeypatch, corpus_path, corpus
    ):
        monkeypatch.setenv("REPRO_FAULTS", "corrupt@ingest-line:3")
        letters = DeadLetterLog()
        recipes = list(
            iter_recipes_jsonl(
                corpus_path, on_error="skip", dead_letters=letters
            )
        )
        assert len(recipes) == len(corpus) - 1
        assert len(letters) == 1
        letter = letters.records[0]
        assert letter.source == "ingest"
        assert letter.line_no == 3
        assert letter.reason == REASON_MALFORMED_JSON

    def test_invalid_on_error_value_rejected(self, corpus_path):
        with pytest.raises(ValueError, match="on_error"):
            list(iter_recipes_jsonl(corpus_path, on_error="ignore"))

    def test_engine_quarantines_corrupt_line_end_to_end(
        self, monkeypatch, corpus_path, corpus
    ):
        """Engine over a corpus with line 3 corrupted == clean engine
        over the corpus without recipe 3, and the dead-letter report
        names the line."""
        reduced = [r for i, r in enumerate(corpus, start=1) if i != 3]
        clean = ShardedCorpusEstimator(
            workers=2, chunk_size=29
        ).estimate_corpus(reduced)
        monkeypatch.setenv("REPRO_FAULTS", "corrupt@ingest-line:3")
        engine = ShardedCorpusEstimator(
            workers=2, chunk_size=29, quarantine=True
        )
        assert engine.estimate_corpus(corpus_path) == clean
        report = engine.last_report
        assert len(report.dead_letters) == 1
        assert report.dead_letters.records[0].line_no == 3
        rendered = report.dead_letters.render()
        assert "line 3" in rendered
        assert REASON_MALFORMED_JSON in rendered

    def test_strict_engine_propagates_corruption(
        self, monkeypatch, corpus_path
    ):
        import json

        monkeypatch.setenv("REPRO_FAULTS", "corrupt@ingest-line:3")
        engine = ShardedCorpusEstimator(workers=1)
        with pytest.raises(json.JSONDecodeError):
            engine.estimate_corpus(corpus_path)


class TestEngineValidation:
    def test_bad_retry_budget_rejected(self):
        with pytest.raises(ValueError, match="max_chunk_retries"):
            ShardedCorpusEstimator(max_chunk_retries=-1)

    def test_supervisor_validates_deadline(self):
        from repro.pipeline.supervisor import SupervisedWorkerPool

        with pytest.raises(ValueError, match="deadline_s"):
            SupervisedWorkerPool(None, {}, 1, deadline_s=0)
