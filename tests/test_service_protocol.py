"""Adversarial-client tests for the event-loop server's protocol layer.

Every scenario here is a client misbehaving at the socket level —
slowloris drip-feeding, pipelined bursts, mid-body disconnects,
oversized or malformed requests — and the invariant under test is
always the same: the loop neither wedges nor leaks.  After each
attack the service still answers ``/healthz`` instantly, and the
``connections`` section of ``/metrics`` accounts for every closed
socket (``active`` returns to just the scrape connection itself).

Timeouts are configured aggressively small (``io_timeout_s``,
``idle_timeout_s``) so the suite runs in seconds; production defaults
are 10 s / 60 s.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.service import NutritionService, ServiceConfig
from service_harness import (
    ResponseStream,
    build_request,
    raw_request,
    recv_response,
)

#: Matches tests/test_service_resilience.py: every estimation sleeps
#: 0.4 s at the service-estimate checkpoint.
SLOW = "sleep@service-estimate:*:0.4"


@pytest.fixture(scope="module")
def service():
    config = ServiceConfig(
        port=0,
        cache_cap=64,
        io_timeout_s=0.5,
        idle_timeout_s=1.0,
        request_timeout_s=5.0,
    )
    with NutritionService(config) as svc:
        yield svc


def metrics(service) -> dict:
    raw = raw_request(
        service.host, service.port, build_request("GET", "/metrics")
    )
    return json.loads(raw.partition(b"\r\n\r\n")[2])


def wait_for(predicate, timeout_s: float = 5.0, interval_s: float = 0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def assert_no_leaked_connections(service):
    """All attack connections torn down; only the scrape itself lives."""
    assert wait_for(
        lambda: metrics(service)["connections"]["active"] <= 1
    ), metrics(service)["connections"]


class TestSlowloris:
    def test_partial_request_is_reaped_by_io_timeout(self, service):
        before = metrics(service)["connections"]["io_timeouts"]
        sock = socket.create_connection(
            (service.host, service.port), timeout=10
        )
        # A request that never finishes: drip a few header bytes and
        # stall.  The io timeout runs from the FIRST byte, so the
        # drip does not keep the connection alive.
        sock.sendall(b"POST /v1/estimate HTTP/1.1\r\n")
        time.sleep(0.2)
        sock.sendall(b"Content-Length: 100\r\n")
        # No terminator, no body: the server must close on us.
        sock.settimeout(5)
        assert sock.recv(1024) == b""
        sock.close()
        assert wait_for(
            lambda: metrics(service)["connections"]["io_timeouts"] > before
        )
        assert_no_leaked_connections(service)

    def test_many_slowloris_connections_do_not_block_service(self, service):
        socks = []
        for _ in range(20):
            sock = socket.create_connection(
                (service.host, service.port), timeout=10
            )
            sock.sendall(b"GET /healthz HTT")  # forever-partial
            socks.append(sock)
        # While 20 attackers hold partial requests, a well-behaved
        # client gets an immediate answer.
        raw = raw_request(
            service.host, service.port, build_request("GET", "/healthz")
        )
        assert raw.startswith(b"HTTP/1.1 200 ")
        for sock in socks:
            sock.settimeout(5)
            assert sock.recv(1024) == b""  # reaped, not served
            sock.close()
        assert_no_leaked_connections(service)


class TestPipelining:
    def test_pipelined_burst_answers_in_order(self, service):
        before = metrics(service)["connections"]["pipelined_requests"]
        texts = [f"{n} cups flour" for n in range(1, 9)]
        burst = b"".join(
            build_request("POST", "/v1/parse", {"text": text})
            for text in texts
        )
        sock = socket.create_connection(
            (service.host, service.port), timeout=10
        )
        sock.sendall(burst)
        stream = ResponseStream(sock)
        bodies = []
        for _ in texts:
            response = stream.next_response()
            assert response.startswith(b"HTTP/1.1 200 ")
            bodies.append(json.loads(response.partition(b"\r\n\r\n")[2]))
        sock.close()
        # Responses come back in request order, not completion order.
        assert [body["text"] for body in bodies] == texts
        assert metrics(service)["connections"]["pipelined_requests"] > before
        assert_no_leaked_connections(service)

    def test_pipelining_across_inline_and_pooled_requests(self, service):
        # healthz answers inline on the loop; estimate goes to the
        # worker pool; a burst mixing both must still answer strictly
        # in order.
        estimate = build_request("POST", "/v1/estimate", {
            "ingredients": ["1 cup milk"], "servings": 1,
        })
        burst = (
            build_request("GET", "/healthz")
            + estimate
            + build_request("GET", "/healthz")
        )
        sock = socket.create_connection(
            (service.host, service.port), timeout=10
        )
        sock.sendall(burst)
        stream = ResponseStream(sock)
        first = stream.next_response()
        second = stream.next_response()
        third = stream.next_response()
        sock.close()
        assert b'"status": "ok"' in first or b'"status":"ok"' in first
        assert b"per_serving" in second
        assert b'"status":"ok"' in third or b'"status": "ok"' in third
        assert_no_leaked_connections(service)


class TestDisconnects:
    def test_mid_body_disconnect_is_accounted_and_harmless(self, service):
        before = metrics(service)["connections"]["aborted"]
        sock = socket.create_connection(
            (service.host, service.port), timeout=10
        )
        sock.sendall(
            b"POST /v1/parse HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 500\r\n\r\n"
            b'{"text": "2 cu'  # 14 of 500 promised bytes
        )
        sock.close()
        assert wait_for(
            lambda: metrics(service)["connections"]["aborted"] > before
        )
        assert_no_leaked_connections(service)

    def test_disconnect_during_estimation_does_not_wedge_loop(
        self, service, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", SLOW)
        sock = socket.create_connection(
            (service.host, service.port), timeout=10
        )
        sock.sendall(build_request("POST", "/v1/estimate", {
            "ingredients": ["1 cup quinoa"], "servings": 1,
        }))
        time.sleep(0.1)  # request reaches the worker pool
        sock.close()
        monkeypatch.delenv("REPRO_FAULTS")
        # The abandoned estimation completes in the background; the
        # loop keeps serving throughout and afterwards.
        raw = raw_request(
            service.host, service.port, build_request("GET", "/healthz")
        )
        assert raw.startswith(b"HTTP/1.1 200 ")
        assert_no_leaked_connections(service)


class TestOversizedAndMalformed:
    def test_oversized_content_length_rejected_before_body_read(
        self, service
    ):
        sock = socket.create_connection(
            (service.host, service.port), timeout=10
        )
        # Declare a huge body but send none: the 413 must arrive from
        # the headers alone.
        sock.sendall(
            b"POST /v1/estimate HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 99999999\r\n\r\n"
        )
        response = recv_response(sock)
        assert response.startswith(b"HTTP/1.1 413 ")
        body = json.loads(response.partition(b"\r\n\r\n")[2])
        assert body["error"]["code"] == "payload_too_large"
        # And the connection closes so the unread body cannot
        # desynchronize it.
        sock.settimeout(5)
        assert sock.recv(1024) == b""
        sock.close()
        assert_no_leaked_connections(service)

    @pytest.mark.parametrize("head", [
        b"GARBAGE\r\n\r\n",
        b"GET  HTTP/1.1\r\n\r\n",
        b"GET /healthz SMTP/1.0\r\n\r\n",
        b"get /healthz HTTP/1.1\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n",
        b"POST /v1/parse HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    ])
    def test_malformed_request_gets_400_and_close(self, service, head):
        before = metrics(service)["connections"]["protocol_errors"]
        sock = socket.create_connection(
            (service.host, service.port), timeout=10
        )
        sock.sendall(head)
        response = recv_response(sock)
        assert response.startswith(b"HTTP/1.1 4"), response[:80]
        body = json.loads(response.partition(b"\r\n\r\n")[2])
        assert body["error"]["code"] == "invalid_request"
        sock.settimeout(5)
        assert sock.recv(1024) == b""  # server closed
        sock.close()
        assert metrics(service)["connections"]["protocol_errors"] > before
        assert_no_leaked_connections(service)

    def test_oversized_headers_get_431(self, service):
        sock = socket.create_connection(
            (service.host, service.port), timeout=10
        )
        sock.sendall(
            b"GET /healthz HTTP/1.1\r\nX-Junk: "
            + b"a" * (64 * 1024)
            + b"\r\n\r\n"
        )
        response = recv_response(sock)
        assert response.startswith(b"HTTP/1.1 431 ")
        body = json.loads(response.partition(b"\r\n\r\n")[2])
        assert body["error"]["code"] == "headers_too_large"
        sock.close()
        assert_no_leaked_connections(service)


class TestIdleReaping:
    def test_idle_keep_alive_connection_is_reaped(self, service):
        before = metrics(service)["connections"]["idle_closed"]
        sock = socket.create_connection(
            (service.host, service.port), timeout=10
        )
        sock.sendall(build_request("GET", "/healthz"))
        assert recv_response(sock).startswith(b"HTTP/1.1 200 ")
        # Now go idle past idle_timeout_s (1.0 here).
        sock.settimeout(5)
        assert sock.recv(1024) == b""
        sock.close()
        assert metrics(service)["connections"]["idle_closed"] > before
        assert_no_leaked_connections(service)


class TestShedPathOnEventLoop:
    """Regression: 503 + Retry-After must survive the server rewrite."""

    def test_shed_returns_503_with_retry_after(self, monkeypatch):
        import http.client
        import threading

        config = ServiceConfig(
            port=0,
            max_concurrent=1,
            max_queue=0,
            request_timeout_s=5.0,
        )
        monkeypatch.setenv("REPRO_FAULTS", SLOW)
        results = []

        def fire(host, port):
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request(
                "POST", "/v1/estimate",
                json.dumps({"ingredients": ["1 cup rice"],
                            "servings": 1}),
            )
            response = conn.getresponse()
            results.append((
                response.status,
                response.getheader("Retry-After"),
                json.loads(response.read()),
            ))
            conn.close()

        with NutritionService(config) as svc:
            threads = [
                threading.Thread(target=fire, args=(svc.host, svc.port))
                for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=15)
            shed = [r for r in results if r[0] == 503]
            served = [r for r in results if r[0] == 200]
            assert shed, results
            assert served, results
            for status, retry_after, body in shed:
                assert retry_after is not None
                assert body["error"]["code"] == "overloaded"
                assert body["error"]["retry_after_s"] >= 1
