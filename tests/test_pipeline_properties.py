"""Property-based tests on end-to-end pipeline invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.recipedb.generator import GeneratorConfig, RecipeGenerator
from repro.recipedb.ingredients import INGREDIENTS


class TestGeneratorProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_any_seed_generates_valid_recipes(self, seed):
        generator = RecipeGenerator(config=GeneratorConfig(seed=seed))
        for recipe in generator.generate(3):
            assert recipe.servings > 0
            for item in recipe.ingredients:
                assert item.truth.grams > 0
                assert item.truth.kcal >= 0
                assert len(item.tagged.tokens) == len(item.tagged.tags)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000),
           spec=st.sampled_from([s.key for s in INGREDIENTS]))
    def test_every_spec_buildable(self, seed, spec):
        import random

        from repro.recipedb.ingredients import spec_by_key

        generator = RecipeGenerator()
        item = generator.build_ingredient(spec_by_key(spec), random.Random(seed))
        assert item.truth.grams > 0
        assert "NAME" in item.tagged.tags


class TestEstimatorProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 500))
    def test_profiles_nonnegative_and_additive(self, estimator, generator, seed):
        import random

        rng = random.Random(seed)
        recipe = generator.generate_recipe("RX", rng)
        result = estimator.estimate_recipe(
            recipe.ingredient_texts, recipe.servings)
        total = 0.0
        for item in result.ingredients:
            assert item.grams >= 0
            assert item.calories >= 0
            total += item.calories
        assert result.total.calories == pytest.approx(total)
        assert result.per_serving.calories == pytest.approx(
            total / recipe.servings)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(text=st.text(max_size=60))
    def test_arbitrary_text_never_crashes(self, estimator, text):
        estimate = estimator.estimate_ingredient(text)
        assert estimate.status in ("matched", "name-only", "unmatched")
        assert estimate.calories >= 0.0

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(servings=st.integers(1, 24))
    def test_servings_scale_linearly(self, estimator, servings):
        phrases = ["2 cups all-purpose flour", "1/2 cup butter"]
        one = estimator.estimate_recipe(phrases, servings=1)
        many = estimator.estimate_recipe(phrases, servings=servings)
        assert many.per_serving.calories == pytest.approx(
            one.per_serving.calories / servings)
