"""Tests for the §II-C unit fallback heuristics."""

import pytest

from repro.units.fallback import UnitFallback, scan_for_unit


class TestScanForUnit:
    def test_paper_500g_example(self):
        assert scan_for_unit("500 g flour or 1 cup") == "gram"

    def test_first_unit_wins(self):
        assert scan_for_unit("1 cup or 2 tbsp") == "cup"

    def test_no_unit(self):
        assert scan_for_unit("2 eggs , beaten") is None

    def test_alias_scanned(self):
        assert scan_for_unit("2 tbsp butter") == "tablespoon"

    def test_raw_spelling_guard(self):
        # The precision guard: only tokens whose literal lower-cased
        # spelling is a known alias count.  "cups" lemmatizes to "cup"
        # but is not itself an alias, so the scan must not find it.
        assert scan_for_unit("2 cups sugar") is None
        assert scan_for_unit("2 cup sugar") == "cup"

    def test_token_memoization_is_transparent(self):
        from repro.units.fallback import _scan_token_unit

        _scan_token_unit.cache_clear()
        assert scan_for_unit("chopped fresh basil") is None
        assert scan_for_unit("chopped fresh basil") is None
        info = _scan_token_unit.cache_info()
        # Three distinct alphabetic tokens: computed once, then served
        # from the per-token memo on the repeat scan.
        assert info.misses == 3
        assert info.hits == 3
        assert _scan_token_unit("cup") == "cup"
        assert _scan_token_unit("or") is None


class TestUnitFallback:
    def test_most_frequent_unit(self):
        fb = UnitFallback()
        for _ in range(5):
            fb.observe("garlic", "clove")
        fb.observe("garlic", "teaspoon")
        # Paper: "for garlic, if the unit was not detected, it would
        # most probably be clove".
        assert fb.most_frequent_unit("garlic") == "clove"

    def test_case_insensitive_names(self):
        fb = UnitFallback()
        fb.observe("Garlic", "clove")
        assert fb.most_frequent_unit("garlic") == "clove"

    def test_unseen_returns_none(self):
        assert UnitFallback().most_frequent_unit("x") is None

    def test_plausibility_threshold(self):
        fb = UnitFallback(max_grams=5000.0)
        # "500 cups" of anything fails the threshold.
        assert not fb.plausible(500.0, 236.0)
        assert fb.plausible(2.0, 236.0)
        assert not fb.plausible(0.0, 10.0)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            UnitFallback(max_grams=0.0)

    def test_distribution(self):
        fb = UnitFallback()
        fb.observe("salt", "teaspoon")
        fb.observe("salt", "teaspoon")
        fb.observe("salt", "tablespoon")
        assert fb.unit_distribution("salt") == {"teaspoon": 2, "tablespoon": 1}
        assert fb.observed_ingredients() == ["salt"]

    def test_weighted_observe_equals_repeated(self):
        repeated, weighted = UnitFallback(), UnitFallback()
        for _ in range(4):
            repeated.observe("garlic", "clove")
        weighted.observe("garlic", "clove", count=4)
        assert repeated.snapshot() == weighted.snapshot()

    def test_observe_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            UnitFallback().observe("garlic", "clove", count=0)


class TestSnapshotMerge:
    def test_sharded_merge_equals_sequential(self):
        """Contiguous shards merged in order reproduce the exact table
        — counts and insertion order — of a front-to-back scan."""
        observations = [
            ("garlic", "clove"), ("onion", "cup"), ("garlic", "teaspoon"),
            ("garlic", "clove"), ("salt", "teaspoon"), ("onion", "cup"),
            ("salt", "pinch"), ("salt", "pinch"),
        ]
        sequential = UnitFallback()
        for name, unit in observations:
            sequential.observe(name, unit)

        merged = UnitFallback()
        for start in range(0, len(observations), 3):
            shard = UnitFallback()
            for name, unit in observations[start:start + 3]:
                shard.observe(name, unit)
            merged.merge(shard.snapshot())

        assert merged.snapshot() == sequential.snapshot()
        # Key order (the most_common tie-break) must match too.
        assert list(merged.snapshot()) == list(sequential.snapshot())
        for name in ("garlic", "onion", "salt"):
            assert merged.most_frequent_unit(name) == \
                sequential.most_frequent_unit(name)

    def test_merge_preserves_tie_break_order(self):
        # "cup" and "tablespoon" tie at 1; first-observed must win,
        # also after a merge that adds the later unit first-in-shard.
        a, b = UnitFallback(), UnitFallback()
        a.observe("butter", "cup")
        b.observe("butter", "tablespoon")
        target = UnitFallback()
        target.merge(a.snapshot())
        target.merge(b.snapshot())
        assert target.most_frequent_unit("butter") == "cup"

    def test_snapshot_is_a_copy(self):
        fb = UnitFallback()
        fb.observe("salt", "teaspoon")
        snap = fb.snapshot()
        snap["salt"]["teaspoon"] = 99
        assert fb.unit_distribution("salt") == {"teaspoon": 1}

    def test_clear(self):
        fb = UnitFallback()
        fb.observe("salt", "teaspoon")
        fb.clear()
        assert fb.most_frequent_unit("salt") is None
        assert fb.observed_ingredients() == []
