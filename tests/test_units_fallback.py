"""Tests for the §II-C unit fallback heuristics."""

import pytest

from repro.units.fallback import UnitFallback, scan_for_unit


class TestScanForUnit:
    def test_paper_500g_example(self):
        assert scan_for_unit("500 g flour or 1 cup") == "gram"

    def test_first_unit_wins(self):
        assert scan_for_unit("1 cup or 2 tbsp") == "cup"

    def test_no_unit(self):
        assert scan_for_unit("2 eggs , beaten") is None

    def test_alias_scanned(self):
        assert scan_for_unit("2 tbsp butter") == "tablespoon"


class TestUnitFallback:
    def test_most_frequent_unit(self):
        fb = UnitFallback()
        for _ in range(5):
            fb.observe("garlic", "clove")
        fb.observe("garlic", "teaspoon")
        # Paper: "for garlic, if the unit was not detected, it would
        # most probably be clove".
        assert fb.most_frequent_unit("garlic") == "clove"

    def test_case_insensitive_names(self):
        fb = UnitFallback()
        fb.observe("Garlic", "clove")
        assert fb.most_frequent_unit("garlic") == "clove"

    def test_unseen_returns_none(self):
        assert UnitFallback().most_frequent_unit("x") is None

    def test_plausibility_threshold(self):
        fb = UnitFallback(max_grams=5000.0)
        # "500 cups" of anything fails the threshold.
        assert not fb.plausible(500.0, 236.0)
        assert fb.plausible(2.0, 236.0)
        assert not fb.plausible(0.0, 10.0)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            UnitFallback(max_grams=0.0)

    def test_distribution(self):
        fb = UnitFallback()
        fb.observe("salt", "teaspoon")
        fb.observe("salt", "teaspoon")
        fb.observe("salt", "tablespoon")
        assert fb.unit_distribution("salt") == {"teaspoon": 2, "tablespoon": 1}
        assert fb.observed_ingredients() == ["salt"]
