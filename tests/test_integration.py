"""End-to-end integration tests: pipeline vs ground truth."""

import pytest

from repro import NutritionEstimator
from repro.ner import AveragedPerceptronTagger
from repro.recipedb.phrases import PIROSZHKI_GOLD, PIROSZHKI_PHRASES
from repro.text.tokenize import tokenize


class TestPipelineAgainstTruth:
    def test_per_ingredient_accuracy(self, estimator, small_corpus):
        """Most ingredient lines estimate within 25% of true kcal."""
        good = total = 0
        for recipe in small_corpus:
            result = estimator.estimate_recipe(
                recipe.ingredient_texts, recipe.servings)
            for est, truth in zip(result.ingredients, recipe.ingredients):
                if truth.truth.ndb_no is None:
                    continue  # unmappable by design
                total += 1
                if truth.truth.kcal < 5:
                    good += abs(est.calories - truth.truth.kcal) < 10
                else:
                    good += (abs(est.calories - truth.truth.kcal)
                             <= 0.25 * truth.truth.kcal + 5)
        assert total > 200
        assert good / total > 0.75, f"{good}/{total}"

    def test_unmappable_never_counted(self, estimator, small_corpus):
        for recipe in small_corpus:
            result = estimator.estimate_recipe(
                recipe.ingredient_texts, recipe.servings)
            for est, truth in zip(result.ingredients, recipe.ingredients):
                if truth.truth.ndb_no is None and est.match is not None:
                    # If an unmappable ingredient matched something, the
                    # match must have come from name-word overlap, not
                    # hallucination — it contributes calories, which is
                    # the realistic failure mode; but the canonical
                    # paper example must stay unmatched.
                    assert truth.truth.spec_key != "garam_masala"

    def test_recipe_totals_track_truth(self, estimator, small_corpus):
        """Fully-mapped recipes land near true totals."""
        checked = 0
        for recipe in small_corpus:
            result = estimator.estimate_recipe(
                recipe.ingredient_texts, recipe.servings)
            if result.fraction_fully_mapped < 1.0:
                continue
            checked += 1
            truth = recipe.true_kcal_per_serving
            assert result.per_serving.calories == pytest.approx(
                truth, rel=0.5, abs=120), recipe.title
        assert checked >= 10


class TestTrainedTaggerPipeline:
    def test_trained_ner_on_piroszhki(self, generator):
        phrases = [item.tagged for item in generator.generate_phrases(800)]
        tagger = AveragedPerceptronTagger()
        tagger.train(phrases, epochs=4)
        estimator = NutritionEstimator(tagger=tagger)
        recipe = estimator.estimate_recipe(list(PIROSZHKI_PHRASES), servings=6)
        assert recipe.fraction_name_mapped >= 0.9

    def test_gold_tags_reproduce_table_i(self, estimator):
        """With gold tags, the parser reconstructs Table I exactly."""
        for phrase, gold in zip(PIROSZHKI_PHRASES, PIROSZHKI_GOLD):
            assert tuple(tokenize(phrase)) == gold.tokens, phrase


class TestDeterminism:
    def test_pipeline_is_deterministic(self, small_corpus):
        a = NutritionEstimator()
        b = NutritionEstimator()
        for recipe in small_corpus[:10]:
            ra = a.estimate_recipe(recipe.ingredient_texts, recipe.servings)
            rb = b.estimate_recipe(recipe.ingredient_texts, recipe.servings)
            assert ra.per_serving.calories == rb.per_serving.calories
