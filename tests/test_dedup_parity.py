"""Differential harness: duplicate collapse vs per-occurrence oracle.

Coordinator-side duplicate collapse (ISSUE 10) hash-conses the
corpus's ingredient lines into a distinct-line table with
multiplicities before sharding, estimates each distinct line once,
and fans the results back out per occurrence.  The promise is
**bit-identical** output to the retained per-occurrence oracle
(``REPRO_DEDUP=0`` at the engine, or ``dedup=False`` at the ctor),
which feeds every occurrence through estimation individually:

* weighted ``observe(name, unit, count=n)`` equals ``n`` independent
  observes — counts *and* first-seen insertion order, so every
  ``most_common`` tie-break lands identically (the Hypothesis
  properties below pin this algebraically, across arbitrary shard
  merge orders);
* dead letters for a poisoned distinct line are re-expanded to one
  record per occurrence with corpus-order line numbers, identically
  in both modes;
* durable runs journal the collapsed table, and a crashed deduped
  run resumed with ``--resume`` byte-matches a clean undeduped run's
  report;
* the service tier's responses are byte-identical with the flag
  flipped (the fragment cache serves the same bytes either way).

Every engine comparison is plain dataclass equality over
``RecipeEstimate``/``IngredientEstimate``, which covers parsed
tokens, match, resolution, grams, profile, reason and trace.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.resolution import REASON_ESTIMATOR_ERROR
from repro.pipeline import ShardedCorpusEstimator
from repro.recipedb.corpus import save_recipes_jsonl
from repro.recipedb.generator import GeneratorConfig, RecipeGenerator
from repro.runs import RunManifest, RunMismatchError
from repro.units.fallback import UnitFallback, snapshot_digest

N_RECIPES = 24


@pytest.fixture(scope="module")
def corpus():
    """A duplicate-heavy corpus: every recipe appears twice."""
    recipes = RecipeGenerator(config=GeneratorConfig(seed=5)).generate(
        N_RECIPES
    )
    return recipes + recipes


@pytest.fixture(scope="module")
def oracle_estimates(corpus):
    """The retained per-occurrence oracle, single worker."""
    return ShardedCorpusEstimator(workers=1, dedup=False).estimate_corpus(
        list(corpus)
    )


class TestEngineDifferential:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("chunk_size", [7, 64, 4096])
    def test_dedup_matches_oracle(
        self, corpus, oracle_estimates, workers, chunk_size
    ):
        with ShardedCorpusEstimator(
            workers=workers, chunk_size=chunk_size, dedup=True
        ) as engine:
            assert engine.estimate_corpus(list(corpus)) == oracle_estimates

    @pytest.mark.parametrize("quarantine", [False, True])
    def test_env_toggle_pins_each_mode(
        self, monkeypatch, corpus, oracle_estimates, quarantine
    ):
        monkeypatch.setenv("REPRO_DEDUP", "0")
        engine = ShardedCorpusEstimator(workers=1, quarantine=quarantine)
        assert engine.estimate_corpus(list(corpus)) == oracle_estimates
        assert not engine.last_report.dedup
        monkeypatch.setenv("REPRO_DEDUP", "1")
        engine = ShardedCorpusEstimator(workers=1, quarantine=quarantine)
        assert engine.estimate_corpus(list(corpus)) == oracle_estimates
        assert engine.last_report.dedup

    def test_report_counts_occurrences_and_distincts(self, corpus):
        engine = ShardedCorpusEstimator(workers=1)
        engine.estimate_corpus(list(corpus))
        report = engine.last_report
        total = sum(len(r.ingredient_texts) for r in corpus)
        distinct = len(
            {t for r in corpus for t in r.ingredient_texts}
        )
        assert report.total_lines == total
        assert report.distinct_lines == distinct
        # Doubled corpus: every line occurs at least twice.
        assert report.dedup_ratio >= 2.0
        counters = report.dedup_counters()
        assert counters["total_lines"] == total
        assert counters["distinct_lines"] == distinct
        assert counters["dedup"] is True

    def test_stats_digest_identical_across_modes(self, corpus):
        digests = set()
        for dedup, workers in [(True, 1), (True, 2), (False, 1), (False, 2)]:
            with ShardedCorpusEstimator(
                workers=workers, chunk_size=32, dedup=dedup
            ) as engine:
                engine.estimate_corpus(list(corpus))
                digests.add(engine.last_report.stats_digest)
        assert len(digests) == 1
        assert None not in digests


class TestDeadLetterExpansion:
    """A poisoned distinct line dead-letters every occurrence."""

    @pytest.fixture(scope="class")
    def poisoned_text(self, corpus):
        repeated = Counter(
            t for r in corpus for t in r.ingredient_texts
        )
        # The longest line occurring 2+ times: unique enough to select
        # by substring, repeated enough to exercise the expansion.
        return max(
            (t for t, n in repeated.items() if n >= 2), key=len
        )

    @pytest.mark.parametrize("dedup", [True, False])
    def test_one_letter_per_occurrence_in_corpus_order(
        self, monkeypatch, corpus, poisoned_text, dedup
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS", f"raise@estimate-line:{poisoned_text}"
        )
        engine = ShardedCorpusEstimator(
            workers=1, quarantine=True, dedup=dedup
        )
        estimates = engine.estimate_corpus(list(corpus))
        letters = engine.last_report.dead_letters.records
        flat = [t for r in corpus for t in r.ingredient_texts]
        expected_line_nos = [
            i for i, t in enumerate(flat) if t == poisoned_text
        ]
        assert len(expected_line_nos) >= 2
        assert [letter.line_no for letter in letters] == expected_line_nos
        assert all(letter.source == "estimate" for letter in letters)
        assert all(
            letter.reason == REASON_ESTIMATOR_ERROR for letter in letters
        )
        # The poisoned placeholders surface in every affected recipe.
        for recipe, estimate in zip(corpus, estimates):
            for text, item in zip(recipe.ingredient_texts, (
                estimate.ingredients
            )):
                if text == poisoned_text:
                    assert item.reason == REASON_ESTIMATOR_ERROR

    def test_expansion_is_mode_invariant(
        self, monkeypatch, corpus, poisoned_text
    ):
        monkeypatch.setenv(
            "REPRO_FAULTS", f"raise@estimate-line:{poisoned_text}"
        )
        records = []
        for dedup in (True, False):
            engine = ShardedCorpusEstimator(
                workers=1, quarantine=True, dedup=dedup
            )
            engine.estimate_corpus(list(corpus))
            records.append(engine.last_report.dead_letters.records)
        assert records[0] == records[1]


class TestDurableDedup:
    @pytest.fixture(scope="class")
    def corpus_path(self, tmp_path_factory, corpus):
        path = tmp_path_factory.mktemp("dedup-durable") / "corpus.jsonl"
        save_recipes_jsonl(list(corpus), path)
        return path

    def test_manifest_records_dedup(self, tmp_path, corpus_path):
        for dedup in (True, False):
            run_dir = tmp_path / f"run-{dedup}"
            with ShardedCorpusEstimator(
                workers=2, chunk_size=24, run_dir=run_dir, dedup=dedup
            ) as engine:
                engine.estimate_corpus(str(corpus_path))
            assert RunManifest.load(run_dir).config["dedup"] is dedup

    def test_resume_refuses_flipped_dedup(self, tmp_path, corpus_path):
        run_dir = tmp_path / "run"
        with ShardedCorpusEstimator(
            workers=1, chunk_size=24, run_dir=run_dir, dedup=True
        ) as engine:
            engine.estimate_corpus(str(corpus_path))
        manifest = RunManifest.load(run_dir)
        manifest.status = "running"
        manifest.save(run_dir)
        with pytest.raises(RunMismatchError, match="dedup"):
            ShardedCorpusEstimator(
                workers=1,
                chunk_size=24,
                run_dir=run_dir,
                resume=True,
                dedup=False,
            ).estimate_corpus(str(corpus_path))

    def test_crashed_dedup_resume_matches_clean_oracle_run(
        self, tmp_path, corpus_path, oracle_estimates
    ):
        """Crash a deduped durable run mid-journal, resume it, and
        byte-compare against a clean undeduped run: estimates equal
        the oracle and the dead-letter reports are byte-identical."""
        from repro.deadletter import REPORT_NAME, write_report_jsonl
        from repro.runs import RunJournal

        run_dir = tmp_path / "run"
        with ShardedCorpusEstimator(
            workers=2, chunk_size=24, run_dir=run_dir, dedup=True
        ) as engine:
            full = engine.estimate_corpus(str(corpus_path))
            report = engine.last_report
        assert full == oracle_estimates
        write_report_jsonl(
            run_dir / REPORT_NAME, report.dead_letters, report.run_id
        )
        # Cut the journal mid-run (after the plan and two frames) —
        # the on-disk state a SIGKILL leaves — and resume.
        records = RunJournal(run_dir / "journal.bin").scan().records
        assert len(records) >= 4
        with (run_dir / "journal.bin").open("r+b") as handle:
            handle.truncate(records[3].offset)
        manifest = RunManifest.load(run_dir)
        manifest.status = "running"
        manifest.save(run_dir)
        with ShardedCorpusEstimator(
            workers=2, chunk_size=24, run_dir=run_dir, resume=True
        ) as engine:
            resumed = engine.estimate_corpus(str(corpus_path))
            resumed_report = engine.last_report
        assert resumed == oracle_estimates
        assert resumed_report.resumed

        # Byte-compare the resumed deduped report against a clean
        # undeduped run's report (run ids normalized: they are the
        # only legitimately differing bytes).
        clean_dir = tmp_path / "clean-oracle"
        with ShardedCorpusEstimator(
            workers=2, chunk_size=24, run_dir=clean_dir, dedup=False
        ) as engine:
            engine.estimate_corpus(str(corpus_path))
            clean_report = engine.last_report
        write_report_jsonl(
            run_dir / REPORT_NAME, resumed_report.dead_letters, "run"
        )
        write_report_jsonl(
            clean_dir / REPORT_NAME, clean_report.dead_letters, "run"
        )
        assert (run_dir / REPORT_NAME).read_bytes() == (
            clean_dir / REPORT_NAME
        ).read_bytes()


class TestServiceByteParity:
    def test_responses_byte_identical_with_dedup_flipped(
        self, monkeypatch, corpus
    ):
        from repro.service import codec
        from repro.service.state import ServiceConfig, ServiceState

        state = ServiceState(ServiceConfig(port=0))
        request = codec.BatchRequest(
            recipes=tuple(
                codec.EstimateRequest(
                    ingredients=tuple(r.ingredient_texts),
                    servings=r.servings,
                )
                for r in corpus[:8]
            )
        )
        single = codec.EstimateRequest(
            ingredients=tuple(corpus[0].ingredient_texts) * 2, servings=2
        )
        monkeypatch.setenv("REPRO_DEDUP", "1")
        deduped = (state.estimate_batch(request), state.estimate(single))
        monkeypatch.setenv("REPRO_DEDUP", "0")
        oracle = (state.estimate_batch(request), state.estimate(single))
        assert deduped == oracle


class TestWeightedObserveProperties:
    """S3: the multiplicity algebra behind duplicate collapse."""

    lines = st.lists(
        st.tuples(
            st.sampled_from(["flour", "sugar", "salt", "milk", "egg"]),
            st.sampled_from(["cup", "tsp", "tbsp", "g", "oz"]),
            st.integers(min_value=1, max_value=9),
        ),
        min_size=0,
        max_size=24,
    )

    @given(lines)
    @settings(max_examples=60, deadline=None)
    def test_weighted_observe_equals_n_independent_observes(self, items):
        weighted = UnitFallback()
        repeated = UnitFallback()
        for name, unit, count in items:
            weighted.observe(name, unit, count)
            for _ in range(count):
                repeated.observe(name, unit)
        assert weighted.snapshot() == repeated.snapshot()
        assert snapshot_digest(weighted.snapshot()) == snapshot_digest(
            repeated.snapshot()
        )
        for name, _, _ in items:
            assert weighted.most_frequent_unit(
                name
            ) == repeated.most_frequent_unit(name)

    @given(lines, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_sharded_merge_is_order_independent(self, items, rng):
        """Shard the observations, merge snapshots in a shuffled
        order: identical to the unsharded table as long as shard
        *construction* order is fixed (the engine merges snapshots in
        shard order for exactly this reason) — and counts are equal
        under any merge order."""
        whole = UnitFallback()
        for name, unit, count in items:
            whole.observe(name, unit, count)
        shards = [UnitFallback() for _ in range(3)]
        for i, (name, unit, count) in enumerate(items):
            shards[i % 3].observe(name, unit, count)
        snapshots = [s.snapshot() for s in shards]
        rng.shuffle(snapshots)
        merged = UnitFallback()
        for snapshot in snapshots:
            merged.merge(snapshot)
        # Counts are permutation-invariant even if key order is not.
        assert {
            name: dict(sorted(units.items()))
            for name, units in merged.snapshot().items()
        } == {
            name: dict(sorted(units.items()))
            for name, units in whole.snapshot().items()
        }

    @given(lines)
    @settings(max_examples=60, deadline=None)
    def test_digest_is_insertion_order_sensitive(self, items):
        """The digest deliberately refuses sort_keys: first-seen order
        is part of the table's identity (it breaks most_common ties),
        so two tables with equal counts but different insertion order
        must not share a token."""
        table = UnitFallback()
        for name, unit, count in items:
            table.observe(name, unit, count)
        snapshot = table.snapshot()
        assert snapshot_digest(snapshot) == snapshot_digest(
            json.loads(json.dumps(snapshot))
        )
