"""Tests for stop words and negation rewriting."""

from repro.text.negation import rewrite_negations
from repro.text.stopwords import STOP_WORDS, remove_stop_words


class TestStopWords:
    def test_negation_carriers_absent(self):
        # §II-B(f) depends on "not" surviving stop-word removal.
        for carrier in ("not", "no", "non", "without"):
            assert carrier not in STOP_WORDS

    def test_common_words_present(self):
        for word in ("the", "with", "and", "or", "of"):
            assert word in STOP_WORDS

    def test_removal_preserves_order(self):
        assert remove_stop_words(["butter", "with", "salt"]) == [
            "butter", "salt"]

    def test_removal_case_insensitive(self):
        assert remove_stop_words(["The", "butter"]) == ["butter"]

    def test_empty(self):
        assert remove_stop_words([]) == []


class TestNegationRewriting:
    def test_unsalted(self):
        assert rewrite_negations(["unsalted", "butter"]) == [
            "not", "salted", "butter"]

    def test_without(self):
        assert rewrite_negations(["butter", "without", "salt"]) == [
            "butter", "not", "salt"]

    def test_paper_example_symmetric(self):
        # Paper: phrase and description become "not salt butter" and
        # "butter not salt" — the same word set.
        phrase = rewrite_negations(["unsalted", "butter"])
        description = rewrite_negations(["butter", "without", "salt"])
        assert set(phrase) - {"salted"} <= set(description) | {"salted"}

    def test_nonfat(self):
        assert rewrite_negations(["nonfat", "milk"]) == ["not", "fat", "milk"]

    def test_fat_free_two_tokens(self):
        assert rewrite_negations(["fat", "free", "yogurt"]) == [
            "fat", "not", "yogurt"]

    def test_fatfree_suffix(self):
        assert rewrite_negations(["fatfree"]) == ["fat", "not"]

    def test_sugarless(self):
        assert rewrite_negations(["sugarless", "gum"]) == ["sugar", "not", "gum"]

    def test_union_not_mangled(self):
        # Guard list: "un" prefix only strips before known bases.
        assert rewrite_negations(["union"]) == ["union"]
        assert rewrite_negations(["uncle"]) == ["uncle"]

    def test_nonpareil_not_mangled(self):
        assert rewrite_negations(["nonpareil"]) == ["nonpareil"]

    def test_free_standalone_kept(self):
        # "free" only negates after a known base.
        assert rewrite_negations(["free", "range", "eggs"]) == [
            "free", "range", "eggs"]

    def test_lowercasing(self):
        assert rewrite_negations(["Unsalted"]) == ["not", "salted"]

    def test_no_becomes_not(self):
        assert rewrite_negations(["no", "salt", "added"]) == [
            "not", "salt", "added"]
