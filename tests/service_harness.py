"""Shared plumbing for the serving-tier test suites.

Raw-socket HTTP helpers (the parity and protocol suites compare exact
bytes, so ``http.client``'s parsing would hide what we assert on) and
a subprocess runner for ``repro serve`` — the only honest way to test
``--procs N``, SIGTERM drains and SO_REUSEPORT spread is against real
processes.
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"

_CONTENT_LENGTH = re.compile(rb"content-length:\s*(\d+)", re.IGNORECASE)


class ResponseStream:
    """Reads consecutive HTTP responses off one socket.

    Pipelined responses coalesce into single TCP segments, so bytes
    past one response's ``Content-Length`` belong to the *next*
    response — this keeps them buffered instead of dropping them.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.buf = b""

    def next_response(self, timeout: float = 10.0) -> bytes:
        self.sock.settimeout(timeout)
        while b"\r\n\r\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:  # EOF: surface whatever partial bytes exist
                out, self.buf = self.buf, b""
                return out
            self.buf += chunk
        head, _, rest = self.buf.partition(b"\r\n\r\n")
        match = _CONTENT_LENGTH.search(head)
        length = int(match.group(1)) if match else 0
        while len(rest) < length:
            chunk = self.sock.recv(65536)
            if not chunk:
                break
            rest += chunk
        self.buf = rest[length:]
        return head + b"\r\n\r\n" + rest[:length]


def recv_response(sock: socket.socket, timeout: float = 10.0) -> bytes:
    """Read exactly one HTTP response (headers + Content-Length body).

    One-shot: anything received past the first response is discarded —
    use :class:`ResponseStream` when reading several responses from
    the same socket.
    """
    return ResponseStream(sock).next_response(timeout)


def raw_request(
    host: str, port: int, data: bytes, timeout: float = 10.0
) -> bytes:
    """One connection, one request, one response, close."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(data)
        return recv_response(sock, timeout)


def build_request(
    method: str,
    path: str,
    payload=None,
    *,
    headers: dict[str, str] | None = None,
    body: bytes | None = None,
) -> bytes:
    """Deterministic request bytes (parity needs identical inputs)."""
    if body is None:
        body = b"" if payload is None else json.dumps(payload).encode()
    lines = [f"{method} {path} HTTP/1.1", "Host: test"]
    sent = {k.lower() for k in (headers or {})}
    if body and "content-length" not in sent:
        lines.append(f"Content-Length: {len(body)}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def split_response(raw: bytes) -> tuple[int, str, list[str], bytes]:
    """(status, status_line, header_lines_without_date, body)."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("iso-8859-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = [
        line for line in lines[1:]
        if not line.lower().startswith("date:")
    ]
    return status, lines[0], headers, body


class ServeProcess:
    """A real ``repro serve`` subprocess, discovered via --ready-file.

    Context manager: on exit sends SIGTERM and asserts a clean
    (exit 0) graceful stop unless the test already killed it.
    """

    def __init__(self, tmp_path: Path, *extra_args: str, procs: int = 1):
        self.ready_file = tmp_path / f"ready-{os.getpid()}-{id(self)}.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--procs", str(procs),
                "--ready-file", str(self.ready_file),
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=str(REPO_ROOT),
        )
        self.host = ""
        self.port = 0
        self._wait_ready()

    def _wait_ready(self, timeout_s: float = 60.0) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                out = self.proc.stdout.read().decode(errors="replace")
                raise RuntimeError(
                    f"serve exited {self.proc.returncode} before ready:\n"
                    f"{out}"
                )
            if self.ready_file.exists():
                text = self.ready_file.read_text().strip()
                if text:
                    host, port = text.split()
                    self.host, self.port = host, int(port)
                    return
            time.sleep(0.05)
        raise RuntimeError("serve did not become ready in time")

    def output(self) -> str:
        return self.proc.stdout.read().decode(errors="replace")

    def stop(self, timeout_s: float = 20.0) -> int:
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            return self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:  # pragma: no cover
            self.proc.kill()
            self.proc.wait(timeout=5.0)
            raise

    def __enter__(self) -> "ServeProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        code = self.stop()
        if exc_info[0] is None:
            assert code == 0, f"serve exited {code}"


def get_json(host: str, port: int, path: str, timeout: float = 10.0) -> dict:
    """GET *path* over a fresh connection, decode the JSON body."""
    raw = raw_request(
        host, port, build_request("GET", path), timeout=timeout
    )
    _, _, _, body = split_response(raw)
    return json.loads(body)
