"""Integrity checks over the embedded curated SR subset."""


from repro.eval.tables import TABLE_II_DESCRIPTIONS
from repro.units.normalize import normalize_unit
from repro.usda.nutrients import NUTRIENT_KEYS


class TestDataIntegrity:
    def test_every_paper_table_ii_description_present(self, db):
        present = {f.description for f in db}
        for description in TABLE_II_DESCRIPTIONS:
            assert description in present, description

    def test_table_iii_foods_present(self, db):
        for description in [
            "Lentils, pink or red, raw",
            "Cherries, sour, red, raw",
            "Soup, tomato beef with noodle, canned, condensed",
            "Soup, tomato, canned, condensed",
            "Coriander (cilantro) leaves, raw",
            "Spices, coriander leaf, dried",
            "Tomato products, canned, paste, without salt added",
            "Soup, vegetable with beef broth, canned, condensed",
            "Soup, vegetable broth, ready to serve",
            "Broadbeans (fava beans), mature seeds, raw",
            "Beans, fava, in pod, raw",
            "Spices, pepper, red or cayenne",
            "Spices, pepper, black",
            "Chicken, broilers or fryers, meat and skin and giblets and neck, raw",
            "Fast foods, quesadilla, with chicken",
            "Salad dressing, sesame seed dressing, regular",
            "Seeds, sesame seeds, whole, dried",
            "Babyfood, apples, dices, toddler",
        ]:
            db.by_description(description)  # raises KeyError if absent

    def test_table_iv_butter_portions(self, db):
        butter = db.get("01001")
        portions = {p.unit: (p.amount, p.grams) for p in butter.portions}
        assert portions['pat (1" sq, 1/3" high)'] == (1.0, 5.0)
        assert portions["tbsp"] == (1.0, 14.2)
        assert portions["cup"] == (1.0, 227.0)
        assert portions["stick"] == (1.0, 113.0)

    def test_nutrient_values_physical(self, db):
        for food in db:
            energy = food.nutrients.get("energy_kcal", 0.0)
            assert 0.0 <= energy <= 902.0, food.description  # lard is max
            for key, value in food.nutrients.items():
                assert value >= 0.0, (food.description, key)
            for macro in ("protein_g", "fat_g", "carbohydrate_g"):
                assert food.nutrients.get(macro, 0.0) <= 100.0, food.description

    def test_energy_consistent_with_macros(self, db):
        # Atwater sanity: 4P + 4C + 9F approximates energy within a
        # loose band (fiber, alcohol and rounding blur it).
        for food in db:
            n = food.nutrients
            if "energy_kcal" not in n:
                continue
            atwater = (4 * n.get("protein_g", 0.0)
                       + 4 * n.get("carbohydrate_g", 0.0)
                       + 9 * n.get("fat_g", 0.0))
            energy = n["energy_kcal"]
            if (energy < 25 or food.food_group == "Beverages"
                    or "extract" in food.description.lower()):
                continue  # acetic-acid/alcohol calories, tiny values
            assert atwater >= 0.4 * energy, (food.description, atwater, energy)
            assert atwater <= 2.1 * energy + 30, (food.description, atwater, energy)

    def test_portion_sequences_start_at_one(self, db):
        for food in db:
            if food.portions:
                assert food.portions[0].seq == 1, food.description
                seqs = [p.seq for p in food.portions]
                assert seqs == sorted(seqs), food.description

    def test_portion_grams_positive_and_sane(self, db):
        for food in db:
            for portion in food.portions:
                assert 0 < portion.grams <= 4000, (food.description, portion)

    def test_most_portion_units_normalizable(self, db):
        total = unknown = 0
        for food in db:
            for portion in food.portions:
                total += 1
                if normalize_unit(portion.unit) is None:
                    unknown += 1
        assert total > 600
        assert unknown / total < 0.05, f"{unknown}/{total} units unnormalizable"

    def test_nutrient_keys_canonical(self, db):
        for food in db:
            assert set(food.nutrients) <= set(NUTRIENT_KEYS)

    def test_ndb_numbers_unique_and_wellformed(self, db):
        seen = set()
        for food in db:
            assert food.ndb_no not in seen
            seen.add(food.ndb_no)
            assert food.ndb_no.isdigit() and len(food.ndb_no) == 5
