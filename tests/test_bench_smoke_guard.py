"""Smoke-mode benchmark runs must never overwrite full-mode results.

The committed ``results/BENCH_*.json`` artifacts are the per-revision
performance record quoted in ``docs/performance.md``; CI runs every
benchmark in smoke mode (``REPRO_BENCH_SMOKE=1``) at much smaller
scale.  The regression this file pins: ``write_result`` must divert
smoke output into the quarantined ``results/smoke/`` directory, and
every benchmark must route its artifact through ``write_result``.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHMARKS = REPO_ROOT / "benchmarks"


@pytest.fixture()
def bench_conftest():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", BENCHMARKS / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_conftest", module)
    spec.loader.exec_module(module)
    return module


def test_full_mode_writes_to_results(
    bench_conftest, tmp_path, monkeypatch
):
    monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
    monkeypatch.setattr(bench_conftest, "RESULTS_DIR", tmp_path)
    path = bench_conftest.write_result("BENCH_x.json", "{}")
    assert path == tmp_path / "BENCH_x.json"
    assert path.read_text(encoding="utf-8") == "{}\n"


def test_smoke_mode_is_quarantined(bench_conftest, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
    monkeypatch.setattr(bench_conftest, "RESULTS_DIR", tmp_path)
    (tmp_path / "BENCH_x.json").write_text("FULL", encoding="utf-8")
    path = bench_conftest.write_result("BENCH_x.json", "{}")
    assert path == tmp_path / "smoke" / "BENCH_x.json"
    # The committed full-mode artifact is untouched.
    assert (tmp_path / "BENCH_x.json").read_text(encoding="utf-8") == "FULL"


def test_smoke_flag_is_read_per_call_not_at_import(
    bench_conftest, tmp_path, monkeypatch
):
    """The guard must hold even when the env var changes after import
    (pytest imports conftest once; CI exports the var per step)."""
    monkeypatch.setattr(bench_conftest, "RESULTS_DIR", tmp_path)
    monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
    assert bench_conftest.results_dir() == tmp_path
    monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
    assert bench_conftest.results_dir() == tmp_path / "smoke"


def test_every_benchmark_routes_output_through_write_result():
    """No benchmark may write into results/ behind the guard's back."""
    for bench in sorted(BENCHMARKS.glob("bench_*.py")):
        text = bench.read_text(encoding="utf-8")
        assert "write_result" in text, f"{bench.name} bypasses write_result"
        for needle in ('open("results', "open('results", "RESULTS_DIR /"):
            assert needle not in text, (
                f"{bench.name} hardcodes a results path ({needle!r})"
            )


def test_smoke_results_are_gitignored():
    gitignore = (REPO_ROOT / ".gitignore").read_text(encoding="utf-8")
    assert "results/smoke/" in gitignore.splitlines()
