"""Unit tests for the service layer below the socket.

Covers request validation/normalization (codec), the dispatch path
(routing, caching, typed errors, metrics bookkeeping) and
:class:`ServiceState` endpoint logic — everything that does not need a
live HTTP server.  The live-socket integration suite is
``tests/test_service_http.py``.
"""

import json

import pytest

from repro.core.estimator import NutritionEstimator
from repro.service import codec
from repro.service.errors import (
    MethodNotAllowedError,
    NotFoundError,
    ServiceError,
    ValidationError,
)
from repro.service.handlers import ENDPOINTS, dispatch
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.state import ServiceConfig, ServiceState


@pytest.fixture(scope="module")
def state():
    return ServiceState(ServiceConfig(port=0))


# ----------------------------------------------------------------------
# codec: validation


class TestValidateEstimate:
    def test_minimal(self):
        request = codec.validate_estimate({"ingredients": ["1 tsp salt"]})
        assert request.ingredients == ("1 tsp salt",)
        assert request.servings == 1

    def test_normalizes_whitespace(self):
        request = codec.validate_estimate(
            {"ingredients": ["  1 tsp salt  "], "servings": 2}
        )
        assert request.ingredients == ("1 tsp salt",)

    def test_integer_valued_float_servings(self):
        request = codec.validate_estimate(
            {"ingredients": ["x"], "servings": 4.0}
        )
        assert request.servings == 4

    @pytest.mark.parametrize("payload, field", [
        ([], "(body)"),
        ({}, "(body)"),
        ({"ingredients": "1 tsp salt"}, "ingredients"),
        ({"ingredients": []}, "ingredients"),
        ({"ingredients": [42]}, "ingredients[0]"),
        ({"ingredients": ["x"], "servings": 0}, "servings"),
        ({"ingredients": ["x"], "servings": True}, "servings"),
        ({"ingredients": ["x"], "servings": 2.5}, "servings"),
        ({"ingredients": ["x"], "bogus": 1}, "(body)"),
    ])
    def test_rejects(self, payload, field):
        with pytest.raises(ValidationError) as err:
            codec.validate_estimate(payload)
        assert err.value.field == field
        assert err.value.status == 400

    def test_caps_enforced(self):
        too_many = {"ingredients": ["x"] * (codec.MAX_INGREDIENTS_PER_RECIPE + 1)}
        with pytest.raises(ValidationError):
            codec.validate_estimate(too_many)
        with pytest.raises(ValidationError):
            codec.validate_estimate(
                {"ingredients": ["y" * (codec.MAX_PHRASE_CHARS + 1)]}
            )


class TestValidateBatch:
    def test_nested_field_path(self):
        with pytest.raises(ValidationError) as err:
            codec.validate_batch(
                {"recipes": [{"ingredients": ["ok"]},
                             {"ingredients": ["ok"], "servings": -1}]}
            )
        assert err.value.field == "recipes[1].servings"

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            codec.validate_batch({"recipes": []})


class TestValidateMatchParse:
    def test_match_defaults(self):
        request = codec.validate_match({"name": " butter "})
        assert request.name == "butter"
        assert request.state == "" and request.top == 0

    def test_match_requires_name(self):
        with pytest.raises(ValidationError):
            codec.validate_match({"state": "melted"})

    def test_parse_requires_nonempty_text(self):
        with pytest.raises(ValidationError):
            codec.validate_parse({"text": "   "})


class TestCacheKey:
    def test_equivalent_payloads_share_key(self):
        a = codec.validate_estimate(
            {"ingredients": [" 1 tsp salt "], "servings": 2}
        )
        b = codec.validate_estimate(
            {"servings": 2.0, "ingredients": ["1 tsp salt"]}
        )
        assert codec.cache_key("/v1/estimate", a) == codec.cache_key(
            "/v1/estimate", b
        )

    def test_different_endpoint_different_key(self):
        request = codec.validate_parse({"text": "1 tsp salt"})
        assert codec.cache_key("/v1/parse", request) != codec.cache_key(
            "/v1/other", request
        )


# ----------------------------------------------------------------------
# state endpoints


class TestStateEndpoints:
    def test_estimate_matches_in_process_corpus_protocol(self, state):
        texts = ["2 cups white sugar", "1 tsp salt", "2 cups white sugar"]
        body = json.loads(
            state.estimate(
                codec.EstimateRequest(ingredients=tuple(texts), servings=3)
            )
        )
        reference = NutritionEstimator()
        table = reference.corpus_estimate_table(
            {"2 cups white sugar": 2, "1 tsp salt": 1}
        )
        expected = NutritionEstimator.finish_recipe(
            [table[t] for t in texts], 3
        )
        assert body["per_serving"] == expected.per_serving.values
        assert body["total"] == expected.total.values
        assert [i["status"] for i in body["ingredients"]] == [
            e.status for e in expected.ingredients
        ]

    def test_estimate_is_deterministic_across_requests(self, state):
        request = codec.EstimateRequest(
            ingredients=("3 cloves garlic , minced",), servings=1
        )
        first = state.estimate(request)
        # Interleave other traffic that mutates estimator internals.
        state.estimate(
            codec.EstimateRequest(ingredients=("2 cups flour",), servings=2)
        )
        state.match(codec.MatchRequest("garlic", "", "", "", 3))
        assert state.estimate(request) == first

    def test_batch_equals_estimate_corpus(self, state, small_corpus):
        recipes = small_corpus[:6]
        body = json.loads(
            state.estimate_batch(
                codec.BatchRequest(
                    recipes=tuple(
                        codec.EstimateRequest(
                            ingredients=tuple(r.ingredient_texts),
                            servings=r.servings,
                        )
                        for r in recipes
                    )
                )
            )
        )
        expected = NutritionEstimator().estimate_corpus(list(recipes))
        assert body["count"] == len(recipes)
        for encoded, reference in zip(body["recipes"], expected):
            assert encoded["per_serving"] == reference.per_serving.values
            assert encoded["total"] == reference.total.values

    def test_match_with_candidates(self, state):
        body = state.match(codec.MatchRequest("red lentils", "", "", "", 3))
        assert body["match"]["description"] == "Lentils, pink or red, raw"
        assert len(body["candidates"]) <= 3
        assert body["candidates"][0] == body["match"]

    def test_match_unmatched_is_null(self, state):
        body = state.match(codec.MatchRequest("garam masala", "", "", "", 0))
        assert body["match"] is None

    def test_parse_entities(self, state):
        body = state.parse(codec.ParseRequest("1 small onion , finely chopped"))
        assert body["name"] == "onion"
        assert body["size"] == "small"
        assert "QUANTITY" in body["tags"]

    def test_healthz_shape(self, state):
        body = state.healthz()
        assert body["status"] == "ok"
        assert body["workers"] == 1
        assert body["uptime_s"] >= 0


# ----------------------------------------------------------------------
# dispatch: routing, caching, errors, metrics


class TestDispatch:
    @pytest.fixture()
    def fresh_state(self):
        return ServiceState(ServiceConfig(port=0, cache_cap=8))

    def test_cache_roundtrip_and_metrics(self, fresh_state):
        payload = {"ingredients": ["1 tsp salt"], "servings": 1}
        miss = dispatch(fresh_state, "POST", "/v1/estimate", payload)
        hit = dispatch(fresh_state, "POST", "/v1/estimate", dict(payload))
        assert miss.status == hit.status == 200
        assert not miss.cache_hit and hit.cache_hit
        assert miss.body == hit.body
        snapshot = fresh_state.metrics_snapshot()
        endpoint = snapshot["endpoints"]["/v1/estimate"]
        assert endpoint["requests"] == 2
        assert endpoint["cache_hits"] == 1
        assert endpoint["errors"] == 0
        assert snapshot["response_cache"]["size"] == 1

    def test_normalized_payloads_share_entry(self, fresh_state):
        dispatch(fresh_state, "POST", "/v1/parse", {"text": "1 tsp salt"})
        hit = dispatch(fresh_state, "POST", "/v1/parse", {"text": " 1 tsp salt "})
        assert hit.cache_hit

    def test_validation_error_envelope(self, fresh_state):
        response = dispatch(fresh_state, "POST", "/v1/estimate", {})
        assert response.status == 400
        body = json.loads(response.body)
        assert body["error"]["code"] == "invalid_request"
        assert "field" in body["error"]
        endpoint = fresh_state.metrics_snapshot()["endpoints"]["/v1/estimate"]
        assert endpoint["errors"] == 1

    def test_unknown_path_404(self, fresh_state):
        response = dispatch(fresh_state, "GET", "/v2/estimate", None)
        assert response.status == 404
        assert json.loads(response.body)["error"]["code"] == "not_found"
        assert "(unknown)" in fresh_state.metrics_snapshot()["endpoints"]

    def test_wrong_method_405_lists_allowed(self, fresh_state):
        response = dispatch(fresh_state, "GET", "/v1/match", None)
        assert response.status == 405
        assert json.loads(response.body)["error"]["allowed"] == ["POST"]

    def test_unexpected_exception_becomes_500(self, fresh_state, monkeypatch):
        def boom(_request):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(fresh_state, "parse", boom)
        response = dispatch(fresh_state, "POST", "/v1/parse", {"text": "x"})
        assert response.status == 500
        body = json.loads(response.body)
        assert body["error"]["code"] == "internal_error"
        assert "kaboom" not in response.body.decode()

    def test_cache_eviction_respects_cap(self, fresh_state):
        for i in range(12):
            dispatch(fresh_state, "POST", "/v1/parse", {"text": f"{i} tsp salt"})
        info = fresh_state.cache_info()
        assert info["size"] <= info["cap"] == 8

    def test_every_route_is_covered(self):
        assert ("GET", "/healthz") in ENDPOINTS
        assert ("GET", "/metrics") in ENDPOINTS
        for method, path in ENDPOINTS:
            endpoint = ENDPOINTS[(method, path)]
            # Cacheable routes must validate (the cache key is built
            # from the normalized request).
            assert not endpoint.cacheable or endpoint.validate is not None

    def test_oversized_body_not_cached(self, fresh_state):
        from repro.service.state import MAX_CACHEABLE_BODY_BYTES

        fresh_state.store_response("small", b"x")
        fresh_state.store_response(
            "big", b"y" * (MAX_CACHEABLE_BODY_BYTES + 1)
        )
        assert fresh_state.cached_response("small") == b"x"
        assert fresh_state.cached_response("big") is None


# ----------------------------------------------------------------------
# metrics primitives


class TestMetrics:
    def test_percentile_nearest_rank(self):
        samples = sorted(float(i) for i in range(1, 101))
        # Nearest-rank over indices 0..99: p50 -> index 50, p99 -> 98.
        assert percentile(samples, 0.50) == samples[round(0.50 * 99)]
        assert percentile(samples, 0.99) == samples[round(0.99 * 99)]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile([], 0.5) == 0.0

    def test_observe_and_snapshot(self):
        metrics = ServiceMetrics()
        metrics.observe("/v1/estimate", 0.002)
        metrics.observe("/v1/estimate", 0.004, cache_hit=True)
        metrics.observe("/v1/estimate", 0.010, error=True)
        snapshot = metrics.snapshot()
        endpoint = snapshot["endpoints"]["/v1/estimate"]
        assert endpoint["requests"] == 3
        assert endpoint["cache_hits"] == 1
        assert endpoint["errors"] == 1
        assert endpoint["latency_ms"]["count"] == 3
        assert endpoint["latency_ms"]["p50"] == pytest.approx(4.0)
        assert snapshot["requests_total"] == 3

    def test_reason_counters(self):
        metrics = ServiceMetrics()
        assert metrics.snapshot()["reasons"] == {
            "lines_total": 0,
            "by_reason": {},
        }
        metrics.observe_reasons(["ner-unit", "ner-unit", "bare-count"])
        metrics.observe_reasons(iter(["no-description-match"]))
        reasons = metrics.snapshot()["reasons"]
        assert reasons["lines_total"] == 4
        assert reasons["by_reason"] == {
            "bare-count": 1,
            "ner-unit": 2,
            "no-description-match": 1,
        }


# ----------------------------------------------------------------------
# config validation


class TestServiceConfig:
    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"cache_cap": 0},
        {"port": -1},
        {"port": 70000},
        {"max_body_bytes": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_error_hierarchy(self):
        assert issubclass(ValidationError, ServiceError)
        assert issubclass(NotFoundError, ServiceError)
        assert issubclass(MethodNotAllowedError, ServiceError)
