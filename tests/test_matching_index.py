"""Inverted-index candidate generation: unit tests + exact-parity
property tests against a reference linear scan.

The reference implementation below replicates the seed matcher's
O(|DB|) loop independently (its own query construction, scoring and
tie-breaking), so any divergence introduced by the index or by the
shared candidate/scoring refactor is caught as a field-level mismatch
in the returned :class:`MatchResult`.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.matching.index import linear_candidate_matches
from repro.matching.jaccard import modified_jaccard, vanilla_jaccard
from repro.matching.matcher import DescriptionMatcher, MatcherConfig
from repro.matching.preprocess import (
    canonical_word,
    preprocess_description,
    preprocess_words,
)
from repro.matching.types import MatchResult
from repro.recipedb.ingredients import INGREDIENTS
from repro.text.lemmatizer import WordNetStyleLemmatizer
from repro.text.stopwords import STOP_WORDS
from repro.text.tokenize import word_tokens


# ----------------------------------------------------------------------
# reference implementation (seed semantics, kept independent on purpose)

class ReferenceLinearMatcher:
    """The seed per-query linear scan, reimplemented for verification."""

    def __init__(self, db, config: MatcherConfig):
        self.config = config
        self.lemmatizer = WordNetStyleLemmatizer(db.vocabulary())
        self.foods = list(db)
        self.descriptions = [
            preprocess_description(f.description, self.lemmatizer)
            for f in db
        ]

    def _preprocess(self, text: str) -> list[str]:
        if not self.config.rewrite_negations:
            return [
                canonical_word(w, self.lemmatizer)
                for w in word_tokens(text)
                if w not in STOP_WORDS
            ]
        return preprocess_words(text, self.lemmatizer)

    def _better(self, a: MatchResult, b: MatchResult) -> bool:
        if a.score != b.score:
            return a.score > b.score
        if self.config.priority_tiebreak and a.priority != b.priority:
            return a.priority < b.priority
        if a.raw_added != b.raw_added:
            return a.raw_added
        return a.db_index < b.db_index

    def candidates(
        self, name: str, state: str = "", temperature: str = "",
        dry_fresh: str = "",
    ) -> list[MatchResult]:
        parts = " ".join(p for p in (name, state, temperature, dry_fresh) if p)
        query = frozenset(self._preprocess(parts))
        if not query:
            return []
        raw_pref = self.config.raw_bonus and not state.strip()
        name_words = frozenset(self._preprocess(name))
        out: list[MatchResult] = []
        for index, (food, desc) in enumerate(
            zip(self.foods, self.descriptions)
        ):
            matched = query & desc.words
            if not matched:
                continue
            if name_words and not (matched & name_words):
                continue
            if self.config.use_modified_jaccard:
                score = modified_jaccard(query, desc.words)
            else:
                score = vanilla_jaccard(query, desc.words)
            if score < self.config.min_score:
                continue
            out.append(MatchResult(
                food=food,
                score=score,
                priority=sum(desc.term_priority[w] for w in matched)
                / len(matched),
                db_index=index,
                query_words=query,
                matched_words=frozenset(matched),
                raw_added=raw_pref and desc.has_raw,
            ))
        return out

    def match(self, name, state="", temperature="", dry_fresh=""):
        best = None
        for cand in self.candidates(name, state, temperature, dry_fresh):
            if best is None or self._better(cand, best):
                best = cand
        return best

    def top_matches(self, name, state="", temperature="", dry_fresh="",
                    k=5):
        cands = self.candidates(name, state, temperature, dry_fresh)
        if self.config.priority_tiebreak:
            def key(r):
                return (-r.score, r.priority, not r.raw_added, r.db_index)
        else:
            def key(r):
                return (-r.score, not r.raw_added, r.db_index)
        cands.sort(key=key)
        return cands[:k]


#: All 16 combinations of the four MatcherConfig heuristic switches.
ALL_CONFIGS = [
    MatcherConfig(
        use_modified_jaccard=mj,
        rewrite_negations=neg,
        raw_bonus=raw,
        priority_tiebreak=prio,
    )
    for mj, neg, raw, prio in itertools.product((True, False), repeat=4)
]

_NAMES = sorted({name for spec in INGREDIENTS for name in spec.names}) + [
    "unsalted butter", "fat free yogurt", "skim milk", "raw", "not",
    "egg whites", "white sugar free", "apple banana cherry", "",
    "the of and",
]
_STATES = ["", "chopped", "ground", "diced", "fresh", "free",
           "rinsed and drained", "patted dry and quartered"]
_TEMPS = ["", "cold", "warm"]
_DF = ["", "dried", "fresh"]


@pytest.fixture(scope="module")
def pairs(db):
    """(indexed matcher, reference linear matcher) per configuration."""
    return [
        (DescriptionMatcher(db, config), ReferenceLinearMatcher(db, config))
        for config in ALL_CONFIGS
    ]


class TestIndexUnit:
    def test_sizes(self, matcher, db):
        index = matcher.index
        assert len(index) == len(db)
        assert index.vocabulary_size > 100

    def test_postings_sorted_and_complete(self, matcher):
        index = matcher.index
        for i, desc in enumerate(matcher.descriptions):
            for word in desc.words:
                assert i in index.postings(word)
        salt = index.postings("salt")
        assert list(salt) == sorted(salt)

    def test_unknown_word_empty_postings(self, matcher):
        assert matcher.index.postings("xyzzy") == ()

    def test_word_count_and_raw_flags(self, matcher):
        index = matcher.index
        for i, desc in enumerate(matcher.descriptions):
            assert index.word_count(i) == len(desc.words)
            assert index.has_raw(i) == desc.has_raw

    def test_candidate_matches_equals_linear(self, matcher):
        descs = matcher.descriptions
        index = matcher.index
        for query, required in [
            (frozenset({"butter", "salt"}), None),
            (frozenset({"butter", "salt"}), frozenset({"butter"})),
            (frozenset({"apple", "raw", "skin"}), frozenset({"apple"})),
            (frozenset({"diced"}), frozenset({"bacon"})),
            (frozenset(), None),
            (frozenset({"xyzzy"}), None),
        ]:
            fast = index.candidate_matches(query, required=required)
            slow = linear_candidate_matches(descs, query, required=required)
            assert {i: sorted(ws) for i, ws in fast.items()} == \
                   {i: sorted(ws) for i, ws in slow.items()}

    def test_required_word_outside_query_filters(self, matcher):
        # A required word that is not in the query can never be matched,
        # so no candidate survives (mirrors the seed name-word rule).
        out = matcher.index.candidate_matches(
            frozenset({"diced"}), required=frozenset({"bacon"})
        )
        assert out == {}


class TestExactParityWithLinearScan:
    """The acceptance property: bit-identical MatchResults."""

    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=st.sampled_from(_NAMES), state=st.sampled_from(_STATES),
           temperature=st.sampled_from(_TEMPS), dry_fresh=st.sampled_from(_DF))
    def test_match_identical_across_all_configs(
        self, pairs, name, state, temperature, dry_fresh
    ):
        for indexed, reference in pairs:
            got = indexed.match(name, state, temperature, dry_fresh)
            want = reference.match(name, state, temperature, dry_fresh)
            if want is None:
                assert got is None, (indexed.config, name, state)
            else:
                # Frozen-dataclass equality covers every field: food,
                # score, priority, db_index, query/matched words, raw.
                assert got == want, (indexed.config, name, state)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=st.sampled_from(_NAMES), state=st.sampled_from(_STATES),
           k=st.integers(min_value=1, max_value=8))
    def test_top_matches_identical_across_all_configs(
        self, pairs, name, state, k
    ):
        for indexed, reference in pairs:
            got = indexed.top_matches(name, state, k=k)
            want = reference.top_matches(name, state, k=k)
            assert got == want, (indexed.config, name, state, k)

    def test_paper_examples_survive_indexing(self, matcher):
        # Spot anchors on top of the property: the §II-B worked
        # examples must keep their winners under the indexed path.
        for name, expected in [
            ("unsalted butter", "Butter, without salt"),
            ("apple", "Apples, raw, with skin"),
            ("egg whites", "Egg, white, raw, fresh"),
        ]:
            assert matcher.match(name).description == expected


class TestBatchMatch:
    def test_match_many_mixed_query_shapes(self, matcher):
        results = matcher.match_many([
            "red lentils",
            ("coriander", "ground"),
            ("chicken with giblets", "patted dry and quartered"),
            "garam masala",
            ("butter", "", "", ""),
        ])
        assert [r.description if r else None for r in results] == [
            "Lentils, pink or red, raw",
            "Coriander (cilantro) leaves, raw",
            "Chicken, broilers or fryers, meat and skin and giblets "
            "and neck, raw",
            None,
            "Butter, salted",
        ]

    def test_match_many_agrees_with_match(self, matcher):
        queries = [("egg", ""), ("skim milk", ""), ("apple", "diced")]
        assert matcher.match_many(queries) == [
            matcher.match(n, s) for n, s in queries
        ]

    def test_clear_cache_preserves_results(self, db):
        fresh = DescriptionMatcher(db)
        first = fresh.match("butter")
        fresh.clear_cache()
        second = fresh.match("butter")
        assert first == second and first is not second
