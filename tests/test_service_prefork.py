"""Lifecycle tests for ``repro serve --procs N`` pre-fork workers.

Everything here runs against real ``repro serve`` subprocesses
(via :class:`service_harness.ServeProcess`) because the properties
under test — ``SO_REUSEPORT`` connection spread, SIGTERM drain
ordering, sibling survival after a SIGKILL — only exist between
actual processes.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from service_harness import (
    ServeProcess,
    build_request,
    get_json,
    raw_request,
)

SLOW = "sleep@service-estimate:*:0.4"


def collect_worker_views(
    host: str,
    port: int,
    *,
    want: int = 2,
    attempts: int = 300,
) -> dict[int, dict]:
    """``/healthz`` over fresh connections until *want* workers answer.

    The kernel hashes each new connection's 4-tuple across the
    ``SO_REUSEPORT`` listeners, so distinct source ports eventually
    reach every worker.
    """
    views: dict[int, dict] = {}
    for _ in range(attempts):
        try:
            body = get_json(host, port, "/healthz")
        except (ConnectionError, OSError):
            # A probe can race a worker being killed/respawned.
            time.sleep(0.02)
            continue
        views[body["worker_id"]] = body
        if len(views) >= want:
            break
    return views


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    with ServeProcess(
        tmp_path_factory.mktemp("prefork"), procs=2
    ) as proc:
        yield proc


class TestReusePortSpread:
    def test_connections_reach_every_worker(self, cluster):
        views = collect_worker_views(cluster.host, cluster.port)
        assert set(views) == {0, 1}, f"saw workers {sorted(views)}"
        pids = {body["pid"] for body in views.values()}
        assert len(pids) == 2  # two real processes, not one relabeled
        for body in views.values():
            assert body["status"] == "ok"
            assert body["procs"] == 2

    def test_every_worker_serves_identical_estimates(self, cluster):
        # Same request to both workers (fresh connections until both
        # pids answered) — bodies must be byte-identical because every
        # worker builds the same spec.
        request = build_request("POST", "/v1/estimate", {
            "ingredients": ["2 cups flour", "1 cup milk"],
            "servings": 2,
        })
        by_worker: dict[int, bytes] = {}
        for _ in range(300):
            raw = raw_request(cluster.host, cluster.port, request)
            head, _, body = raw.partition(b"\r\n\r\n")
            worker_id = get_json(cluster.host, cluster.port,
                                 "/healthz")["worker_id"]
            assert head.startswith(b"HTTP/1.1 200 ")
            by_worker.setdefault(worker_id, body)
            if len(by_worker) == 2:
                break
        # The healthz probe does not always land on the worker that
        # served the estimate, but across 300 rounds both estimate
        # bodies are sampled; all observed bodies must agree.
        assert len(set(by_worker.values())) == 1


class TestMetricsAggregation:
    def test_per_worker_metrics_aggregate_across_procs(self, cluster):
        probes = 40
        for _ in range(probes):
            get_json(cluster.host, cluster.port, "/healthz")
        # Scrape /metrics until both workers' snapshots are in hand.
        snapshots: dict[int, dict] = {}
        for _ in range(300):
            snap = get_json(cluster.host, cluster.port, "/metrics")
            snapshots[snap["server"]["worker_id"]] = snap
            if len(snapshots) == 2:
                break
        assert set(snapshots) == {0, 1}
        pids = {s["server"]["pid"] for s in snapshots.values()}
        assert len(pids) == 2
        for snap in snapshots.values():
            assert snap["server"]["procs"] == 2
            assert "connections" in snap
        # The harness-side aggregation the bench tooling relies on:
        # per-worker counters sum to cluster totals.  Every probe hit
        # exactly one worker, so the summed request count covers at
        # least all of them.
        total = sum(
            s["requests_total"] for s in snapshots.values()
        )
        opened = sum(
            s["connections"]["opened"] for s in snapshots.values()
        )
        assert total >= probes
        assert opened >= probes


class TestGracefulShutdown:
    def test_sigterm_drains_inflight_requests(
        self, tmp_path, monkeypatch
    ):
        # Workers inherit the parent's environment, so the fault plan
        # slows every estimation by 0.4 s — long enough for SIGTERM to
        # land while requests are in flight.
        monkeypatch.setenv("REPRO_FAULTS", SLOW)
        results = []

        def fire(host, port, n):
            request = build_request("POST", "/v1/estimate", {
                "ingredients": [f"{n} cups flour"], "servings": 1,
            })
            raw = raw_request(host, port, request, timeout=30)
            results.append(raw)

        with ServeProcess(tmp_path, procs=2) as proc:
            threads = [
                threading.Thread(
                    target=fire, args=(proc.host, proc.port, n)
                )
                for n in range(1, 4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)  # requests reach the workers
            proc.proc.terminate()
            for thread in threads:
                thread.join(timeout=30)
            code = proc.proc.wait(timeout=30)
            assert code == 0
            # Every in-flight request completed during the drain.
            assert len(results) == 3
            for raw in results:
                assert raw.startswith(b"HTTP/1.1 200 "), raw[:80]
                body = json.loads(raw.partition(b"\r\n\r\n")[2])
                assert "per_serving" in body
            assert "repro serve stopped" in proc.output()


def healthz_retrying(host: str, port: int) -> dict:
    """``/healthz`` tolerating resets: connections racing a freshly
    SIGKILLed worker's listener teardown can be refused or reset."""
    last: Exception | None = None
    for _ in range(50):
        try:
            return get_json(host, port, "/healthz")
        except (ConnectionError, OSError) as exc:
            last = exc
            time.sleep(0.05)
    raise AssertionError(f"healthz never recovered: {last}")


class TestWorkerCrash:
    def test_killed_worker_does_not_take_down_siblings(self, tmp_path):
        with ServeProcess(tmp_path, procs=2) as proc:
            views = collect_worker_views(proc.host, proc.port)
            assert set(views) == {0, 1}
            original_pids = {
                body["worker_id"]: body["pid"]
                for body in views.values()
            }
            os.kill(original_pids[0], signal.SIGKILL)
            # The sibling keeps answering throughout.
            for _ in range(10):
                body = healthz_retrying(proc.host, proc.port)
                assert body["status"] == "ok"
            # The supervisor respawns worker 0 under a fresh pid.
            deadline = time.monotonic() + 30.0
            respawned = None
            while time.monotonic() < deadline:
                views = collect_worker_views(proc.host, proc.port)
                candidate = views.get(0)
                if (
                    candidate is not None
                    and candidate["pid"] != original_pids[0]
                ):
                    respawned = candidate
                    break
                time.sleep(0.2)
            assert respawned is not None, "worker 0 never respawned"
            assert set(views) == {0, 1}
            assert views[1]["pid"] == original_pids[1]  # sibling kept
