"""The durable-run substrate: manifests, journal, run store (repro.runs).

These are the unit-level pins under ``tests/test_durable_resume.py``'s
end-to-end crash/resume suite: frame format round-trips, torn-tail
scanning stops exactly at the first invalid byte, manifests bind and
refuse with typed errors, and the dead-letter report is stable and
self-identifying.
"""

from __future__ import annotations

import json

import pytest

from repro.deadletter import DeadLetterLog, report_lines, write_report_jsonl
from repro.runs import (
    DurableRun,
    RunDirectoryError,
    RunJournal,
    RunJournalError,
    RunManifest,
    RunManifestError,
    RunMismatchError,
    corpus_identity,
    is_run_dir,
    iter_run_dirs,
    mark_interrupted,
    new_run_id,
    run_summary,
)
from repro.runs.journal import (
    FRAME_HEADER_SIZE,
    KIND_COLLECT,
    KIND_PLAN,
    MAGIC,
)
from repro.runs.manifest import PREFIX_SAMPLE_BYTES, STATUS_INTERRUPTED


def make_manifest(**overrides) -> RunManifest:
    base = dict(
        run_id="run-test-0001",
        created_at="2026-08-07T00:00:00Z",
        repro_version="1.1.0",
        corpus={
            "path": "corpus.jsonl",
            "bytes": 100,
            "prefix_bytes": 100,
            "prefix_sha256": "ab" * 32,
        },
        config={
            "chunk_size": 64,
            "quarantine": True,
            "max_grams": 5000.0,
            "workers": 2,
        },
        database={"fingerprint": "cd" * 32, "artifact_path": None},
    )
    base.update(overrides)
    return RunManifest(**base)


class TestRunId:
    def test_ids_are_unique_and_prefixed(self):
        ids = {new_run_id() for _ in range(50)}
        assert len(ids) == 50
        assert all(i.startswith("run-") for i in ids)


class TestCorpusIdentity:
    def test_identity_fields(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_bytes(b"x" * 1000)
        ident = corpus_identity(path)
        assert ident["bytes"] == 1000
        assert ident["prefix_bytes"] == 1000
        assert ident["path"] == str(path)
        assert len(ident["prefix_sha256"]) == 64

    def test_prefix_sampling_caps_large_files(self, tmp_path):
        path = tmp_path / "big.jsonl"
        path.write_bytes(b"y" * (PREFIX_SAMPLE_BYTES + 4096))
        ident = corpus_identity(path)
        assert ident["bytes"] == PREFIX_SAMPLE_BYTES + 4096
        assert ident["prefix_bytes"] == PREFIX_SAMPLE_BYTES

    def test_content_change_changes_hash(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_bytes(b"same length AAA")
        b.write_bytes(b"same length BBB")
        assert (
            corpus_identity(a)["prefix_sha256"]
            != corpus_identity(b)["prefix_sha256"]
        )


class TestManifest:
    def test_save_load_round_trip(self, tmp_path):
        manifest = make_manifest()
        manifest.save(tmp_path)
        loaded = RunManifest.load(tmp_path)
        assert loaded.to_dict() == manifest.to_dict()

    def test_load_missing_is_typed(self, tmp_path):
        with pytest.raises(RunManifestError, match="not a run directory"):
            RunManifest.load(tmp_path)

    def test_load_unparsable_is_typed(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope")
        with pytest.raises(RunManifestError, match="does not parse"):
            RunManifest.load(tmp_path)

    def test_load_missing_fields_is_typed(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"run_id": "run-x"}')
        with pytest.raises(RunManifestError, match="missing required"):
            RunManifest.load(tmp_path)

    def test_verify_corpus_accepts_moved_file(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_bytes(b"corpus content here")
        manifest = make_manifest(corpus=corpus_identity(path))
        moved = tmp_path / "renamed.jsonl"
        path.rename(moved)
        manifest.verify_corpus(moved)  # path is advisory, not binding

    def test_verify_corpus_refuses_changed_content(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_bytes(b"original")
        manifest = make_manifest(corpus=corpus_identity(path))
        path.write_bytes(b"changed!")
        with pytest.raises(RunMismatchError, match="cannot resume"):
            manifest.verify_corpus(path)

    @pytest.mark.parametrize(
        ("kwargs", "field"),
        [
            (dict(chunk_size=65), "chunk_size"),
            (dict(quarantine=False), "quarantine"),
            (dict(max_grams=100.0), "max_grams"),
            (
                dict(database_fingerprint="ee" * 32),
                "database fingerprint",
            ),
        ],
    )
    def test_verify_config_refuses_each_field(self, kwargs, field):
        manifest = make_manifest()
        good = dict(
            chunk_size=64,
            quarantine=True,
            max_grams=5000.0,
            database_fingerprint="cd" * 32,
        )
        manifest.verify_config(**good)  # baseline passes
        with pytest.raises(RunMismatchError, match=field):
            manifest.verify_config(**{**good, **kwargs})


class TestJournal:
    def test_append_scan_round_trip(self, tmp_path):
        journal = RunJournal(tmp_path / "j.bin")
        journal.create()
        journal.append(KIND_PLAN, {"n_chunks": 2})
        journal.append(KIND_COLLECT, {"chunk": 0, "wire": b"\x00\x01"})
        journal.append(KIND_COLLECT, {"chunk": 1, "wire": b""})
        journal.close()
        scanned = journal.scan()
        assert [r.kind for r in scanned.records] == [
            KIND_PLAN, KIND_COLLECT, KIND_COLLECT,
        ]
        assert scanned.records[1].payload == {"chunk": 0, "wire": b"\x00\x01"}
        assert scanned.torn_bytes == 0
        assert scanned.valid_bytes == (tmp_path / "j.bin").stat().st_size

    def test_missing_file_scans_empty(self, tmp_path):
        scanned = RunJournal(tmp_path / "absent.bin").scan()
        assert scanned == ([], 0, 0)

    @pytest.mark.parametrize(
        "tail",
        [
            b"\x01",  # lone stray byte
            MAGIC,  # short header
            MAGIC + b"\x02" + (999).to_bytes(8, "big") + b"\x00" * 32,
            # header whose payload never arrived ^
            b"\xff" * 60,  # bad magic, plausible length
        ],
    )
    def test_scan_stops_at_torn_tail(self, tmp_path, tail):
        path = tmp_path / "j.bin"
        journal = RunJournal(path)
        journal.create()
        journal.append(KIND_PLAN, {"n_chunks": 1})
        journal.append(KIND_COLLECT, {"chunk": 0})
        journal.close()
        good = path.stat().st_size
        with path.open("ab") as handle:
            handle.write(tail)
        scanned = journal.scan()
        assert len(scanned.records) == 2
        assert scanned.valid_bytes == good
        assert scanned.torn_bytes == len(tail)

    def test_corrupted_digest_invalidates_frame(self, tmp_path):
        path = tmp_path / "j.bin"
        journal = RunJournal(path)
        journal.create()
        journal.append(KIND_PLAN, {"n_chunks": 1})
        journal.append(KIND_COLLECT, {"chunk": 0})
        journal.close()
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte of the last frame
        path.write_bytes(bytes(blob))
        scanned = journal.scan()
        assert [r.kind for r in scanned.records] == [KIND_PLAN]
        assert scanned.torn_bytes > FRAME_HEADER_SIZE

    def test_open_for_append_truncates_and_continues(self, tmp_path):
        path = tmp_path / "j.bin"
        journal = RunJournal(path)
        journal.create()
        journal.append(KIND_PLAN, {"n_chunks": 2})
        journal.close()
        with path.open("ab") as handle:
            handle.write(b"torn-half-frame")
        reopened = RunJournal(path)
        scanned = reopened.open_for_append()
        assert scanned.torn_bytes == len(b"torn-half-frame")
        reopened.append(KIND_COLLECT, {"chunk": 0})
        reopened.close()
        final = reopened.scan()
        assert [r.kind for r in final.records] == [KIND_PLAN, KIND_COLLECT]
        assert final.torn_bytes == 0

    def test_append_requires_open(self, tmp_path):
        journal = RunJournal(tmp_path / "j.bin")
        with pytest.raises(RuntimeError, match="not open"):
            journal.append(KIND_PLAN, {})


class TestDurableRunStore:
    def test_create_refuses_existing_run(self, tmp_path):
        run = DurableRun.create(tmp_path / "r", make_manifest())
        run.close()
        with pytest.raises(RunDirectoryError, match="already contains"):
            DurableRun.create(tmp_path / "r", make_manifest())

    def test_open_absorbs_journal(self, tmp_path):
        run = DurableRun.create(tmp_path / "r", make_manifest())
        run.begin(n_chunks=2, distinct_lines=100, chunk_size=64)
        run.record_collect(0, b"wire0", {"sugar": {"cup": 3}}, [])
        run.close()
        reopened = DurableRun.open(tmp_path / "r")
        assert reopened.resumed
        assert reopened.plan == {
            "n_chunks": 2, "distinct_lines": 100, "chunk_size": 64,
        }
        assert set(reopened.collect) == {0}
        wire, snapshot, letters = reopened.collect[0]
        assert wire == b"wire0"
        assert snapshot == {"sugar": {"cup": 3}}
        assert letters == []
        assert not reopened.complete
        reopened.close()

    def test_begin_refuses_diverged_plan(self, tmp_path):
        run = DurableRun.create(tmp_path / "r", make_manifest())
        run.begin(n_chunks=2, distinct_lines=100, chunk_size=64)
        run.close()
        reopened = DurableRun.open(tmp_path / "r")
        with pytest.raises(RunJournalError, match="does not match"):
            reopened.begin(n_chunks=3, distinct_lines=130, chunk_size=64)
        reopened.close()

    def test_complete_marks_manifest(self, tmp_path):
        run = DurableRun.create(tmp_path / "r", make_manifest())
        run.begin(n_chunks=0, distinct_lines=0, chunk_size=64)
        run.record_complete({"retries": 0})
        run.close()
        assert RunManifest.load(tmp_path / "r").status == "completed"
        assert DurableRun.open(tmp_path / "r").complete

    def test_mark_interrupted(self, tmp_path):
        run = DurableRun.create(tmp_path / "r", make_manifest())
        run.close()
        mark_interrupted(tmp_path / "r")
        assert RunManifest.load(tmp_path / "r").status == STATUS_INTERRUPTED

    def test_mark_interrupted_keeps_completed(self, tmp_path):
        run = DurableRun.create(tmp_path / "r", make_manifest())
        run.record_complete({})
        run.close()
        mark_interrupted(tmp_path / "r")
        assert RunManifest.load(tmp_path / "r").status == "completed"


class TestInspection:
    def test_iter_run_dirs_sorted(self, tmp_path):
        for name in ("run-b", "run-a", "not-a-run"):
            path = tmp_path / name
            path.mkdir()
            if name.startswith("run-"):
                make_manifest(run_id=name).save(path)
        found = iter_run_dirs(tmp_path)
        assert [p.name for p in found] == ["run-a", "run-b"]
        assert iter_run_dirs(tmp_path / "run-a") == [tmp_path / "run-a"]
        assert is_run_dir(tmp_path / "run-a")
        assert not is_run_dir(tmp_path / "not-a-run")

    def test_iter_run_dirs_missing_root_is_typed(self, tmp_path):
        with pytest.raises(RunDirectoryError, match="not a directory"):
            iter_run_dirs(tmp_path / "absent")

    def test_run_summary_shape(self, tmp_path):
        run = DurableRun.create(tmp_path / "r", make_manifest())
        run.begin(n_chunks=2, distinct_lines=100, chunk_size=64)
        run.record_collect(0, b"w", {}, [])
        run.close()
        with (tmp_path / "r" / "journal.bin").open("ab") as handle:
            handle.write(b"torn")
        summary = run_summary(tmp_path / "r")
        assert summary["run_id"] == "run-test-0001"
        assert summary["status"] == "running"
        assert summary["journal"]["planned_chunks"] == 2
        assert summary["journal"]["records"]["collect"] == 1
        assert summary["journal"]["torn_bytes"] == 4
        assert summary["journal"]["complete"] is False
        assert summary["dead_letters"] is None
        json.dumps(summary)  # must stay JSON-serializable for `runs show`


class TestDeadLetterReport:
    def make_log(self) -> DeadLetterLog:
        log = DeadLetterLog()
        log.add("estimate", 7, "zzz line", "estimator-error", "boom")
        log.add("ingest", 3, "{bad json", "malformed-json")
        log.add("estimate", 2, "aaa line", "estimator-error")
        return log

    def test_lines_are_sorted_not_arrival_ordered(self):
        lines = report_lines(self.make_log(), "run-x")
        keys = [
            (json.loads(line)["source"], json.loads(line)["line_no"])
            for line in lines
        ]
        assert keys == [("estimate", 2), ("estimate", 7), ("ingest", 3)]

    def test_every_line_stamped_with_run_id(self):
        for line in report_lines(self.make_log(), "run-y"):
            assert json.loads(line)["run_id"] == "run-y"

    def test_shuffled_log_writes_identical_report(self, tmp_path):
        log = self.make_log()
        shuffled = DeadLetterLog()
        shuffled.extend(list(reversed(list(log))))
        a = write_report_jsonl(tmp_path / "a.jsonl", log, "run-z")
        b = write_report_jsonl(tmp_path / "b.jsonl", shuffled, "run-z")
        assert a.read_bytes() == b.read_bytes()

    def test_empty_log_writes_empty_file(self, tmp_path):
        path = write_report_jsonl(
            tmp_path / "empty.jsonl", DeadLetterLog(), "run-e"
        )
        assert path.read_bytes() == b""
