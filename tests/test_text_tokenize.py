"""Tests for repro.text.tokenize."""

from hypothesis import given, strategies as st

from repro.text.tokenize import normalize_unicode, tokenize, word_tokens


class TestNormalizeUnicode:
    def test_vulgar_fraction(self):
        assert normalize_unicode("½ cup") == "1/2 cup"

    def test_mixed_number_gets_space(self):
        assert normalize_unicode("2½ cups") == "2 1/2 cups"

    def test_fraction_slash(self):
        assert normalize_unicode("1⁄2") == "1/2"

    def test_plain_text_unchanged(self):
        assert normalize_unicode("1 small onion") == "1 small onion"

    def test_all_fraction_glyphs(self):
        for glyph, expected in [("¼", "1/4"), ("¾", "3/4"), ("⅓", "1/3"),
                                ("⅔", "2/3"), ("⅛", "1/8"), ("⅝", "5/8")]:
            assert normalize_unicode(glyph) == expected


class TestTokenize:
    def test_simple_phrase(self):
        assert tokenize("1 small onion , finely chopped") == [
            "1", "small", "onion", ",", "finely", "chopped"]

    def test_fraction_kept_whole(self):
        assert tokenize("1/2 lb beef") == ["1/2", "lb", "beef"]

    def test_spaced_fraction_collapsed(self):
        assert tokenize("1 / 2 cup") == ["1/2", "cup"]

    def test_decimal(self):
        assert tokenize("2.5 cups") == ["2.5", "cups"]

    def test_hyphenated_word_kept(self):
        assert tokenize("1 hard-cooked egg") == ["1", "hard-cooked", "egg"]

    def test_unicode_mixed_number(self):
        assert tokenize("2½ cups all-purpose flour") == [
            "2", "1/2", "cups", "all-purpose", "flour"]

    def test_comma_glued(self):
        assert tokenize("black pepper,minced") == [
            "black", "pepper", ",", "minced"]

    def test_parenthetical(self):
        assert tokenize('pat (1" sq, 1/3" high)') == [
            "pat", "(", "1", '"', "sq", ",", "1/3", '"', "high", ")"]

    def test_empty(self):
        assert tokenize("") == []

    def test_apostrophe_word(self):
        assert tokenize("confectioners' sugar") == [
            "confectioners", "'", "sugar"]


class TestWordTokens:
    def test_drops_numbers_and_punct(self):
        assert word_tokens("1/2 cup low-fat sour cream") == [
            "cup", "low", "fat", "sour", "cream"]

    def test_lowercases(self):
        assert word_tokens("Butter, SALTED") == ["butter", "salted"]

    def test_splits_hyphens(self):
        assert word_tokens("all-purpose flour") == ["all", "purpose", "flour"]

    @given(st.text(max_size=80))
    def test_never_crashes_and_alpha_only(self, text):
        for word in word_tokens(text):
            assert word == word.lower()
            assert any(c.isalpha() for c in word)

    @given(st.text(alphabet="0123456789/ .,-", max_size=40))
    def test_numeric_text_yields_no_words(self, text):
        assert word_tokens(text) == []
