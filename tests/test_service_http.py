"""Integration tests driving a live ``repro.service`` server.

The event-loop :class:`NutritionService` is bound to an OS-assigned
port and exercised over a socket with ``http.client`` — the same path
external consumers take.  The headline assertion is the service parity
guarantee: ``/v1/estimate`` answers with **byte-identical** profiles
to the in-process estimator's corpus protocol for the same recipe,
across a generated corpus (ISSUE 3 acceptance criterion).

:class:`TestServerMatrix` extends that guarantee across server
implementations (ISSUE 8): every endpoint and every error-envelope
case is replayed against the seed threading server, the in-process
event-loop server, and real ``repro serve`` subprocesses at
``--procs 1`` and ``--procs 2``, asserting byte-identical bodies and
status/header parity (``Date`` excluded) — the threading server is
the recorded wire contract the event loop must reproduce.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro import NutritionEstimator
from repro.service import (
    NutritionService,
    ServiceConfig,
    ThreadingNutritionService,
)
from service_harness import (
    ServeProcess,
    build_request,
    raw_request,
    split_response,
)


@pytest.fixture(scope="module")
def service():
    with NutritionService(ServiceConfig(port=0, cache_cap=256)) as svc:
        yield svc


@pytest.fixture()
def conn(service):
    connection = http.client.HTTPConnection(
        service.host, service.port, timeout=30
    )
    yield connection
    connection.close()


def call(conn, method: str, path: str, payload=None):
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body)
    response = conn.getresponse()
    raw = response.read()
    return response, json.loads(raw)


class TestIntrospection:
    def test_healthz(self, conn):
        response, body = call(conn, "GET", "/healthz")
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/json"
        assert body["status"] == "ok"

    def test_metrics_schema(self, conn, service):
        call(conn, "POST", "/v1/parse", {"text": "1 tsp salt"})
        response, body = call(conn, "GET", "/metrics")
        assert response.status == 200
        for key in ("uptime_s", "requests_total", "errors_total",
                    "cache_hits_total", "endpoints", "response_cache"):
            assert key in body
        endpoint = body["endpoints"]["/v1/parse"]
        for key in ("requests", "errors", "cache_hits", "cache_hit_rate",
                    "latency_ms"):
            assert key in endpoint
        for key in ("count", "p50", "p95", "p99", "max"):
            assert key in endpoint["latency_ms"]


class TestEstimateParity:
    """The acceptance criterion: live server == in-process estimator."""

    def test_estimate_parity_over_generated_corpus(self, conn, small_corpus):
        reference = NutritionEstimator()
        for recipe in small_corpus[:20]:
            expected = reference.estimate_corpus([recipe])[0]
            response, body = call(conn, "POST", "/v1/estimate", {
                "ingredients": recipe.ingredient_texts,
                "servings": recipe.servings,
            })
            assert response.status == 200
            # Byte-identical floats: JSON round-trips via repr, so ==
            # on the decoded values is bitwise equality.
            assert body["per_serving"] == expected.per_serving.values
            assert body["total"] == expected.total.values
            assert body["fraction_fully_mapped"] == (
                expected.fraction_fully_mapped
            )
            for encoded, ingredient in zip(
                body["ingredients"], expected.ingredients
            ):
                assert encoded["status"] == ingredient.status
                assert encoded["grams"] == ingredient.grams
                assert encoded["profile"] == ingredient.profile.values
                # provenance rides along, identically to in-process
                assert encoded["reason"] == ingredient.reason
                assert encoded["trace"] == list(ingredient.trace)
                assert encoded["reason"]

    def test_batch_parity(self, conn, small_corpus):
        recipes = small_corpus[:12]
        expected = NutritionEstimator().estimate_corpus(list(recipes))
        response, body = call(conn, "POST", "/v1/estimate_batch", {
            "recipes": [
                {"ingredients": r.ingredient_texts, "servings": r.servings}
                for r in recipes
            ],
        })
        assert response.status == 200
        assert body["count"] == len(recipes)
        for encoded, reference in zip(body["recipes"], expected):
            assert encoded["per_serving"] == reference.per_serving.values
            for line, ingredient in zip(
                encoded["ingredients"], reference.ingredients
            ):
                assert line["reason"] == ingredient.reason
                assert line["trace"] == list(ingredient.trace)

    def test_cache_hit_is_flagged_and_identical(self, conn):
        payload = {"ingredients": ["2 cups white sugar"], "servings": 2}
        first_response, first = call(conn, "POST", "/v1/estimate", payload)
        second_response, second = call(conn, "POST", "/v1/estimate", payload)
        assert first_response.status == second_response.status == 200
        assert second_response.getheader("X-Cache") == "hit"
        assert first == second


class TestMatchAndParse:
    def test_match(self, conn):
        response, body = call(conn, "POST", "/v1/match", {
            "name": "red lentils", "top": 3,
        })
        assert response.status == 200
        assert body["match"]["description"] == "Lentils, pink or red, raw"
        assert body["match"]["ndb_no"]
        assert len(body["candidates"]) <= 3

    def test_match_unmatched(self, conn):
        response, body = call(conn, "POST", "/v1/match", {
            "name": "garam masala",
        })
        assert response.status == 200
        assert body["match"] is None

    def test_parse(self, conn):
        response, body = call(conn, "POST", "/v1/parse", {
            "text": "1 small onion , finely chopped",
        })
        assert response.status == 200
        assert body["name"] == "onion"
        assert body["tags"][0] == "QUANTITY"


class TestExplain:
    def test_explain_resolved_line(self, conn):
        response, body = call(conn, "POST", "/v1/explain", {
            "text": "2 cups all-purpose flour",
        })
        assert response.status == 200
        assert body["status"] == "matched"
        assert body["reason"] == "ner-unit"
        assert body["trace"] == ["ner-unit:resolved"]
        assert body["estimate"]["grams"] > 0
        assert body["candidates"]
        stages = {s["stage"]: s for s in body["stages"]}
        assert stages["ner-unit"]["outcome"] == "resolved"
        assert stages["ner-unit"]["unit"] == "cup"
        assert stages["phrase-scan"]["outcome"] == "skipped"

    def test_explain_matches_estimate_for_the_same_line(self, conn):
        """/v1/explain's estimate must be byte-identical (JSON float
        round-trip) to /v1/estimate's per-line outcome."""
        text = "1 (15 ounce) can black beans"
        _, explained = call(conn, "POST", "/v1/explain", {"text": text})
        _, estimated = call(conn, "POST", "/v1/estimate", {
            "ingredients": [text],
        })
        assert explained["estimate"] == estimated["ingredients"][0]

    def test_explain_context_rescues_via_corpus_unit(self, conn):
        response, body = call(conn, "POST", "/v1/explain", {
            "text": "1 head butter cup",
            "context": ["2 tablespoons butter", "1 tablespoon butter"],
        })
        assert response.status == 200
        assert body["status"] == "matched"
        assert body["reason"] == "corpus-frequent-unit"
        assert body["context_lines"] == 2

    def test_explain_unmatched(self, conn):
        response, body = call(conn, "POST", "/v1/explain", {
            "text": "2 teaspoons garam masala",
        })
        assert response.status == 200
        assert body["status"] == "unmatched"
        assert body["reason"] == "no-description-match"
        assert body["stages"] == []

    def test_explain_is_cached(self, conn):
        payload = {"text": "1 cup white sugar", "context": ["1 cup sugar"]}
        call(conn, "POST", "/v1/explain", payload)
        response, body = call(conn, "POST", "/v1/explain", payload)
        assert response.getheader("X-Cache") == "hit"
        assert body["reason"]

    def test_explain_validation(self, conn):
        response, body = call(conn, "POST", "/v1/explain", {
            "text": "x", "context": "not a list",
        })
        assert response.status == 400
        assert body["error"]["field"] == "context"


class TestReasonMetrics:
    def test_metrics_expose_per_reason_counters(self, service):
        # A fresh connection on the module service: observe the delta
        # produced by one uncached estimate.
        connection = http.client.HTTPConnection(
            service.host, service.port, timeout=30
        )
        try:
            _, before = call(connection, "GET", "/metrics")
            call(connection, "POST", "/v1/estimate", {
                "ingredients": [
                    "3 cups all-purpose flour",
                    "2 teaspoons garam masala",
                ],
            })
            _, after = call(connection, "GET", "/metrics")
        finally:
            connection.close()
        assert "reasons" in before and "reasons" in after
        delta = (
            after["reasons"]["lines_total"]
            - before["reasons"]["lines_total"]
        )
        assert delta == 2
        by_reason = after["reasons"]["by_reason"]
        prev = before["reasons"]["by_reason"]
        assert by_reason["ner-unit"] == prev.get("ner-unit", 0) + 1
        assert by_reason["no-description-match"] == (
            prev.get("no-description-match", 0) + 1
        )


class TestErrorContract:
    def test_invalid_json_400(self, conn):
        conn.request("POST", "/v1/estimate", "this is not json")
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert body["error"]["code"] == "invalid_json"

    def test_validation_error_400_names_field(self, conn):
        response, body = call(conn, "POST", "/v1/estimate", {
            "ingredients": [], "servings": 2,
        })
        assert response.status == 400
        assert body["error"]["code"] == "invalid_request"
        assert body["error"]["field"] == "ingredients"

    def test_unknown_path_404(self, conn):
        response, body = call(conn, "GET", "/v1/unknown")
        assert response.status == 404
        assert body["error"]["code"] == "not_found"

    def test_wrong_method_405(self, conn):
        response, body = call(conn, "GET", "/v1/estimate")
        assert response.status == 405
        assert body["error"]["code"] == "method_not_allowed"
        assert body["error"]["allowed"] == ["POST"]

    @pytest.mark.parametrize("bad_length", ["abc", "-1"])
    def test_malformed_content_length_400(self, service, bad_length):
        connection = http.client.HTTPConnection(
            service.host, service.port, timeout=10
        )
        try:
            connection.putrequest("POST", "/v1/parse")
            connection.putheader("Content-Length", bad_length)
            connection.endheaders()
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["code"] == "invalid_request"
            assert body["error"]["field"] == "Content-Length"
        finally:
            connection.close()

    def test_payload_too_large_413(self, service):
        connection = http.client.HTTPConnection(
            service.host, service.port, timeout=30
        )
        try:
            connection.putrequest("POST", "/v1/estimate")
            connection.putheader(
                "Content-Length",
                str(service.config.max_body_bytes + 1),
            )
            connection.endheaders()
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 413
            assert body["error"]["code"] == "payload_too_large"
        finally:
            connection.close()


class TestLifecycle:
    def test_keep_alive_over_one_connection(self, conn):
        for _ in range(3):
            response, body = call(conn, "GET", "/healthz")
            assert response.status == 200

    def test_graceful_shutdown_and_port_reuse(self):
        service = NutritionService(ServiceConfig(port=0)).start()
        port = service.port
        connection = http.client.HTTPConnection(
            service.host, port, timeout=10
        )
        response, body = call(connection, "GET", "/healthz")
        assert body["status"] == "ok"
        connection.close()
        service.shutdown()
        with pytest.raises(OSError):
            probe = http.client.HTTPConnection(
                service.host, port, timeout=2
            )
            probe.request("GET", "/healthz")
            probe.getresponse()

    def test_workers_config_surfaces_in_healthz(self):
        with NutritionService(
            ServiceConfig(port=0, workers=2)
        ) as service:
            connection = http.client.HTTPConnection(
                service.host, service.port, timeout=30
            )
            response, body = call(connection, "GET", "/healthz")
            assert body["workers"] == 2
            connection.close()


# ----------------------------------------------------------------------
# the server matrix: threading seed vs event loop vs --procs subprocesses

#: Every endpoint + error-envelope case, as deterministic raw request
#: bytes.  Each server sees each case exactly once, in this order, so
#: cache behaviour (all misses) is identical everywhere.  ``full``
#: cases compare status line, headers (minus Date) and exact body
#: bytes; ``status`` cases have process-varying bodies (uptime, pid)
#: and compare status + Content-Type only.
MATRIX_CASES = [
    ("healthz", build_request("GET", "/healthz"), "status"),
    ("readyz", build_request("GET", "/readyz"), "status"),
    ("metrics", build_request("GET", "/metrics"), "status"),
    ("estimate", build_request("POST", "/v1/estimate", {
        "ingredients": ["2 cups all-purpose flour", "1 tsp salt",
                        "3 cloves garlic , minced"],
        "servings": 4,
    }), "full"),
    ("estimate_batch", build_request("POST", "/v1/estimate_batch", {
        "recipes": [
            {"ingredients": ["1 cup white sugar"], "servings": 2},
            {"ingredients": ["2 teaspoons garam masala",
                             "1 small onion , finely chopped"],
             "servings": 1},
        ],
    }), "full"),
    ("match", build_request("POST", "/v1/match", {
        "name": "red lentils", "top": 3,
    }), "full"),
    ("parse", build_request("POST", "/v1/parse", {
        "text": "1 small onion , finely chopped",
    }), "full"),
    ("explain", build_request("POST", "/v1/explain", {
        "text": "1 head butter cup",
        "context": ["2 tablespoons butter", "1 tablespoon butter"],
    }), "full"),
    ("invalid_json", build_request(
        "POST", "/v1/estimate", body=b"this is not json",
    ), "full"),
    ("validation_error", build_request("POST", "/v1/estimate", {
        "ingredients": [], "servings": 2,
    }), "full"),
    ("not_found", build_request("GET", "/v1/unknown"), "full"),
    ("method_not_allowed", build_request("GET", "/v1/estimate"), "full"),
    ("bad_content_length", build_request(
        "POST", "/v1/parse", headers={"Content-Length": "abc"},
    ), "full"),
    ("negative_content_length", build_request(
        "POST", "/v1/parse", headers={"Content-Length": "-1"},
    ), "full"),
    ("payload_too_large", build_request(
        "POST", "/v1/estimate",
        headers={"Content-Length": str((1 << 20) + 1)},
    ), "full"),
]

MATRIX_SERVERS = ("event-loop", "procs-1", "procs-2")


@pytest.fixture(scope="module")
def matrix_responses(tmp_path_factory):
    """Every case against every server, one fresh connection per case."""
    tmp = tmp_path_factory.mktemp("server-matrix")
    with ThreadingNutritionService(ServiceConfig(port=0)) as seed, \
            NutritionService(ServiceConfig(port=0)) as loop, \
            ServeProcess(tmp, procs=1) as one, \
            ServeProcess(tmp, procs=2) as two:
        targets = {
            "threading-seed": (seed.host, seed.port),
            "event-loop": (loop.host, loop.port),
            "procs-1": (one.host, one.port),
            "procs-2": (two.host, two.port),
        }
        responses: dict[str, dict] = {name: {} for name in targets}
        for case_name, request, _mode in MATRIX_CASES:
            for server, (host, port) in targets.items():
                responses[server][case_name] = split_response(
                    raw_request(host, port, request)
                )
        yield responses


class TestServerMatrix:
    """Byte parity across threading vs event-loop vs multi-proc."""

    @pytest.mark.parametrize(
        "case_name,mode",
        [(name, mode) for name, _req, mode in MATRIX_CASES],
    )
    def test_parity_with_seed_server(self, matrix_responses, case_name, mode):
        status, status_line, headers, body = (
            matrix_responses["threading-seed"][case_name]
        )
        for server in MATRIX_SERVERS:
            got = matrix_responses[server][case_name]
            if mode == "full":
                assert got == (status, status_line, headers, body), (
                    f"{server} diverges from threading seed on "
                    f"{case_name}"
                )
            else:
                assert got[0] == status, (server, case_name)
                assert "Content-Type: application/json" in got[2], (
                    server, case_name,
                )

    def test_matrix_covers_success_and_error_envelopes(self):
        statuses = set()
        for _name, _req, mode in MATRIX_CASES:
            if mode == "full":
                statuses.add(_name)
        # Error envelopes asserted byte-identical, not just successes.
        assert {"invalid_json", "validation_error", "not_found",
                "method_not_allowed", "bad_content_length",
                "payload_too_large"} <= statuses
