"""Tests for repro.text.quantity."""

import pytest
from hypothesis import given, strategies as st

from repro.text.quantity import (
    QuantityParseError,
    format_quantity,
    parse_quantity,
    try_parse_quantity,
)


class TestParseQuantity:
    @pytest.mark.parametrize("text,value", [
        ("3", 3.0),
        ("2.5", 2.5),
        ("1/2", 0.5),
        ("1/8", 0.125),
        ("3 / 4", 0.75),
        ("2 1/2", 2.5),
        ("1-1/2", 1.5),
        ("2-4", 3.0),          # paper: "'2-4' was averaged to 3"
        ("2 to 4", 3.0),
        ("2 or 3", 2.5),
        ("½", 0.5),
        ("2½", 2.5),
        ("one", 1.0),
        ("a", 1.0),
        ("a dozen", 12.0),
        ("2 dozen", 24.0),
        ("half", 0.5),
    ])
    def test_values(self, text, value):
        assert parse_quantity(text) == pytest.approx(value)

    @pytest.mark.parametrize("bad", ["", "   ", "abc", "1/0", "to", "-"])
    def test_unparseable_raises(self, bad):
        with pytest.raises(QuantityParseError):
            parse_quantity(bad)

    def test_range_with_spaces(self):
        assert parse_quantity("2 - 4") == 3.0

    def test_range_of_fractions(self):
        assert parse_quantity("1/2 to 3/4") == pytest.approx(0.625)


class TestTryParse:
    def test_success(self):
        assert try_parse_quantity("1/4") == 0.25

    def test_failure_returns_none(self):
        assert try_parse_quantity("xyz") is None


class TestFormatQuantity:
    @pytest.mark.parametrize("value,text", [
        (0.5, "1/2"),
        (2.5, "2 1/2"),
        (0.25, "1/4"),
        (3.0, "3"),
        (1 / 3, "1/3"),
        (0.125, "1/8"),
    ])
    def test_common_fractions(self, value, text):
        assert format_quantity(value) == text

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_quantity(-1.0)

    @given(st.integers(min_value=0, max_value=20),
           st.sampled_from([0.0, 0.125, 0.25, 1 / 3, 0.5, 2 / 3, 0.75]))
    def test_round_trip(self, whole, frac):
        value = whole + frac
        if value == 0:
            return
        assert parse_quantity(format_quantity(value)) == pytest.approx(value)

    @given(st.floats(min_value=0.01, max_value=500, allow_nan=False))
    def test_format_always_parseable(self, value):
        assert parse_quantity(format_quantity(value)) == pytest.approx(
            value, rel=1e-6)
