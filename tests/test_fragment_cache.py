"""Serialized-estimate byte cache: fragment assembly and reuse.

The service's estimation endpoints assemble their response bodies
from pre-serialized per-ingredient JSON fragments, cached by
``(stats token, line text)``.  Two contracts matter:

* **byte exactness** — an assembled body is byte-identical to
  ``json.dumps`` of the monolithic dict the endpoints used to build
  (clients and the whole-response cache must not observe the
  refactor);
* **keyed invalidation** — the token binds the database fingerprint
  and the request's frozen-stats digest, so a request whose corpus
  statistics differ never replays another request's bytes, while
  repeats under the same token skip serialization entirely (the
  ``caches`` section of ``/metrics`` makes the hits observable).
"""

from __future__ import annotations

import json

import pytest

from repro.core.estimator import NutritionEstimator
from repro.recipedb.generator import GeneratorConfig, RecipeGenerator
from repro.service import codec
from repro.service.state import ServiceConfig, ServiceState


@pytest.fixture(scope="module")
def state():
    return ServiceState(ServiceConfig(port=0))


@pytest.fixture(scope="module")
def recipes():
    return RecipeGenerator(config=GeneratorConfig(seed=9)).generate(10)


def _batch_request(recipes):
    return codec.BatchRequest(
        recipes=tuple(
            codec.EstimateRequest(
                ingredients=tuple(r.ingredient_texts), servings=r.servings
            )
            for r in recipes
        )
    )


class TestAssemblyByteExactness:
    """Assembled bytes == monolithic dumps, by construction and test."""

    @pytest.fixture(scope="class")
    def recipe_estimate(self, recipes):
        estimator = NutritionEstimator()
        texts = list(recipes[0].ingredient_texts)
        table = estimator.corpus_estimate_table(
            {t: texts.count(t) for t in texts}
        )
        return NutritionEstimator.finish_recipe(
            [table[t] for t in texts], recipes[0].servings
        )

    def test_recipe_assembly_equals_dict_dump(self, recipe_estimate):
        fragments = [
            codec.dumps_ingredient_fragment(item)
            for item in recipe_estimate.ingredients
        ]
        assembled = codec.assemble_recipe_estimate_bytes(
            recipe_estimate, fragments
        )
        monolithic = json.dumps(
            codec.encode_recipe_estimate(recipe_estimate),
            separators=(",", ":"),
        ).encode("utf-8")
        assert assembled == monolithic

    def test_batch_assembly_equals_dict_dump(self, recipe_estimate):
        fragments = [
            codec.dumps_ingredient_fragment(item)
            for item in recipe_estimate.ingredients
        ]
        body = codec.assemble_recipe_estimate_bytes(
            recipe_estimate, fragments
        )
        assembled = codec.assemble_batch_bytes([body, body])
        monolithic = json.dumps(
            {
                "count": 2,
                "recipes": [
                    codec.encode_recipe_estimate(recipe_estimate)
                ] * 2,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        assert assembled == monolithic

    def test_dumps_body_passes_bytes_through(self):
        assert codec.dumps_body(b'{"x":1}') == b'{"x":1}'
        assert codec.dumps_body({"x": 1}) == b'{"x":1}'


class TestFragmentReuse:
    def test_repeat_batch_hits_fragment_cache(self, state, recipes):
        request = _batch_request(recipes)
        first = state.estimate_batch(request)
        before = state.caches_snapshot()["fragment"]
        second = state.estimate_batch(request)
        after = state.caches_snapshot()["fragment"]
        assert second == first
        distinct = len(
            {t for r in recipes for t in r.ingredient_texts}
        )
        # Every distinct line of the repeat was served from cache.
        assert after["hits"] - before["hits"] >= distinct
        assert after["misses"] == before["misses"]

    def test_different_stats_token_never_replays_bytes(self, state, recipes):
        """Same line, different batch statistics: the frozen unit
        table differs, so the token differs and the line re-renders
        instead of replaying the other batch's fragment."""
        state.estimate_batch(_batch_request(recipes[:4]))
        before = state.caches_snapshot()["fragment"]
        state.estimate_batch(_batch_request(recipes[4:8]))
        after = state.caches_snapshot()["fragment"]
        # Disjoint recipes => a different stats digest => all misses.
        assert after["misses"] > before["misses"]

    def test_estimate_and_batch_share_valid_json(self, state, recipes):
        body = json.loads(
            state.estimate(
                codec.EstimateRequest(
                    ingredients=tuple(recipes[0].ingredient_texts),
                    servings=recipes[0].servings,
                )
            )
        )
        assert set(body) == {
            "servings", "total", "per_serving",
            "fraction_fully_mapped", "fraction_name_mapped", "ingredients",
        }
        batch = json.loads(state.estimate_batch(_batch_request(recipes[:2])))
        assert batch["count"] == 2


class TestMetricsCachesSection:
    def test_caches_section_shape(self, state):
        caches = state.metrics_snapshot()["caches"]
        assert set(caches) == {"parse", "matcher", "response", "fragment"}
        for stats in caches.values():
            assert set(stats) == {
                "size", "cap", "hits", "misses", "evictions", "hit_rate",
            }
        # The legacy response_cache block stays for older scrapers.
        info = state.metrics_snapshot()["response_cache"]
        assert set(info) == {"size", "cap"}

    def test_fragment_cache_cap_is_configurable(self):
        with pytest.raises(ValueError):
            ServiceConfig(port=0, fragment_cache_cap=0)
        small = ServiceState(ServiceConfig(port=0, fragment_cache_cap=3))
        small.estimate(
            codec.EstimateRequest(
                ingredients=("1 tsp salt", "2 cups flour", "3 eggs", "butter"),
                servings=1,
            )
        )
        stats = small.caches_snapshot()["fragment"]
        assert stats["cap"] == 3
        assert stats["size"] <= 3
        assert stats["evictions"] >= 1
