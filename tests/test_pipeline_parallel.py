"""Exact-parity guarantees of the sharded corpus engine and the
vectorized perceptron hot path.

The contract under test (ISSUE 2): multi-worker ``estimate_corpus``
produces **bit-identical** ``RecipeEstimate`` objects to the
single-process path on a shuffled corpus, and the vectorized
perceptron emissions match the dict-based reference on trained
weights.
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest

from repro import (
    EstimatorSpec,
    NutritionEstimator,
    RecipeGenerator,
    ShardedCorpusEstimator,
)
from repro.core.estimator import STATUS_NAME_ONLY
from repro.ner import AveragedPerceptronTagger
from repro.ner.features import extract_features
from repro.pipeline.wire import dumps_estimates, loads_estimates
from repro.recipedb.corpus import save_recipes_jsonl
from repro.recipedb.generator import GeneratorConfig


class _ExplodingTagger:
    """Picklable tagger that fails on every phrase (worker-crash test)."""

    def predict(self, tokens):
        raise RuntimeError("exploding tagger")


@pytest.fixture(scope="module")
def shuffled_corpus():
    """A generated corpus in deliberately shuffled order."""
    recipes = RecipeGenerator(config=GeneratorConfig(seed=11)).generate(150)
    rng = random.Random(5)
    shuffled = list(recipes)
    rng.shuffle(shuffled)
    return shuffled


@pytest.fixture(scope="module")
def reference_estimates(shuffled_corpus):
    return NutritionEstimator().estimate_corpus(shuffled_corpus)


class TestShardedParity:
    def test_multi_worker_bit_identical(
        self, shuffled_corpus, reference_estimates
    ):
        engine = ShardedCorpusEstimator(workers=3, chunk_size=29)
        parallel = engine.estimate_corpus(shuffled_corpus)
        assert parallel == reference_estimates

    def test_single_worker_in_process_bit_identical(
        self, shuffled_corpus, reference_estimates
    ):
        engine = ShardedCorpusEstimator(workers=1, chunk_size=29)
        assert engine.estimate_corpus(shuffled_corpus) == reference_estimates

    def test_parity_corpus_exercises_fallback(self, reference_estimates):
        """Guard against a vacuous parity check: the corpus must
        actually contain lines resolved via corpus-level unit
        statistics and lines left name-only."""
        flat = [i for e in reference_estimates for i in e.ingredients]
        assert any(i.used_fallback_unit for i in flat)
        assert any(i.status == STATUS_NAME_ONLY for i in flat)

    def test_provenance_ships_bit_identically_across_workers(
        self, shuffled_corpus, reference_estimates
    ):
        """Reason codes and traces travel the wire codec unchanged:
        every worker-produced line carries the exact provenance the
        single-process path computed (dataclass == already covers it;
        this pins the fields explicitly so a codec regression that
        drops them cannot hide behind an equality shortcut)."""
        engine = ShardedCorpusEstimator(workers=2, chunk_size=17)
        parallel = engine.estimate_corpus(shuffled_corpus)
        reasons_seen = set()
        for ours, reference in zip(parallel, reference_estimates):
            for a, b in zip(ours.ingredients, reference.ingredients):
                assert a.reason == b.reason
                assert a.trace == b.trace
                assert a.reason  # never empty on pipeline output
                reasons_seen.add(a.reason)
        # the corpus must exercise more than one strategy for this
        # check to mean anything
        assert len(reasons_seen) >= 3

    def test_corpus_diagnostics_identical_across_worker_counts(
        self, shuffled_corpus
    ):
        single = ShardedCorpusEstimator(workers=1).corpus_diagnostics(
            shuffled_corpus
        )
        sharded = ShardedCorpusEstimator(
            workers=2, chunk_size=23
        ).corpus_diagnostics(shuffled_corpus)
        assert sharded == single
        assert sharded.total_lines == sum(
            len(r.ingredient_texts) for r in shuffled_corpus
        )
        assert sharded.fully_mapped > 0
        assert sharded.unit_gap >= 0
        assert sum(sharded.resolved_by.values()) == sharded.fully_mapped
        assert "resolved by:" in sharded.render()

    def test_chunk_size_does_not_change_results(self, shuffled_corpus):
        small = ShardedCorpusEstimator(workers=2, chunk_size=7)
        large = ShardedCorpusEstimator(workers=2, chunk_size=500)
        assert small.estimate_corpus(shuffled_corpus) == large.estimate_corpus(
            shuffled_corpus
        )

    def test_jsonl_streaming_matches_in_memory(
        self, tmp_path, shuffled_corpus, reference_estimates
    ):
        path = tmp_path / "corpus.jsonl"
        save_recipes_jsonl(shuffled_corpus, path)
        engine = ShardedCorpusEstimator(workers=2, chunk_size=64)
        streamed = list(engine.iter_corpus_estimates(str(path)))
        assert streamed == reference_estimates

    def test_rejects_non_reiterable_source(self):
        engine = ShardedCorpusEstimator(workers=1)
        with pytest.raises(TypeError):
            engine.estimate_corpus(iter([]))

    def test_empty_corpus(self):
        assert ShardedCorpusEstimator(workers=1).estimate_corpus([]) == []

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ShardedCorpusEstimator(workers=0)
        with pytest.raises(ValueError):
            ShardedCorpusEstimator(chunk_size=0)

    def test_worker_exception_propagates(self, shuffled_corpus):
        """A failing worker must raise in the coordinator, not hang
        the pool shutdown behind the bounded-imap gate."""
        engine = ShardedCorpusEstimator(
            EstimatorSpec(tagger=_ExplodingTagger()),
            workers=2,
            chunk_size=2,
            max_pending=2,
        )
        with pytest.raises(RuntimeError, match="exploding tagger"):
            engine.estimate_corpus(shuffled_corpus[:12])


class TestEstimatorSpec:
    def test_spec_is_picklable(self):
        spec = EstimatorSpec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert len(list(clone.database())) == len(list(spec.database()))

    def test_build_applies_max_grams(self):
        estimator = EstimatorSpec(max_grams=123.0).build()
        assert estimator.fallback.max_grams == 123.0

    def test_custom_database_roundtrip(self, db):
        spec = EstimatorSpec.for_database(db)
        rebuilt = spec.database()
        assert list(rebuilt) == list(db)


class TestWireCodec:
    def test_roundtrip_field_for_field(self, shuffled_corpus):
        estimator = NutritionEstimator()
        estimates = [
            estimator.estimate_ingredient(text)
            for recipe in shuffled_corpus[:40]
            for text in recipe.ingredient_texts
        ]
        # Matched + at least one other status, so the codec is
        # exercised with and without match/resolution payload.
        assert len({e.status for e in estimates}) >= 2
        wire = dumps_estimates(estimates, estimator.database)
        assert loads_estimates(wire, estimator.database) == estimates

    def test_wire_strips_food_payload(self, shuffled_corpus):
        """Foods travel as indices: wire size must not scale with the
        ~1 KB food records, which naive pickle pays once per distinct
        food per chunk."""
        estimator = NutritionEstimator()
        estimates = []
        seen_foods = set()
        for recipe in shuffled_corpus:
            for text in recipe.ingredient_texts:
                estimate = estimator.estimate_ingredient(text)
                if estimate.match and estimate.match.food.ndb_no not in seen_foods:
                    seen_foods.add(estimate.match.food.ndb_no)
                    estimates.append(estimate)
        assert len(estimates) >= 30  # distinct foods, worst case for pickle
        naive = len(pickle.dumps(estimates, pickle.HIGHEST_PROTOCOL))
        wire = len(dumps_estimates(estimates, estimator.database))
        assert wire < naive / 1.5

    def test_loads_outside_codec_rejected(self, shuffled_corpus):
        estimator = NutritionEstimator()
        estimate = estimator.estimate_ingredient("1 cup white sugar")
        wire = dumps_estimates([estimate], estimator.database)
        with pytest.raises(RuntimeError):
            pickle.loads(wire)  # no database bound


class TestVectorizedPerceptron:
    @pytest.fixture(scope="class")
    def trained(self):
        phrases = [
            item.tagged
            for item in RecipeGenerator(
                config=GeneratorConfig(seed=3)
            ).generate_phrases(250)
        ]
        tagger = AveragedPerceptronTagger()
        tagger.train(phrases, epochs=3)
        return tagger

    def test_emissions_bit_identical_to_dict_reference(self, trained):
        test_phrases = [
            item.tagged
            for item in RecipeGenerator(
                config=GeneratorConfig(seed=4)
            ).generate_phrases(120)
        ]
        for phrase in test_phrases:
            feats = extract_features(phrase.tokens)
            vectorized = trained._emissions(feats)
            reference = trained._emissions_reference(feats)
            assert np.array_equal(vectorized, reference), phrase.tokens

    def test_weight_matrix_mirrors_dict(self, trained):
        matrix = trained._weight_matrix
        feature_ids = trained._feature_ids
        assert matrix.shape == (len(feature_ids), len(trained.tags))
        for (feat, tag), weight in trained._weights.items():
            assert matrix[feature_ids[feat], tag] == weight
        assert np.count_nonzero(matrix) == len(trained._weights)

    def test_predictions_unchanged(self, trained):
        phrases = [
            item.tagged
            for item in RecipeGenerator(
                config=GeneratorConfig(seed=6)
            ).generate_phrases(60)
        ]
        for phrase in phrases:
            fast = trained.predict(phrase.tokens)
            # Force the reference path by hiding the matrix.
            matrix, trained._weight_matrix = trained._weight_matrix, None
            try:
                slow = trained.predict(phrase.tokens)
            finally:
                trained._weight_matrix = matrix
            assert fast == slow

    def test_trained_tagger_is_picklable(self, trained):
        clone = pickle.loads(pickle.dumps(trained))
        tokens = ["2", "cups", "chopped", "onion"]
        assert clone.predict(tokens) == trained.predict(tokens)

    def test_sharded_engine_with_trained_tagger(self, trained):
        """The paper's configuration (learned NER) through the pool."""
        recipes = RecipeGenerator(config=GeneratorConfig(seed=8)).generate(25)
        spec = EstimatorSpec(tagger=trained)
        single = spec.build().estimate_corpus(recipes)
        sharded = ShardedCorpusEstimator(
            spec, workers=2, chunk_size=16
        ).estimate_corpus(recipes)
        assert sharded == single
