"""Resilience behaviour of the HTTP service (ISSUE 6).

Unit coverage for the primitives (deadline, admission controller,
circuit breaker) plus live-server tests: 504 on deadline, 503 +
``Retry-After`` under saturation, ``/readyz`` liveness/readiness
split, configurable 413, the resilience section of ``/metrics``,
breaker degrade to in-process estimation, and graceful shutdown that
drains in-flight requests (the SIGTERM path of ``repro serve``).
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.service import NutritionService, ServiceConfig
from repro.service.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
)
from repro.service.resilience import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
)

SLOW = "sleep@service-estimate:*:0.4"


def call(conn, method: str, path: str, payload=None):
    body = None if payload is None else json.dumps(payload)
    conn.request(method, path, body)
    response = conn.getresponse()
    return response, json.loads(response.read())


def post_estimate(service, phrase: str, timeout: float = 30.0):
    conn = http.client.HTTPConnection(
        service.host, service.port, timeout=timeout
    )
    try:
        return call(
            conn, "POST", "/v1/estimate", {"ingredients": [phrase]}
        )
    finally:
        conn.close()


class TestDeadline:
    def test_fresh_deadline_is_not_expired(self):
        deadline = Deadline(30.0)
        assert not deadline.expired()
        assert 29.0 < deadline.remaining_s() <= 30.0
        deadline.check("anywhere")  # no raise

    def test_expired_deadline_raises_with_phase(self):
        deadline = Deadline(0.001)
        time.sleep(0.005)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError, match="estimation"):
            deadline.check("estimation")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0)


class TestAdmissionController:
    def test_admits_within_capacity(self):
        admission = AdmissionController(2, 0)
        with admission.admitted():
            with admission.admitted():
                assert admission.active == 2
        assert admission.drained()

    def test_sheds_immediately_beyond_queue(self):
        admission = AdmissionController(1, 0)
        with admission.admitted():
            with pytest.raises(ServiceOverloadedError) as excinfo:
                with admission.admitted():
                    pass
        assert excinfo.value.retry_after_s >= 1
        assert admission.shed_total == 1
        assert admission.drained()

    def test_queued_request_proceeds_when_slot_frees(self):
        admission = AdmissionController(1, 1)
        results = []
        first_in = threading.Event()
        release = threading.Event()

        def hold():
            with admission.admitted():
                first_in.set()
                release.wait(timeout=5)

        def wait_then_run():
            first_in.wait(timeout=5)
            with admission.admitted(Deadline(5.0)):
                results.append("ran")

        t1 = threading.Thread(target=hold)
        t2 = threading.Thread(target=wait_then_run)
        t1.start()
        t2.start()
        # Let the second request reach the queue, then free the slot.
        deadline = time.monotonic() + 5
        while admission.queued < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert admission.queued == 1
        release.set()
        t1.join(timeout=5)
        t2.join(timeout=5)
        assert results == ["ran"]
        assert admission.shed_total == 0
        assert admission.drained()

    def test_snapshot_schema(self):
        snapshot = AdmissionController(3, 7).snapshot()
        assert snapshot == {
            "active": 0,
            "queued": 0,
            "max_concurrent": 3,
            "max_queue": 7,
            "shed_total": 0,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0, 5)
        with pytest.raises(ValueError):
            AdmissionController(1, -1)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=60)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=60)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        assert not breaker.allow()
        time.sleep(0.06)
        assert breaker.state == "half-open"
        # Exactly one probe is admitted.
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.snapshot()["opens_total"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0, 1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(1, 0)


@pytest.fixture(scope="module")
def slow_service():
    """A service whose estimation path sleeps 0.4 s (fault-injected)
    with a 0.2 s request deadline and a 1-slot, 0-queue admission
    policy — every resilience behaviour is reachable quickly."""
    config = ServiceConfig(
        port=0,
        request_timeout_s=0.2,
        max_concurrent=1,
        max_queue=0,
        cache_cap=64,
    )
    with NutritionService(config) as svc:
        yield svc


class TestRequestDeadline:
    def test_slow_estimation_times_out_with_504(
        self, slow_service, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", SLOW)
        response, body = post_estimate(slow_service, "1 cup milk")
        assert response.status == 504
        assert body["error"]["code"] == "deadline_exceeded"
        assert "deadline" in body["error"]["message"]

    def test_fast_request_is_unaffected(self, slow_service, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        response, body = post_estimate(slow_service, "2 cups flour")
        assert response.status == 200
        assert body["per_serving"]["energy_kcal"] > 0

    def test_deadline_exceeded_is_counted(self, slow_service, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", SLOW)
        post_estimate(slow_service, "1 tbsp honey")
        monkeypatch.delenv("REPRO_FAULTS")
        conn = http.client.HTTPConnection(
            slow_service.host, slow_service.port, timeout=10
        )
        try:
            _, metrics = call(conn, "GET", "/metrics")
        finally:
            conn.close()
        assert metrics["resilience"]["deadline_exceeded_total"] >= 1


class TestLoadShedding:
    def test_saturated_service_sheds_with_503_and_retry_after(
        self, slow_service, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", SLOW)
        statuses = {}
        lock = threading.Lock()

        def fire(tag, phrase):
            conn = http.client.HTTPConnection(
                slow_service.host, slow_service.port, timeout=10
            )
            try:
                response, body = call(
                    conn, "POST", "/v1/estimate", {"ingredients": [phrase]}
                )
                with lock:
                    statuses[tag] = (
                        response.status,
                        response.getheader("Retry-After"),
                        body,
                    )
            finally:
                conn.close()

        threads = [
            threading.Thread(target=fire, args=(i, f"{i} cups sugar"))
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15)
        codes = sorted(status for status, _, _ in statuses.values())
        # One request holds the only slot (and then 504s on the sleep);
        # with a zero-length queue the others are shed instantly.
        assert codes.count(503) >= 1
        for status, retry_after, body in statuses.values():
            if status == 503:
                assert retry_after is not None
                assert int(retry_after) >= 1
                assert body["error"]["code"] == "overloaded"
                assert body["error"]["retry_after_s"] >= 1

    def test_shed_count_appears_in_metrics(self, slow_service, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        conn = http.client.HTTPConnection(
            slow_service.host, slow_service.port, timeout=10
        )
        try:
            _, metrics = call(conn, "GET", "/metrics")
        finally:
            conn.close()
        resilience = metrics["resilience"]
        assert resilience["admission"]["shed_total"] >= 1
        assert resilience["breaker"]["state"] == "closed"
        for key in ("retries", "respawns", "worker_crashes",
                    "hung_workers", "dead_lettered"):
            assert key in resilience["pipeline"]

    def test_introspection_bypasses_admission(
        self, slow_service, monkeypatch
    ):
        """/healthz and /metrics answer while estimation is saturated."""
        monkeypatch.setenv("REPRO_FAULTS", SLOW)
        done = threading.Event()

        def occupy():
            post_estimate(slow_service, "3 cups rice")
            done.set()

        thread = threading.Thread(target=occupy)
        thread.start()
        try:
            deadline = time.monotonic() + 5
            while (
                slow_service.state.admission.active < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            conn = http.client.HTTPConnection(
                slow_service.host, slow_service.port, timeout=10
            )
            try:
                response, body = call(conn, "GET", "/healthz")
                assert response.status == 200
                assert body["status"] == "ok"
            finally:
                conn.close()
        finally:
            done.wait(timeout=10)
            thread.join(timeout=10)


class TestReadyz:
    def test_ready_when_serving(self, slow_service, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        conn = http.client.HTTPConnection(
            slow_service.host, slow_service.port, timeout=10
        )
        try:
            response, body = call(conn, "GET", "/readyz")
        finally:
            conn.close()
        assert response.status == 200
        assert body["status"] == "ready"
        assert body["breaker"] in ("closed", "open", "half-open")
        assert "admission" in body

    def test_not_ready_while_draining(self, slow_service):
        slow_service.state.draining = True
        try:
            conn = http.client.HTTPConnection(
                slow_service.host, slow_service.port, timeout=10
            )
            try:
                response, body = call(conn, "GET", "/readyz")
            finally:
                conn.close()
            assert response.status == 503
            assert body["error"]["code"] == "not_ready"
            assert "draining" in body["error"]["message"]
        finally:
            slow_service.state.draining = False


class TestConfigurableBodyCap:
    def test_custom_cap_rejects_with_413_before_reading(self):
        config = ServiceConfig(port=0, max_body_bytes=64)
        with NutritionService(config) as service:
            conn = http.client.HTTPConnection(
                service.host, service.port, timeout=10
            )
            try:
                payload = {"ingredients": ["flour"] * 100}
                response, body = call(
                    conn, "POST", "/v1/estimate", payload
                )
                assert response.status == 413
                assert body["error"]["code"] == "payload_too_large"
            finally:
                conn.close()

    def test_config_validates_resilience_knobs(self):
        with pytest.raises(ValueError, match="request_timeout_s"):
            ServiceConfig(request_timeout_s=0)
        with pytest.raises(ValueError, match="max_concurrent"):
            ServiceConfig(max_concurrent=0)
        with pytest.raises(ValueError, match="max_queue"):
            ServiceConfig(max_queue=-1)
        with pytest.raises(ValueError, match="breaker_threshold"):
            ServiceConfig(breaker_threshold=0)
        with pytest.raises(ValueError, match="breaker_cooldown_s"):
            ServiceConfig(breaker_cooldown_s=0)
        with pytest.raises(ValueError, match="engine_min_lines"):
            ServiceConfig(engine_min_lines=0)


class TestBreakerDegrade:
    def test_engine_failure_degrades_to_in_process_estimation(
        self, monkeypatch, small_corpus
    ):
        """A batch whose pool fan-out dies on every retry still
        answers 200 — the breaker records the failure and the request
        degrades to the (bit-identical) in-process path."""
        monkeypatch.setenv("REPRO_FAULTS", "crash@collect-chunk:0:always")
        config = ServiceConfig(
            port=0,
            workers=2,
            engine_min_lines=4,
            breaker_threshold=1,
            breaker_cooldown_s=60,
            request_timeout_s=None,
        )
        with NutritionService(config) as service:
            recipes = [
                {
                    "ingredients": list(recipe.ingredient_texts),
                    "servings": recipe.servings,
                }
                for recipe in small_corpus[:10]
            ]
            conn = http.client.HTTPConnection(
                service.host, service.port, timeout=120
            )
            try:
                response, body = call(
                    conn, "POST", "/v1/estimate_batch", {"recipes": recipes}
                )
                assert response.status == 200
                assert body["count"] == 10
                _, metrics = call(conn, "GET", "/metrics")
            finally:
                conn.close()
            resilience = metrics["resilience"]
            assert resilience["degraded_batches"] >= 1
            assert resilience["breaker"]["state"] == "open"
            # A second batch goes straight to the degraded path
            # (breaker open, no pool attempt) and still succeeds.
            conn = http.client.HTTPConnection(
                service.host, service.port, timeout=120
            )
            try:
                response, body = call(
                    conn,
                    "POST",
                    "/v1/estimate_batch",
                    {"recipes": recipes[:5]},
                )
            finally:
                conn.close()
            assert response.status == 200
            assert body["count"] == 5

    def test_engine_recovery_reports_supervision_counters(
        self, monkeypatch, small_corpus
    ):
        """A crash the supervisor absorbs (first attempt only) shows
        up in /metrics pipeline counters, and the response matches a
        clean single-process service bit-for-bit."""
        config = ServiceConfig(
            port=0, workers=2, engine_min_lines=4, request_timeout_s=None
        )
        payload = {
            "recipes": [
                {
                    "ingredients": list(recipe.ingredient_texts),
                    "servings": recipe.servings,
                }
                for recipe in small_corpus[:10]
            ]
        }
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        with NutritionService(ServiceConfig(port=0)) as reference:
            conn = http.client.HTTPConnection(
                reference.host, reference.port, timeout=120
            )
            try:
                _, expected = call(
                    conn, "POST", "/v1/estimate_batch", payload
                )
            finally:
                conn.close()
        monkeypatch.setenv("REPRO_FAULTS", "crash@collect-chunk:0")
        with NutritionService(config) as service:
            conn = http.client.HTTPConnection(
                service.host, service.port, timeout=120
            )
            try:
                response, body = call(
                    conn, "POST", "/v1/estimate_batch", payload
                )
                _, metrics = call(conn, "GET", "/metrics")
            finally:
                conn.close()
        assert response.status == 200
        assert body == expected
        pipeline = metrics["resilience"]["pipeline"]
        assert pipeline["worker_crashes"] >= 1
        assert pipeline["respawns"] >= 1
        assert pipeline["retries"] >= 1
        assert metrics["resilience"]["breaker"]["state"] == "closed"


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight_requests(self, monkeypatch):
        """The SIGTERM path: shutdown during an active estimation
        request must let it finish (admission drain), not kill it."""
        monkeypatch.setenv("REPRO_FAULTS", SLOW)
        config = ServiceConfig(
            port=0, request_timeout_s=None, max_concurrent=2, max_queue=2
        )
        service = NutritionService(config).start()
        outcome = {}

        def slow_request():
            try:
                outcome["result"] = post_estimate(
                    service, "1 cup oats", timeout=30
                )
            except Exception as exc:  # pragma: no cover - failure detail
                outcome["error"] = exc

        thread = threading.Thread(target=slow_request)
        thread.start()
        deadline = time.monotonic() + 5
        while (
            service.state.admission.active < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        assert service.state.admission.active == 1
        service.shutdown()
        thread.join(timeout=10)
        assert "error" not in outcome, outcome.get("error")
        response, body = outcome["result"]
        assert response.status == 200
        assert body["per_serving"]["energy_kcal"] >= 0
        # Drained before the socket closed.
        assert service.state.admission.drained()
        assert service.state.draining

    def test_shutdown_joins_background_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        service = NutritionService(ServiceConfig(port=0)).start()
        thread = service._thread
        assert thread is not None and thread.is_alive()
        service.shutdown()
        assert service._thread is None
        assert not thread.is_alive()

    def test_shutdown_is_idempotent(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        service = NutritionService(ServiceConfig(port=0)).start()
        service.shutdown()
        service.shutdown()  # second call is a no-op, not an error
