"""Tests for the coarse POS tagger and tag-frequency vectors."""

import numpy as np
from hypothesis import given, strategies as st

from repro.text.pos import TAGSET, CoarsePOSTagger, pos_tags, tag_frequency_vector
from repro.text.tokenize import tokenize


class TestTagger:
    def test_basic_phrase(self):
        assert pos_tags(["1", "small", "onion"]) == ["CD", "JJ", "NN"]

    def test_fraction_is_cd(self):
        assert pos_tags(["1/2"]) == ["CD"]

    def test_punct(self):
        assert pos_tags([","]) == ["PUNCT"]

    def test_participle(self):
        assert pos_tags(["chopped"]) == ["VBN"]

    def test_adverb(self):
        assert pos_tags(["finely"]) == ["RB"]

    def test_gerund(self):
        assert pos_tags(["boiling"]) == ["VBG"]

    def test_plural_noun(self):
        assert pos_tags(["cups"]) == ["NNS"]

    def test_conjunction_and_preposition(self):
        assert pos_tags(["or"]) == ["CC"]
        assert pos_tags(["of"]) == ["IN"]

    def test_hyphenated_adjective(self):
        assert pos_tags(["all-purpose"]) == ["JJ"]

    def test_empty_token(self):
        assert CoarsePOSTagger().tag_word("") == "SYM"

    def test_tags_are_in_tagset(self):
        phrase = tokenize("3/4 cup butter or 3/4 cup margarine , softened")
        for tag in pos_tags(phrase):
            assert tag in TAGSET


class TestTagFrequencyVector:
    def test_shape_and_counts(self):
        vec = tag_frequency_vector(["1", "small", "onion"])
        assert vec.shape == (len(TAGSET),)
        assert vec.sum() == 3.0
        assert vec[TAGSET.index("CD")] == 1.0

    def test_zero_for_empty(self):
        assert tag_frequency_vector([]).sum() == 0.0

    @given(st.lists(st.sampled_from(
        ["1", "1/2", "cup", "cups", "chopped", "finely", "onion", ",", "or"]),
        max_size=12))
    def test_sum_equals_length(self, tokens):
        vec = tag_frequency_vector(tokens)
        assert vec.sum() == len(tokens)
        assert np.all(vec >= 0)
