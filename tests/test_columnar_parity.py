"""Differential harness: columnar chunk pipeline vs per-line oracle.

The columnar hot path (:mod:`repro.core.columnar`) re-stages the
estimation pipeline chunk-at-a-time but promises **bit-identical**
output to the per-line reference — estimates, reason codes, traces,
dead letters, and the position of every raised exception.  These
tests enforce that promise differentially: the per-line path is the
retained oracle (``columnar=False``; ``REPRO_COLUMNAR=0`` at the
engine), the columnar path is the candidate, and every comparison is
plain dataclass equality, which covers every provenance field
(``IngredientEstimate`` compares parsed tokens/tags, match,
resolution, grams, profile, reason *and* trace).

Swept axes:

* all 16 :class:`MatcherConfig` ablation combinations,
* chunk sizes 1 / 7 / 64 / whole-corpus,
* rule tagger and trained perceptron (the ``predict_batch`` fast path),
* edge chunks: empty lines, nameless lines, punctuation, unicode
  fractions, repeated lines, and poison lines injected through
  :mod:`repro.faults` in both strict and quarantine modes.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.estimator import NutritionEstimator
from repro.deadletter import DeadLetterLog
from repro.matching.matcher import MatcherConfig
from repro.ner.perceptron import AveragedPerceptronTagger
from repro.recipedb.generator import RecipeGenerator

#: Hand-picked hostile lines every swept corpus includes.
EDGE_LINES = [
    "",                                  # empty
    "   ",                               # whitespace only
    ", , ,",                             # punctuation only
    "1 cup",                             # quantity+unit, no name
    "2 tablespoons",                     # nameless again
    "salt to taste",                     # no quantity
    "2½ cups all-purpose flour",         # unicode vulgar fraction
    "1 1/2 cups whole milk",             # mixed number
    "3 large eggs , beaten",             # scraped-punctuation style
    "butter",                            # bare name
    "1 (14.5 oz) can diced tomatoes, drained",
    "garlic cloves, minced, or 1 tsp garlic powder",
]


def _corpus_counts(n_recipes: int = 40) -> dict[str, int]:
    """Distinct-line table: generated recipes plus the edge lines."""
    recipes = RecipeGenerator().generate(n_recipes)
    counts: dict[str, int] = {}
    for text in EDGE_LINES:
        counts[text] = counts.get(text, 0) + 1
    for recipe in recipes:
        for text in recipe.ingredient_texts:
            counts[text] = counts.get(text, 0) + 1
    return counts


def _fresh(matcher_config=None, tagger=None) -> NutritionEstimator:
    return NutritionEstimator(matcher_config=matcher_config, tagger=tagger)


@pytest.fixture(scope="module")
def counts() -> dict[str, int]:
    return _corpus_counts()


@pytest.fixture(scope="module")
def perceptron() -> AveragedPerceptronTagger:
    phrases = [
        item.tagged for item in RecipeGenerator().generate_phrases(400)
    ]
    tagger = AveragedPerceptronTagger()
    tagger.train(phrases, epochs=2)
    return tagger


ALL_CONFIGS = [
    MatcherConfig(
        use_modified_jaccard=mj,
        rewrite_negations=rn,
        raw_bonus=rb,
        priority_tiebreak=pt,
    )
    for mj, rn, rb, pt in itertools.product((True, False), repeat=4)
]


class TestMatcherConfigSweep:
    @pytest.mark.parametrize(
        "config",
        ALL_CONFIGS,
        ids=[
            f"mj{int(c.use_modified_jaccard)}-rn{int(c.rewrite_negations)}"
            f"-rb{int(c.raw_bonus)}-pt{int(c.priority_tiebreak)}"
            for c in ALL_CONFIGS
        ],
    )
    def test_two_phase_table_bit_identical(self, config, counts):
        """Full two-phase protocol, per matcher ablation combo."""
        reference = _fresh(config).corpus_estimate_table(counts)
        columnar = _fresh(config).corpus_estimate_table(
            counts, columnar=True
        )
        assert columnar == reference


class TestChunkSizes:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, None])
    def test_phase1_chunked_bit_identical(self, chunk_size, counts):
        """Phase-1 collect, chunked exactly as a sharded run chunks it.

        ``None`` means one whole-corpus chunk.  Both sides accumulate
        estimates *and* observation snapshots chunk-by-chunk on one
        estimator each (caches warm across chunks on both sides, as
        they do inside a pool worker)."""
        items = list(counts.items())
        size = len(items) if chunk_size is None else chunk_size

        def collect(columnar: bool):
            estimator = _fresh()
            estimates: dict = {}
            snapshots = []
            for i in range(0, len(items), size):
                part, snapshot = estimator.corpus_collect_estimates(
                    items[i : i + size],
                    ordinal_base=i,
                    columnar=columnar,
                )
                estimates.update(part)
                snapshots.append(snapshot)
            return estimates, snapshots

        ref_estimates, ref_snapshots = collect(columnar=False)
        col_estimates, col_snapshots = collect(columnar=True)
        assert col_estimates == ref_estimates
        assert col_snapshots == ref_snapshots

    @pytest.mark.parametrize("chunk_size", [1, 7, 64, None])
    def test_estimate_lines_matches_per_line_oracle(
        self, chunk_size, counts
    ):
        """estimate_lines() in chunks vs literal _estimate_line calls."""
        texts = list(counts)
        size = len(texts) if chunk_size is None else chunk_size

        oracle = _fresh()
        expected = [
            oracle._estimate_line(text, consult_fallback=False)
            for text in texts
        ]

        candidate = _fresh()
        actual = []
        for i in range(0, len(texts), size):
            outcomes = candidate.columnar.estimate_lines(
                texts[i : i + size], consult_fallback=False
            )
            actual.extend(outcome.unwrap() for outcome in outcomes)
        assert actual == expected


class TestTrainedPerceptron:
    def test_two_phase_table_bit_identical(self, perceptron, counts):
        """The predict_batch emission-gather path, against the oracle."""
        reference = _fresh(tagger=perceptron).corpus_estimate_table(counts)
        columnar = _fresh(tagger=perceptron).corpus_estimate_table(
            counts, columnar=True
        )
        assert columnar == reference

    def test_small_chunks_hit_every_length_bucket(self, perceptron, counts):
        texts = list(counts)
        oracle = _fresh(tagger=perceptron)
        expected = [
            oracle._estimate_line(text, consult_fallback=False)
            for text in texts
        ]
        candidate = _fresh(tagger=perceptron)
        actual = []
        for i in range(0, len(texts), 7):
            outcomes = candidate.columnar.estimate_lines(
                texts[i : i + 7], consult_fallback=False
            )
            actual.extend(outcome.unwrap() for outcome in outcomes)
        assert actual == expected


class TestPoisonLines:
    POISON = "1 cup poisoned broth"

    def test_strict_mode_raises_at_identical_position(self, monkeypatch):
        """A fault-injected line raises from unwrap() at its own index;
        every line before it estimates identically first."""
        monkeypatch.setenv("REPRO_FAULTS", "raise@estimate-line:poisoned")
        texts = ["1 cup milk", self.POISON, "2 eggs", "butter"]

        from repro import faults

        oracle = _fresh()
        per_line: list = []
        with pytest.raises(RuntimeError) as ref_exc:
            for text in texts:
                faults.active_plan().poison(text)
                per_line.append(
                    oracle._estimate_line(text, consult_fallback=False)
                )
        assert len(per_line) == 1  # milk estimated, poison raised

        candidate = _fresh()
        outcomes = candidate.columnar.estimate_lines(
            texts, consult_fallback=False
        )
        assert outcomes[0].unwrap() == per_line[0]
        with pytest.raises(RuntimeError) as col_exc:
            outcomes[1].unwrap()
        assert str(col_exc.value) == str(ref_exc.value)
        # Lines after the poison still estimated (per-line isolation).
        assert outcomes[2].unwrap() == oracle._estimate_line(
            "2 eggs", consult_fallback=False
        )
        assert outcomes[3].unwrap() == oracle._estimate_line(
            "butter", consult_fallback=False
        )

    def test_quarantine_dead_letters_identical(self, monkeypatch, counts):
        """Two-phase + quarantine: tables and dead letters both match."""
        monkeypatch.setenv("REPRO_FAULTS", "raise@estimate-line:poisoned")
        poisoned = dict(counts)
        poisoned[self.POISON] = 3

        ref_log = DeadLetterLog()
        reference = _fresh().corpus_estimate_table(
            poisoned, quarantine=ref_log
        )
        col_log = DeadLetterLog()
        columnar = _fresh().corpus_estimate_table(
            poisoned, quarantine=col_log, columnar=True
        )
        assert columnar == reference
        assert list(col_log.records) == list(ref_log.records)
        assert len(col_log) >= 1


class TestEdgeChunks:
    def test_edge_lines_only_chunk(self):
        """A chunk that is nothing but hostile lines."""
        reference = _fresh().corpus_estimate_table(
            {text: 1 for text in EDGE_LINES}
        )
        columnar = _fresh().corpus_estimate_table(
            {text: 1 for text in EDGE_LINES}, columnar=True
        )
        assert columnar == reference

    def test_empty_chunk(self):
        assert _fresh().columnar.estimate_lines([]) == []

    def test_repeated_lines_share_one_parse(self):
        """Duplicates inside one chunk dedup but yield per-position
        outcomes identical to per-line calls."""
        texts = ["1 cup milk"] * 5 + ["2 eggs", "1 cup milk"]
        oracle = _fresh()
        expected = [
            oracle._estimate_line(text, consult_fallback=False)
            for text in texts
        ]
        outcomes = _fresh().columnar.estimate_lines(
            texts, consult_fallback=False
        )
        assert [outcome.unwrap() for outcome in outcomes] == expected


class TestEngineDifferential:
    def test_engine_columnar_vs_per_line_oracle(self, monkeypatch):
        """REPRO_COLUMNAR=0 pins the oracle through the whole engine."""
        from repro.pipeline.engine import ShardedCorpusEstimator

        recipes = RecipeGenerator().generate(30)
        monkeypatch.setenv("REPRO_COLUMNAR", "0")
        oracle = ShardedCorpusEstimator(workers=1).estimate_corpus(recipes)
        monkeypatch.setenv("REPRO_COLUMNAR", "1")
        with ShardedCorpusEstimator(workers=2, chunk_size=32) as engine:
            sharded = engine.estimate_corpus(recipes)
        assert sharded == oracle
