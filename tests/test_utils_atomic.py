"""The consolidated atomic-write helpers (repro.utils).

One fsync-aware write path now serves the artifact store, the
dead-letter report writer, run manifests and the benchmark result
files; these tests pin the contract they all rely on: the target is
either absent/old or fully new — never torn — and failed writes leave
no temp-file litter behind.
"""

from __future__ import annotations

import os

import pytest

from repro.utils import atomic_write_bytes, atomic_write_text


class TestAtomicWriteBytes:
    def test_writes_content_and_returns_length(self, tmp_path):
        target = tmp_path / "blob.bin"
        n = atomic_write_bytes(target, b"hello world")
        assert n == 11
        assert target.read_bytes() == b"hello world"

    def test_overwrites_existing_file(self, tmp_path):
        target = tmp_path / "blob.bin"
        target.write_bytes(b"old content that is longer")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"data")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["blob.bin"]

    def test_mode_respects_umask(self, tmp_path):
        target = tmp_path / "blob.bin"
        old = os.umask(0o027)
        try:
            atomic_write_bytes(target, b"data")
        finally:
            os.umask(old)
        assert (target.stat().st_mode & 0o777) == 0o640

    def test_failed_replace_leaves_target_untouched(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "blob.bin"
        target.write_bytes(b"precious")

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_bytes(target, b"half-written garbage")
        monkeypatch.undo()
        assert target.read_bytes() == b"precious"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["blob.bin"]

    def test_failed_fsync_leaves_target_untouched(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "blob.bin"
        target.write_bytes(b"precious")

        def broken_fsync(fd):
            raise OSError("I/O error")

        monkeypatch.setattr(os, "fsync", broken_fsync)
        with pytest.raises(OSError, match="I/O error"):
            atomic_write_bytes(target, b"garbage")
        monkeypatch.undo()
        assert target.read_bytes() == b"precious"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["blob.bin"]

    def test_fsync_false_skips_fsync(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: calls.append(fd) or real_fsync(fd)
        )
        atomic_write_bytes(tmp_path / "a.bin", b"x", fsync=False)
        assert calls == []
        atomic_write_bytes(tmp_path / "b.bin", b"x")
        assert len(calls) == 1


class TestAtomicWriteText:
    def test_round_trips_text(self, tmp_path):
        target = tmp_path / "notes.txt"
        n = atomic_write_text(target, "ligne accentuée\n")
        assert target.read_text(encoding="utf-8") == "ligne accentuée\n"
        assert n == len("ligne accentuée\n".encode())

    def test_custom_encoding(self, tmp_path):
        target = tmp_path / "latin.txt"
        atomic_write_text(target, "café", encoding="latin-1")
        assert target.read_bytes() == "café".encode("latin-1")
