"""Tests for the description matcher — heuristics (a)–(i)."""

import pytest

from repro.matching.matcher import DescriptionMatcher, MatcherConfig


class TestPaperExamples:
    """Every worked example in §II-B must reproduce."""

    @pytest.mark.parametrize("name,state,expected", [
        ("egg whites", "", "Egg, white, raw, fresh"),        # (c)
        ("whole eggs", "", "Egg, whole, raw, fresh"),        # (c)
        ("unsalted butter", "", "Butter, without salt"),     # (f)
        ("apple", "", "Apples, raw, with skin"),             # (g)+(h)+(i)
        ("eggs", "", "Egg, whole, raw, fresh"),              # (i)
        ("egg", "", "Egg, whole, raw, fresh"),               # (i)
        ("skim milk", "",
         "Milk, nonfat, fluid, with added vitamin A and vitamin D "
         "(fat free or skim)"),                              # (e)
    ])
    def test_heuristic_examples(self, matcher, name, state, expected):
        result = matcher.match(name, state)
        assert result is not None
        assert result.description == expected

    @pytest.mark.parametrize("name,state,expected", [
        ("red lentils", "", "Lentils, pink or red, raw"),
        ("coriander", "ground", "Coriander (cilantro) leaves, raw"),
        ("tomato paste", "",
         "Tomato products, canned, paste, without salt added"),
        ("vegetable broth", "",
         "Soup, vegetable with beef broth, canned, condensed"),
        ("fava beans", "", "Broadbeans (fava beans), mature seeds, raw"),
        ("cayenne pepper", "ground", "Spices, pepper, red or cayenne"),
        ("chicken with giblets", "patted dry and quartered",
         "Chicken, broilers or fryers, meat and skin and giblets and neck, raw"),
        ("sesame seeds", "", "Seeds, sesame seeds, whole, dried"),
    ])
    def test_table_iii_modified_column(self, matcher, name, state, expected):
        result = matcher.match(name, state)
        assert result is not None
        assert result.description == expected


class TestMechanics:
    def test_unknown_ingredient_unmatched(self, matcher):
        assert matcher.match("garam masala") is None
        assert matcher.match("xyzzy") is None

    def test_empty_query(self, matcher):
        assert matcher.match("") is None
        assert matcher.match("the of and") is None

    def test_state_words_alone_never_match(self, matcher):
        # Name-word overlap is required: "bacon, diced" must not match
        # "Babyfood, apples, dices, toddler" through the state word.
        result = matcher.match("bacon", "diced")
        assert result.description == "Pork, cured, bacon, unprepared"

    def test_score_bounds(self, matcher):
        result = matcher.match("butter")
        assert 0.0 < result.score <= 1.0

    def test_perfect_match_scores_one(self, matcher):
        assert matcher.match("salt").score == 1.0

    def test_cache_returns_same_object(self, matcher):
        assert matcher.match("butter") is matcher.match("butter")

    def test_match_result_fields(self, matcher):
        result = matcher.match("red lentils")
        assert result.food.ndb_no == "16144"
        assert "lentil" in result.query_words
        assert "lentil" in result.matched_words
        assert result.db_index >= 0

    def test_top_matches_ordering(self, matcher):
        top = matcher.top_matches("egg", k=3)
        assert len(top) == 3
        assert top[0].description == "Egg, whole, raw, fresh"
        scores = [t.score for t in top]
        assert scores == sorted(scores, reverse=True)

    def test_top_matches_k_validation(self, matcher):
        with pytest.raises(ValueError):
            matcher.top_matches("egg", k=0)

    def test_top_matches_empty_query(self, matcher):
        assert matcher.top_matches("", k=3) == []


class TestAblationFlags:
    def test_vanilla_flag_changes_metric(self, db):
        vanilla = DescriptionMatcher(db, MatcherConfig(use_modified_jaccard=False))
        result = vanilla.match("skim milk")
        # Under vanilla J the long fortified-milk description is
        # penalized; whatever wins must score <= the modified score.
        modified = DescriptionMatcher(db).match("skim milk")
        assert result.score <= modified.score

    def test_negation_ablation(self, db):
        no_neg = DescriptionMatcher(db, MatcherConfig(rewrite_negations=False))
        with_neg = DescriptionMatcher(db)
        assert with_neg.match("unsalted butter").description == "Butter, without salt"
        # Without rewriting, "unsalted" cannot reach "without salt".
        assert no_neg.match("unsalted butter").description != "Butter, without salt"

    def test_raw_bonus_ablation(self, db):
        no_raw = DescriptionMatcher(db, MatcherConfig(raw_bonus=False))
        # "fava beans" tie resolution relied on the raw preference;
        # without it the (earlier-indexed) raw entry still wins only by
        # index — both entries are in legumes, raw first, so behaviour
        # may coincide; assert it at least still matches *a* fava food.
        result = no_raw.match("fava beans")
        assert "fava" in result.description.lower()

    def test_priority_ablation(self, db):
        no_priority = DescriptionMatcher(db, MatcherConfig(priority_tiebreak=False))
        result = no_priority.match("apple")
        assert result is not None  # still matches something apple-ish
        assert "apple" in result.description.lower()

    def test_config_exposed(self, db):
        config = MatcherConfig(use_modified_jaccard=False)
        assert DescriptionMatcher(db, config).config is config
